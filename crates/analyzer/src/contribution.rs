//! Per-Servpod contributions to the tail latency (Equations 1-5).

use crate::profile::SojournProfile;
use rhythm_sim::pearson;
use rhythm_workloads::ServiceSpec;
use serde::{Deserialize, Serialize};

/// The contribution of one Servpod, with the factors it was built from.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Contribution {
    /// Servpod name.
    pub name: String,
    /// `P_i`: weight of the average sojourn time (Equation 1).
    pub weight: f64,
    /// `ρ_i`: Pearson correlation with the tail latency (Equation 2).
    pub correlation: f64,
    /// `V_i`: normalized coefficient of variation (Equation 3).
    pub variation: f64,
    /// `α_i`: critical-path scale (Equation 5; 1.0 on the critical path).
    pub alpha: f64,
    /// `C_i = α_i · ρ_i · P_i · V_i` (Equations 4-5).
    pub value: f64,
}

/// Computes Equation 1: `P_i = T̄_i / Σ_k T̄_k`.
fn weights(profile: &SojournProfile) -> Vec<f64> {
    let means: Vec<f64> = (0..profile.pods()).map(|i| profile.grand_mean(i)).collect();
    let total: f64 = means.iter().sum();
    if total <= 0.0 {
        vec![0.0; means.len()]
    } else {
        means.iter().map(|m| m / total).collect()
    }
}

/// Computes Equation 3: `V_i = (1/T̄_i)·sqrt(1/(m(m-1)) Σ_j (T_i^j - T̄_i)²)`.
fn variation(profile: &SojournProfile, i: usize) -> f64 {
    let series = profile.sojourn_series(i);
    let m = series.len();
    if m < 2 {
        return 0.0;
    }
    let mean = profile.grand_mean(i);
    if mean <= 0.0 {
        return 0.0;
    }
    let ss: f64 = series.iter().map(|x| (x - mean).powi(2)).sum();
    (ss / (m as f64 * (m as f64 - 1.0))).sqrt() / mean
}

/// Computes the critical-path scale `α_i` of Equation 5 for every node.
///
/// The end-to-end latency of a fan-out service is set by its critical
/// path — the root-to-leaf call path `R` with the largest total mean
/// sojourn. A Servpod `i` off `R` tolerates more interference; its
/// contribution is scaled by `α_i = Σ_{j ∈ ¬R_i} T_j / Σ_{k ∈ R} T_k`,
/// where `¬R_i` is the longest path through `i` among non-critical paths.
///
/// Nodes on the critical path get `α = 1`.
pub fn critical_path_alphas(service: &ServiceSpec, mean_sojourns: &[f64]) -> Vec<f64> {
    assert_eq!(service.len(), mean_sojourns.len(), "sojourn vector length");
    // Enumerate all root-to-leaf paths (DAGs here are small: ≤ 4 nodes).
    let mut paths: Vec<Vec<usize>> = Vec::new();
    let mut stack = vec![(ServiceSpec::ENTRY, vec![ServiceSpec::ENTRY])];
    while let Some((node, path)) = stack.pop() {
        let calls = &service.nodes[node].calls;
        if calls.is_empty() {
            paths.push(path);
            continue;
        }
        if service.nodes[node].parallel {
            // A fan-out node: each branch is its own path; the node also
            // terminates a path if some requests skip all branches, but
            // for α we only need call paths.
            for c in calls {
                let mut p = path.clone();
                p.push(c.target);
                stack.push((c.target, p));
            }
        } else {
            // Sequential calls: the path visits every callee in turn;
            // treat the chain of sequential calls as one path through all
            // of them.
            let mut p = path.clone();
            let mut last = node;
            for c in calls {
                p.push(c.target);
                last = c.target;
            }
            stack.push((last, p));
        }
    }
    let path_time = |p: &[usize]| -> f64 { p.iter().map(|&i| mean_sojourns[i]).sum() };
    let critical = paths
        .iter()
        .max_by(|a, b| path_time(a).total_cmp(&path_time(b)))
        .cloned()
        .unwrap_or_default();
    let critical_time = path_time(&critical).max(f64::EPSILON);
    let mut alphas = vec![1.0; service.len()];
    for (i, alpha) in alphas.iter_mut().enumerate() {
        if critical.contains(&i) {
            continue;
        }
        // Longest path through i among all (necessarily non-critical)
        // paths containing i.
        let best = paths
            .iter()
            .filter(|p| p.contains(&i))
            .map(|p| path_time(p))
            .fold(0.0, f64::max);
        *alpha = (best / critical_time).clamp(0.0, 1.0);
    }
    alphas
}

/// Computes the contribution of every Servpod (Equations 1-5).
///
/// `service` supplies the DAG used for the critical-path scale; pass the
/// service the profile was measured on.
///
/// # Panics
///
/// Panics if the profile fails validation or does not match the service.
pub fn contributions(profile: &SojournProfile, service: &ServiceSpec) -> Vec<Contribution> {
    profile.validate().expect("invalid profile");
    assert_eq!(
        profile.pods(),
        service.len(),
        "profile/service Servpod count mismatch"
    );
    let tail = profile.tail_series();
    let w = weights(profile);
    let grand_means: Vec<f64> = (0..profile.pods()).map(|i| profile.grand_mean(i)).collect();
    let alphas = critical_path_alphas(service, &grand_means);
    (0..profile.pods())
        .map(|i| {
            let series = profile.sojourn_series(i);
            let rho = pearson(&series, &tail).max(0.0);
            let v = variation(profile, i);
            let value = alphas[i] * rho * w[i] * v;
            Contribution {
                name: profile.pod_names[i].clone(),
                weight: w[i],
                correlation: rho,
                variation: v,
                alpha: alphas[i],
                value,
            }
        })
        .collect()
}

/// Normalizes contribution values to sum to 1 (used as Algorithm 1 step
/// sizes).
pub fn normalized_values(contribs: &[Contribution]) -> Vec<f64> {
    let total: f64 = contribs.iter().map(|c| c.value).sum();
    if total <= 0.0 {
        vec![1.0 / contribs.len().max(1) as f64; contribs.len()]
    } else {
        contribs.iter().map(|c| c.value / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::sample_profile;
    use rhythm_workloads::apps;
    use rhythm_workloads::component::ComponentBuilder;
    use rhythm_workloads::service::{Call, ServiceNode};

    fn two_pod_service() -> ServiceSpec {
        ServiceSpec {
            name: "test".into(),
            nodes: vec![
                ServiceNode::seq(
                    ComponentBuilder::new("front", 5.0, 0.2).build(),
                    vec![Call::always(1)],
                ),
                ServiceNode::leaf(ComponentBuilder::new("db", 10.0, 0.2).build()),
            ],
            sla_ms: 100.0,
            nominal_maxload_qps: 100.0,
            containers: 2,
        }
    }

    #[test]
    fn db_contributes_more_than_front() {
        let c = contributions(&sample_profile(), &two_pod_service());
        assert_eq!(c.len(), 2);
        assert!(c[1].value > c[0].value, "{c:?}");
        assert!(c[1].weight > c[0].weight);
        assert!(c[1].variation > c[0].variation);
    }

    #[test]
    fn correlation_in_unit_range_and_positive() {
        for c in contributions(&sample_profile(), &two_pod_service()) {
            assert!((0.0..=1.0).contains(&c.correlation));
        }
    }

    #[test]
    fn flat_pod_has_low_contribution() {
        // A pod with constant sojourn across loads: V=0 so C=0 (the
        // paper's principle 3: uncorrelated pods should not contribute).
        let mut p = sample_profile();
        for l in &mut p.levels {
            l.mean_sojourn_ms[0] = 5.0;
        }
        let c = contributions(&p, &two_pod_service());
        assert_eq!(c[0].value, 0.0);
        assert!(c[1].value > 0.0);
    }

    #[test]
    fn weights_sum_to_one() {
        let c = contributions(&sample_profile(), &two_pod_service());
        let sum: f64 = c.iter().map(|x| x.weight).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_values_sum_to_one() {
        let c = contributions(&sample_profile(), &two_pod_service());
        let n = normalized_values(&c);
        assert!((n.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_values_uniform_when_all_zero() {
        let c = vec![
            Contribution {
                name: "a".into(),
                weight: 0.0,
                correlation: 0.0,
                variation: 0.0,
                alpha: 1.0,
                value: 0.0,
            };
            4
        ];
        let n = normalized_values(&c);
        assert_eq!(n, vec![0.25; 4]);
    }

    #[test]
    fn chain_alphas_all_one() {
        let service = apps::ecommerce();
        let sojourns = vec![2.0, 25.0, 3.0, 20.0];
        let a = critical_path_alphas(&service, &sojourns);
        assert_eq!(a, vec![1.0; 4], "a chain has a single path");
    }

    #[test]
    fn fan_out_scales_off_critical_branch() {
        let service = apps::snms();
        // frontend, userservice, mediaservice.
        let sojourns = vec![9.0, 25.0, 16.0];
        let a = critical_path_alphas(&service, &sojourns);
        assert_eq!(a[0], 1.0, "frontend on every path");
        assert_eq!(a[1], 1.0, "userservice on critical path");
        // mediaservice path = 9+16 = 25 vs critical 9+25 = 34.
        assert!((a[2] - 25.0 / 34.0).abs() < 1e-9, "alpha={}", a[2]);
    }

    #[test]
    fn fan_out_alpha_reduces_contribution() {
        // Same profile numbers, chain vs fan-out topology: the off-path
        // pod's contribution shrinks by alpha.
        let service = apps::redis();
        let p = SojournProfile {
            pod_names: vec!["master".into(), "slave".into()],
            levels: (1..=4)
                .map(|j| crate::profile::LoadLevel {
                    load: 0.2 * j as f64,
                    mean_sojourn_ms: vec![10.0 + j as f64, 5.0 + 0.5 * j as f64],
                    sojourn_cov: vec![0.3, 0.3],
                    tail_ms: 30.0 + 5.0 * j as f64,
                    requests: 1000,
                })
                .collect(),
        };
        let c = contributions(&p, &service);
        // Redis: master fans out to slave; slave is on the only leaf path
        // master->slave, so both are on the critical path here.
        assert_eq!(c[0].alpha, 1.0);
        assert_eq!(c[1].alpha, 1.0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_service_panics() {
        let p = sample_profile();
        contributions(&p, &apps::ecommerce());
    }
}
