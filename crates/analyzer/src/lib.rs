//! Contribution analyzer (paper §3.4) and thresholding (§3.5.1).
//!
//! Rhythm characterizes each Servpod once, offline, from a solo run of
//! the LC service swept over load levels. From the per-load mean sojourn
//! times the analyzer derives each Servpod's *contribution* to the
//! end-to-end tail latency — the product of three factors (Equation 4):
//!
//! * `P_i` — weight of the Servpod's average sojourn time (Equation 1),
//! * `ρ_i` — Pearson correlation between the Servpod's per-load mean
//!   sojourn and the per-load tail latency (Equation 2),
//! * `V_i` — normalized coefficient of variation of the per-load means
//!   (Equation 3),
//!
//! scaled by `α_i` for Servpods off the critical path of a fan-out
//! service (Equation 5). The contributions then drive two thresholds per
//! Servpod (§3.5.1): `loadlimit` (from the first load level whose
//! sojourn-time CoV exceeds its average) and `slacklimit` (the iterative
//! search of Algorithm 1).
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod contribution;
pub mod loadlimit;
pub mod profile;
pub mod slacklimit;

pub use contribution::{contributions, critical_path_alphas, Contribution};
pub use loadlimit::find_loadlimit;
pub use profile::{LoadLevel, SojournProfile};
pub use slacklimit::{find_slacklimits, SlacklimitSearch};
