//! Loadlimit detection (§3.5.1, Figure 8).
//!
//! The `loadlimit` of a Servpod is the request-load ceiling above which
//! no BE job may run on its machine. The paper derives it from the
//! coefficient of variation of sojourn times across requests at each
//! load level: fluctuation rises sharply as the Servpod saturates, and
//! the loadlimit is "the first load point whose fluctuation is greater
//! than the average".

/// Finds the loadlimit from a CoV-over-load series.
///
/// * `loads` — load fractions, strictly increasing.
/// * `covs` — CoV of request sojourn times at each load.
///
/// Returns the first load whose CoV strictly exceeds the series average
/// *and stays above it at the next point* (a sustained crossing — single
/// noisy samples on measured series must not trigger); if no point
/// qualifies (a perfectly flat series), returns the last load (the
/// Servpod never destabilizes in the measured range).
///
/// # Panics
///
/// Panics if the series are empty or of different lengths.
pub fn find_loadlimit(loads: &[f64], covs: &[f64]) -> f64 {
    assert!(!loads.is_empty(), "empty load series");
    assert_eq!(loads.len(), covs.len(), "series length mismatch");
    let avg = covs.iter().sum::<f64>() / covs.len() as f64;
    // Baseline: the mean of the lower half of the series. A genuinely
    // fluctuating Servpod rises far above its quiet-load baseline; a
    // stable one only wiggles within estimator noise, which must not
    // trigger (its loadlimit is the end of the measured range).
    let mut sorted = covs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let lower = &sorted[..(sorted.len() / 2).max(1)];
    let baseline = lower.iter().sum::<f64>() / lower.len() as f64;
    let threshold = avg.max(1.12 * baseline);
    for (i, (l, c)) in loads.iter().zip(covs).enumerate() {
        let sustained = i + 1 >= covs.len() || covs[i + 1] > threshold;
        if *c > threshold && sustained {
            return *l;
        }
    }
    *loads.last().expect("non-empty")
}

/// 3-point moving average; endpoints average the two available points.
///
/// Measured CoV series carry sampling noise; smoothing keeps a single
/// noisy sample on an otherwise flat series from triggering the
/// first-above-average rule far too early.
pub fn smooth3(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(1);
            let hi = (i + 1).min(n - 1);
            xs[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        })
        .collect()
}

/// Loadlimits for every Servpod of a profile, with CoV smoothing.
pub fn loadlimits(profile: &crate::profile::SojournProfile) -> Vec<f64> {
    let loads = profile.loads();
    (0..profile.pods())
        .map(|i| find_loadlimit(&loads, &smooth3(&profile.cov_series(i))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rising_cov_crosses_average() {
        // CoV flat then rising: the paper's MySQL case (Figure 8a) where
        // fluctuation exceeds the average around 76% load.
        let loads: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let covs = vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 0.7, 0.9];
        // Average = 0.33; first exceed is 0.5 at load 0.8.
        let avg = covs.iter().sum::<f64>() / 10.0;
        assert!(covs[7] > avg && covs[6] < avg);
        assert_eq!(find_loadlimit(&loads, &covs), 0.8);
    }

    #[test]
    fn flat_series_returns_last_load() {
        let loads = [0.2, 0.4, 0.6];
        let covs = [0.3, 0.3, 0.3];
        assert_eq!(find_loadlimit(&loads, &covs), 0.6);
    }

    #[test]
    fn isolated_spike_is_ignored() {
        // A single noisy sample above the average does not qualify; the
        // crossing must be sustained.
        let loads = [0.2, 0.4, 0.6, 0.8, 1.0];
        let covs = [0.1, 0.9, 0.1, 0.5, 0.6];
        assert_eq!(find_loadlimit(&loads, &covs), 0.8);
    }

    #[test]
    fn final_point_crossing_counts() {
        let loads = [0.2, 0.4, 0.6];
        let covs = [0.1, 0.1, 0.9];
        assert_eq!(find_loadlimit(&loads, &covs), 0.6);
    }

    #[test]
    fn stable_pod_gets_higher_limit_than_volatile() {
        let loads: Vec<f64> = (1..=20).map(|i| i as f64 * 0.05).collect();
        // Volatile pod destabilizes at 60%, stable one at 90%.
        let volatile: Vec<f64> = loads
            .iter()
            .map(|&l| if l < 0.6 { 0.1 } else { 0.1 + (l - 0.6) * 3.0 })
            .collect();
        let stable: Vec<f64> = loads
            .iter()
            .map(|&l| if l < 0.9 { 0.1 } else { 0.1 + (l - 0.9) * 3.0 })
            .collect();
        let lv = find_loadlimit(&loads, &volatile);
        let ls = find_loadlimit(&loads, &stable);
        assert!(lv < ls, "volatile {lv} vs stable {ls}");
    }

    #[test]
    fn profile_wrapper_processes_all_pods() {
        let p = crate::profile::sample_profile();
        let ls = loadlimits(&p);
        assert_eq!(ls.len(), 2);
        for l in ls {
            assert!((0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn smooth3_flattens_spikes() {
        let xs = [0.1, 0.1, 0.9, 0.1, 0.1];
        let s = smooth3(&xs);
        assert!(s[2] < 0.9);
        assert!(s[1] > 0.1 && s[3] > 0.1);
        assert_eq!(s.len(), 5);
        // Endpoints average two points.
        assert!((s[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn smooth3_single_point() {
        assert_eq!(smooth3(&[0.5]), vec![0.5]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        find_loadlimit(&[0.1, 0.2], &[0.5]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_series_panics() {
        find_loadlimit(&[], &[]);
    }
}
