//! Solo-run sojourn profile: the analyzer's input.

use serde::{Deserialize, Serialize};

/// Measurements at one load level of the solo-run sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadLevel {
    /// Offered load as a fraction of max load.
    pub load: f64,
    /// Mean sojourn time per Servpod in ms (`T_i^j` of the paper).
    pub mean_sojourn_ms: Vec<f64>,
    /// Coefficient of variation of sojourn times *across requests* at
    /// this level, per Servpod (drives `loadlimit`, Figure 8).
    pub sojourn_cov: Vec<f64>,
    /// End-to-end tail latency at this level in ms (`T_tail^j`).
    pub tail_ms: f64,
    /// Number of requests measured.
    pub requests: u64,
}

/// The complete profile of one LC service from its solo-run sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SojournProfile {
    /// Servpod (component) names, fixing the per-Servpod vector order.
    pub pod_names: Vec<String>,
    /// One entry per load level, in increasing load order.
    pub levels: Vec<LoadLevel>,
}

impl SojournProfile {
    /// Number of Servpods.
    pub fn pods(&self) -> usize {
        self.pod_names.len()
    }

    /// Number of load levels (`m` in the paper's equations).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The per-load mean sojourn series of Servpod `i` (`T_i^j` over j).
    pub fn sojourn_series(&self, i: usize) -> Vec<f64> {
        self.levels.iter().map(|l| l.mean_sojourn_ms[i]).collect()
    }

    /// The per-load tail latency series (`T_tail^j` over j).
    pub fn tail_series(&self) -> Vec<f64> {
        self.levels.iter().map(|l| l.tail_ms).collect()
    }

    /// The per-load CoV series of Servpod `i`.
    pub fn cov_series(&self, i: usize) -> Vec<f64> {
        self.levels.iter().map(|l| l.sojourn_cov[i]).collect()
    }

    /// The load fractions of the sweep.
    pub fn loads(&self) -> Vec<f64> {
        self.levels.iter().map(|l| l.load).collect()
    }

    /// `T̄_i`: the grand mean sojourn of Servpod `i` across load levels.
    pub fn grand_mean(&self, i: usize) -> f64 {
        let s = self.sojourn_series(i);
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.pod_names.is_empty() {
            return Err("profile has no Servpods".into());
        }
        if self.levels.len() < 2 {
            return Err("profile needs at least two load levels".into());
        }
        for (j, l) in self.levels.iter().enumerate() {
            if l.mean_sojourn_ms.len() != self.pods() || l.sojourn_cov.len() != self.pods() {
                return Err(format!("level {j} has wrong vector lengths"));
            }
            if j > 0 && l.load <= self.levels[j - 1].load {
                return Err("load levels must be strictly increasing".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
pub use tests::sample_profile;

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic 2-pod profile used across analyzer tests.
    pub fn sample_profile() -> SojournProfile {
        let loads = [0.2, 0.4, 0.6, 0.8];
        SojournProfile {
            pod_names: vec!["front".into(), "db".into()],
            levels: loads
                .iter()
                .map(|&load| LoadLevel {
                    load,
                    // Front flat, db grows steeply with load.
                    mean_sojourn_ms: vec![5.0 + load, 10.0 + 60.0 * load * load],
                    sojourn_cov: vec![0.2, 0.3 + load],
                    tail_ms: 40.0 + 200.0 * load * load,
                    requests: 10_000,
                })
                .collect(),
        }
    }

    #[test]
    fn sample_validates() {
        assert!(sample_profile().validate().is_ok());
    }

    #[test]
    fn series_extraction() {
        let p = sample_profile();
        assert_eq!(p.pods(), 2);
        assert_eq!(p.level_count(), 4);
        assert_eq!(p.sojourn_series(0).len(), 4);
        assert_eq!(p.tail_series()[0], 40.0 + 200.0 * 0.04);
        assert_eq!(p.loads(), vec![0.2, 0.4, 0.6, 0.8]);
    }

    #[test]
    fn grand_mean_is_mean_of_levels() {
        let p = sample_profile();
        let s = p.sojourn_series(1);
        let expect = s.iter().sum::<f64>() / 4.0;
        assert!((p.grand_mean(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_problems() {
        let mut p = sample_profile();
        p.levels[1].mean_sojourn_ms.pop();
        assert!(p.validate().is_err());

        let mut p = sample_profile();
        p.levels[2].load = 0.1;
        assert!(p.validate().is_err());

        let mut p = sample_profile();
        p.levels.truncate(1);
        assert!(p.validate().is_err());

        let p = SojournProfile {
            pod_names: vec![],
            levels: vec![],
        };
        assert!(p.validate().is_err());
    }
}
