//! Slacklimit search — the paper's Algorithm 1.
//!
//! `slacklimit` is the lower bound on the slack (relative gap between
//! current tail latency and the SLA target) below which BE jobs may not
//! grow on a Servpod's machine. Servpods with small contributions get
//! small slacklimits — BE jobs may keep growing until the slack is nearly
//! exhausted — while high-contribution Servpods are controlled
//! conservatively.
//!
//! Algorithm 1 searches iteratively: starting from `slacklimit = 1.0`,
//! every iteration lowers each Servpod's candidate by its step size
//! (proportional to `1 − C_i / Σ C_k`, scaled by a sub-step factor η —
//! the paper recommends running the algorithm multiple times for
//! accuracy, which is equivalent to refining the step), runs the system
//! with the candidate limits for a probation period, and backtracks one
//! step when the SLA is violated.

use serde::{Deserialize, Serialize};

/// Fraction of the full Algorithm 1 step taken per probation run.
const ETA: f64 = 0.25;

/// No slacklimit descends below this floor: a zero limit would remove
/// the growth guard entirely.
const FLOOR: f64 = 0.02;

/// Outcome of the slacklimit search.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SlacklimitSearch {
    /// Final slacklimit per Servpod.
    pub slacklimits: Vec<f64>,
    /// Step size per Servpod (`η · (1 − C_i / Σ C_k)`).
    pub step_sizes: Vec<f64>,
    /// Number of probation runs performed.
    pub trials: u32,
    /// True if the search stopped because a trial violated the SLA (and
    /// backtracked), false if it walked all the way down.
    pub hit_violation: bool,
}

/// Runs Algorithm 1.
///
/// * `contributions` — raw contribution values `C_i` (not necessarily
///   normalized).
/// * `run_system` — probation runner: given the candidate slacklimit
///   vector, runs the co-located system "for a while" and returns `true`
///   if the SLA was violated.
///
/// Returns the per-Servpod slacklimits: the last candidate vector that
/// did *not* violate the SLA (or all-1.0 if the very first candidate
/// violated). Low-contribution Servpods take bigger steps, so they end
/// at lower limits when the violation stops everyone — the
/// component-distinguishable outcome the controller relies on.
///
/// # Panics
///
/// Panics if `contributions` is empty.
pub fn find_slacklimits(
    contributions: &[f64],
    mut run_system: impl FnMut(&[f64]) -> bool,
) -> SlacklimitSearch {
    assert!(!contributions.is_empty(), "no contributions");
    let total: f64 = contributions.iter().sum();
    let norm: Vec<f64> = if total <= 0.0 {
        vec![1.0 / contributions.len() as f64; contributions.len()]
    } else {
        contributions.iter().map(|c| (c / total).max(0.0)).collect()
    };
    let step_sizes: Vec<f64> = norm.iter().map(|n| ETA * (1.0 - n)).collect();
    let mut cur: Vec<f64> = vec![1.0; contributions.len()];
    // `Record` of Algorithm 1: the stack of accepted candidates.
    let mut record: Vec<Vec<f64>> = Vec::new();
    let mut trials = 0;
    let mut hit_violation = false;
    loop {
        let candidate: Vec<f64> = cur
            .iter()
            .zip(&step_sizes)
            .map(|(c, s)| (c - s).max(FLOOR))
            .collect();
        if candidate == cur {
            break; // Fixed point: every Servpod is at the floor.
        }
        trials += 1;
        let violated = run_system(&candidate);
        if violated {
            hit_violation = true;
            break;
        }
        record.push(candidate.clone());
        cur = candidate;
    }
    let slacklimits = record.pop().unwrap_or_else(|| vec![1.0; norm.len()]);
    SlacklimitSearch {
        slacklimits,
        step_sizes,
        trials,
        hit_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violation_walks_to_the_floor() {
        let c = [0.032, 0.078, 0.04, 0.347];
        let result = find_slacklimits(&c, |_| false);
        for &v in &result.slacklimits {
            assert!((v - FLOOR).abs() < 1e-9, "{v}");
        }
        assert!(!result.hit_violation);
        assert!(result.trials > 4, "descends gradually: {}", result.trials);
    }

    #[test]
    fn smaller_contribution_smaller_slacklimit_at_violation() {
        // Violate once the mean candidate drops below 0.5: the larger
        // contributor has descended less by then.
        let c = [0.05, 0.5];
        let r = find_slacklimits(&c, |cand| {
            cand.iter().sum::<f64>() / (cand.len() as f64) < 0.5
        });
        assert!(r.hit_violation);
        assert!(
            r.slacklimits[0] < r.slacklimits[1],
            "low contributor descends faster: {:?}",
            r.slacklimits
        );
    }

    #[test]
    fn violation_returns_last_accepted_candidate() {
        let c = [0.3, 0.3];
        let mut accepted: Vec<Vec<f64>> = Vec::new();
        let r = find_slacklimits(&c, |cand| {
            let bad = cand.iter().any(|&x| x < 0.45);
            if !bad {
                accepted.push(cand.to_vec());
            }
            bad
        });
        assert!(r.hit_violation);
        assert_eq!(&r.slacklimits, accepted.last().expect("accepted some"));
        for &x in &r.slacklimits {
            assert!(x >= 0.45, "{x}");
        }
    }

    #[test]
    fn immediate_violation_keeps_initial_limits() {
        let c = [0.2, 0.8];
        let r = find_slacklimits(&c, |_| true);
        assert_eq!(r.slacklimits, vec![1.0, 1.0]);
        assert_eq!(r.trials, 1);
        assert!(r.hit_violation);
    }

    #[test]
    fn step_sizes_scale_with_complement_of_contribution() {
        let c = [1.0, 3.0];
        let r = find_slacklimits(&c, |_| false);
        assert!((r.step_sizes[0] - ETA * 0.75).abs() < 1e-12);
        assert!((r.step_sizes[1] - ETA * 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_contributions_fall_back_to_uniform() {
        let c = [0.0, 0.0, 0.0];
        let r = find_slacklimits(&c, |_| false);
        let first = r.slacklimits[0];
        for &x in &r.slacklimits {
            assert!((x - first).abs() < 1e-9, "uniform descent");
        }
    }

    #[test]
    fn search_terminates() {
        let c = [0.01, 0.99];
        let r = find_slacklimits(&c, |_| false);
        assert!(r.trials < 500, "trials={}", r.trials);
        for &x in &r.slacklimits {
            assert!(x >= FLOOR - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "no contributions")]
    fn empty_contributions_panic() {
        find_slacklimits(&[], |_| false);
    }
}
