//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//! controller period vs control quality is covered by `repro ablate`;
//! here we benchmark the *cost* side — how expensive each controller
//! configuration is to run — plus full profiling-pipeline cost, which is
//! the paper's headline scalability claim ("characterization cost is
//! low ... increases linearly over the number of Servpods").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rhythm_controller::Thresholds;
use rhythm_core::{ControlMode, Engine, EngineConfig};
use rhythm_sim::SimDuration;
use rhythm_workloads::{apps, BeSpec};

fn bench_controller_period_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller-period-cost");
    for period_ms in [500u64, 2_000, 8_000] {
        g.bench_with_input(
            BenchmarkId::from_parameter(period_ms),
            &period_ms,
            |b, &period_ms| {
                b.iter(|| {
                    let mut cfg = EngineConfig::solo(0.6, 10, 5);
                    cfg.bes = BeSpec::colocation_set();
                    cfg.sla_ms = 2_000.0;
                    cfg.controller_period = SimDuration::from_millis(period_ms);
                    cfg.mode = ControlMode::Managed {
                        thresholds: vec![Thresholds::new(0.9, 0.1); 2],
                    };
                    black_box(Engine::new(apps::solr(), cfg).run().completed)
                })
            },
        );
    }
    g.finish();
}

fn bench_profiling_scales_with_servpods(c: &mut Criterion) {
    // The paper: characterization cost is O(M) in Servpods, not O(M*N)
    // in (LC, BE) pairs. Profile services of increasing Servpod count.
    let mut g = c.benchmark_group("profiling-cost-by-servpods");
    for service in [apps::solr(), apps::elgg(), apps::ecommerce()] {
        let pods = service.len();
        g.bench_with_input(BenchmarkId::from_parameter(pods), &service, |b, s| {
            b.iter(|| {
                let profile = rhythm_core::profile_service(
                    s,
                    &rhythm_core::ProfileConfig {
                        load_levels: vec![0.3, 0.6, 0.9],
                        duration_s: 5,
                        seed: 6,
                        min_requests: 300,
                        use_tracer: true,
                    },
                );
                black_box(profile.level_count())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_controller_period_cost, bench_profiling_scales_with_servpods
}
criterion_main!(benches);
