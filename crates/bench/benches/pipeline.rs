//! Benchmarks of the Rhythm pipeline stages: the cluster engine, the
//! tracer (capture + pairing) and the contribution analyzer.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rhythm_analyzer::contributions;
use rhythm_core::{profile_service, Engine, EngineConfig, ProfileConfig};
use rhythm_tracer::capture::{CaptureConfig, EventCapture};
use rhythm_tracer::Pairer;
use rhythm_workloads::apps;

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/ecommerce solo 10s@60%", |b| {
        b.iter(|| {
            let out = Engine::new(apps::ecommerce(), EngineConfig::solo(0.6, 10, 1)).run();
            black_box(out.completed)
        })
    });
    c.bench_function("engine/snms fanout solo 10s@60%", |b| {
        b.iter(|| {
            let out = Engine::new(apps::snms(), EngineConfig::solo(0.6, 10, 1)).run();
            black_box(out.completed)
        })
    });
}

fn bench_tracer(c: &mut Criterion) {
    // Capture a realistic trace once, then measure pairing throughput.
    let mut cfg = EngineConfig::solo(0.5, 10, 2);
    cfg.capture_visits = true;
    let out = Engine::new(apps::ecommerce(), cfg).run();
    c.bench_function("tracer/capture 10s of requests", |b| {
        b.iter(|| {
            let mut cap = EventCapture::new(CaptureConfig::default(), 3);
            for t in &out.visit_trees {
                cap.record_request(t);
            }
            black_box(cap.finish().len())
        })
    });
    let mut cap = EventCapture::new(CaptureConfig::default(), 3);
    for t in &out.visit_trees {
        cap.record_request(t);
    }
    let events = cap.finish();
    c.bench_function("tracer/pair events", |b| {
        b.iter(|| black_box(Pairer::new(0).pair(&events).request_count))
    });
}

fn bench_analyzer(c: &mut Criterion) {
    let service = apps::ecommerce();
    let profile = profile_service(
        &service,
        &ProfileConfig {
            load_levels: vec![0.2, 0.4, 0.6, 0.8],
            duration_s: 8,
            seed: 4,
            min_requests: 500,
            use_tracer: false,
        },
    );
    c.bench_function("analyzer/contributions", |b| {
        b.iter(|| black_box(contributions(&profile, &service)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine, bench_tracer, bench_analyzer
}
criterion_main!(benches);
