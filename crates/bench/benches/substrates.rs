//! Micro-benchmarks of the simulation substrates: the event calendar,
//! latency histogram, RNG streams, statistics and machine accounting.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rhythm_machine::{Allocation, Machine, MachineSpec};
use rhythm_sim::{pearson, Calendar, LatencyHistogram, OnlineStats, SimRng, SimTime};

fn bench_calendar(c: &mut Criterion) {
    c.bench_function("calendar/schedule+pop 10k", |b| {
        let mut rng = SimRng::from_seed(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.below(1_000_000_000)).collect();
        b.iter(|| {
            let mut cal = Calendar::with_capacity(times.len());
            for (i, &t) in times.iter().enumerate() {
                cal.schedule(SimTime::from_nanos(t), i);
            }
            let mut n = 0;
            while cal.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = SimRng::from_seed(2);
    let values: Vec<f64> = (0..10_000).map(|_| rng.uniform_range(0.1, 500.0)).collect();
    c.bench_function("histogram/record 10k", |b| {
        b.iter(|| {
            let mut h = LatencyHistogram::new();
            for &v in &values {
                h.record(v);
            }
            black_box(h.count())
        })
    });
    let mut h = LatencyHistogram::new();
    for &v in &values {
        h.record(v);
    }
    c.bench_function("histogram/p99 query", |b| b.iter(|| black_box(h.p99())));
}

fn bench_rng_and_stats(c: &mut Criterion) {
    c.bench_function("rng/lognormal sample 10k", |b| {
        let d = rhythm_sim::Dist::LogNormal {
            median: 10.0,
            sigma: 0.5,
        };
        let mut rng = SimRng::from_seed(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += d.sample(&mut rng);
            }
            black_box(acc)
        })
    });
    let mut rng = SimRng::from_seed(4);
    let xs: Vec<f64> = (0..4_096).map(|_| rng.uniform()).collect();
    let ys: Vec<f64> = (0..4_096).map(|_| rng.uniform()).collect();
    c.bench_function("stats/pearson 4k", |b| {
        b.iter(|| black_box(pearson(&xs, &ys)))
    });
    c.bench_function("stats/welford 10k", |b| {
        b.iter(|| {
            let mut s = OnlineStats::new();
            for &x in &xs {
                s.push(x);
            }
            black_box(s.sample_variance())
        })
    });
}

fn bench_machine(c: &mut Criterion) {
    c.bench_function("machine/admit+grow+kill cycle", |b| {
        b.iter(|| {
            let mut m = Machine::new(
                MachineSpec::paper_testbed(),
                Allocation {
                    cores: 12,
                    llc_ways: 0,
                    mem_mb: 16 * 1024,
                    net_mbps: 500.0,
                    freq_mhz: 2_000,
                },
            );
            for _ in 0..8 {
                let id = m
                    .admit_be("wc", Allocation::cores_and_llc(1, 2))
                    .expect("admit");
                m.grow_be(id, Allocation::cores_and_llc(1, 2)).expect("grow");
            }
            m.suspend_all_be();
            m.resume_all_be();
            m.kill_all_be();
            black_box(m.be_started)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_calendar, bench_histogram, bench_rng_and_stats, bench_machine
}
criterion_main!(benches);
