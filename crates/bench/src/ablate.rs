//! Ablations of Rhythm's design choices (DESIGN.md §5).
//!
//! * **Contribution definition** — Equation 4 is the product ρ·P·V;
//!   what happens with each factor alone?
//! * **Critical-path scaling** — Equation 5's α on vs off for the
//!   fan-out SNMS service.
//! * **Controller period** — the paper picks 2 s as the
//!   efficiency/safety trade-off.
//! * **Per-Servpod vs uniform thresholds** — Rhythm's machinery with its
//!   own thresholds averaged uniformly across pods, isolating where the
//!   gain comes from.

use crate::{parallel_map, Report};
use rhythm_analyzer::contributions;
use rhythm_analyzer::loadlimit::loadlimits;
use rhythm_core::bubble::{bubble_contributions, ranking_agreement, Bubble};
use rhythm_analyzer::slacklimit::find_slacklimits;
use rhythm_controller::Thresholds;
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_core::profiling::{calibrate_sla, profile_service, ProfileConfig};
use rhythm_core::runtime::{ControlMode, Engine, EngineConfig};
use rhythm_sim::SimDuration;
use rhythm_workloads::{apps, BeSpec, LoadGen};
use serde::Serialize;

const DURATION_S: u64 = 300;

/// Outcome of one ablation variant.
#[derive(Clone, Debug, Serialize)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// EMU achieved.
    pub emu: f64,
    /// BE throughput achieved.
    pub be_throughput: f64,
    /// SLA violation ticks.
    pub sla_violations: u64,
    /// Worst tail/SLA.
    pub tail_ratio: f64,
}

fn run_with_thresholds(
    ctx: &ServiceContext,
    name: &str,
    thresholds: Vec<Thresholds>,
    seed: u64,
) -> Variant {
    let load = LoadGen::clarknet_like(3, SimDuration::from_secs(DURATION_S), 150, 0.9, seed);
    let cfg = ExperimentConfig {
        bes: BeSpec::colocation_set(),
        load,
        duration_s: DURATION_S,
        seed,
        record_timeline: false,
        controller_period_ms: 500,
    };
    let (_, m) = ctx.run(ControllerChoice::Custom(thresholds), &cfg);
    Variant {
        name: name.to_string(),
        emu: m.emu,
        be_throughput: m.be_throughput,
        sla_violations: m.sla_violations,
        tail_ratio: m.tail_ratio,
    }
}

/// Ablates the contribution definition on e-commerce: thresholds are
/// re-derived with each factor of Equation 4 alone.
pub fn contribution_ablation(seed: u64) -> Vec<Variant> {
    let service = apps::ecommerce();
    let sla = calibrate_sla(&service, seed);
    let profile = profile_service(
        &service,
        &ProfileConfig {
            seed,
            ..ProfileConfig::default()
        },
    );
    let contribs = rhythm_analyzer::contributions(&profile, &service);
    let lls = loadlimits(&profile);
    let variants: Vec<(&str, Vec<f64>)> = vec![
        ("full (rho*P*V)", contribs.iter().map(|c| c.value).collect()),
        (
            "weight only (P)",
            contribs.iter().map(|c| c.weight).collect(),
        ),
        (
            "variation only (V)",
            contribs.iter().map(|c| c.variation).collect(),
        ),
        (
            "correlation only (rho)",
            contribs.iter().map(|c| c.correlation).collect(),
        ),
        ("uniform", vec![1.0; contribs.len()]),
    ];
    let ctx = ServiceContext::prepare(service, &BeSpec::colocation_set(), seed);
    let jobs: Vec<Box<dyn FnOnce() -> Variant + Send>> = variants
        .into_iter()
        .map(|(name, values)| {
            let ctx = ctx.clone();
            let lls = lls.clone();
            Box::new(move || {
                // Slacklimits from the ablated contribution values, with
                // the same probation runs the real pipeline uses — the
                // *descent direction* is what each variant changes.
                let search = find_slacklimits(&values, |candidate| {
                    let thresholds: Vec<Thresholds> = lls
                        .iter()
                        .zip(candidate)
                        .map(|(&ll, &sl)| Thresholds::new(ll, sl))
                        .collect();
                    let mut pcfg = EngineConfig::solo(0.8, 120, seed ^ 0xAB);
                    pcfg.bes = BeSpec::colocation_set();
                    pcfg.sla_ms = ctx.sla_ms;
                    pcfg.mode = ControlMode::Managed { thresholds };
                    let out = Engine::new(ctx.service.clone(), pcfg).run();
                    let m = rhythm_core::metrics::RunMetrics::from_output(&out);
                    m.sla_violations > 0
                });
                let thresholds: Vec<Thresholds> = lls
                    .iter()
                    .zip(&search.slacklimits)
                    .map(|(&ll, &sl)| Thresholds::new(ll, sl))
                    .collect();
                run_with_thresholds(&ctx, name, thresholds, seed)
            }) as _
        })
        .collect();
    let _ = sla;
    parallel_map(jobs)
}

/// Ablates the controller period on solr with wordcount at high load.
pub fn period_ablation(seed: u64) -> Vec<Variant> {
    let ctx = ServiceContext::prepare(apps::solr(), &BeSpec::colocation_set(), seed);
    let jobs: Vec<Box<dyn FnOnce() -> Variant + Send>> = [500u64, 1_000, 2_000, 4_000, 8_000]
        .into_iter()
        .map(|period_ms| {
            let ctx = ctx.clone();
            Box::new(move || {
                let mut cfg = EngineConfig::solo(0.75, DURATION_S, seed);
                cfg.load = LoadGen::clarknet_like(
                    2,
                    SimDuration::from_secs(DURATION_S),
                    60,
                    0.95,
                    seed,
                );
                cfg.bes = BeSpec::colocation_set();
                cfg.sla_ms = ctx.sla_ms;
                cfg.controller_period = SimDuration::from_millis(period_ms);
                cfg.mode = ControlMode::Managed {
                    thresholds: ctx.thresholds.thresholds.clone(),
                };
                let out = Engine::new(ctx.service.clone(), cfg).run();
                let m = rhythm_core::metrics::RunMetrics::from_output(&out);
                Variant {
                    name: format!("period {}ms", period_ms),
                    emu: m.emu,
                    be_throughput: m.be_throughput,
                    sla_violations: m.sla_violations,
                    tail_ratio: m.tail_ratio,
                }
            }) as _
        })
        .collect();
    parallel_map(jobs)
}

/// Ablates Equation 5's critical-path scaling on SNMS: α as derived vs
/// forced to 1 (contributions unscaled).
pub fn fanout_ablation(seed: u64) -> Vec<Variant> {
    let ctx = ServiceContext::prepare(apps::snms(), &BeSpec::colocation_set(), seed);
    // Variant without α: re-derive slacklimits from unscaled values.
    let unscaled: Vec<f64> = ctx
        .thresholds
        .contributions
        .iter()
        .map(|c| {
            if c.alpha > 0.0 {
                c.value / c.alpha
            } else {
                c.value
            }
        })
        .collect();
    let lls: Vec<f64> = ctx
        .thresholds
        .thresholds
        .iter()
        .map(|t| t.loadlimit)
        .collect();
    let search = find_slacklimits(&unscaled, |_| false);
    let no_alpha: Vec<Thresholds> = lls
        .iter()
        .zip(&search.slacklimits)
        .map(|(&ll, &sl)| Thresholds::new(ll, sl))
        .collect();
    vec![
        run_with_thresholds(
            &ctx,
            "with alpha (Eq.5)",
            ctx.thresholds.thresholds.clone(),
            seed,
        ),
        run_with_thresholds(&ctx, "without alpha", no_alpha, seed),
    ]
}

fn render(vs: &[Variant]) -> String {
    let mut out = format!(
        "{:<24} {:>8} {:>8} {:>12} {:>10}\n",
        "variant", "EMU", "BE tp", "violations", "tail/SLA"
    );
    for v in vs {
        out.push_str(&format!(
            "{:<24} {:>8.3} {:>8.3} {:>12} {:>10.2}\n",
            v.name, v.emu, v.be_throughput, v.sla_violations, v.tail_ratio
        ));
    }
    out
}

/// Compares the paper's directed (sojourn-time) contribution analysis
/// against the indirect bubble-pressure alternative it rejects (§3.2):
/// how well does each one-dimensional bubble's ranking agree with the
/// directed ranking?
pub fn bubble_comparison(seed: u64) -> Vec<(&'static str, f64)> {
    let service = apps::ecommerce();
    let sla = calibrate_sla(&service, seed);
    let profile = profile_service(
        &service,
        &ProfileConfig {
            seed,
            ..ProfileConfig::default()
        },
    );
    let directed: Vec<f64> = contributions(&profile, &service)
        .iter()
        .map(|c| c.value)
        .collect();
    [Bubble::Cpu, Bubble::Llc, Bubble::Dram]
        .into_iter()
        .map(|b| {
            let scores = bubble_contributions(&service, b, 0.85, sla, seed);
            let indirect: Vec<f64> = scores
                .iter()
                .map(|s| 1.0 / (1.0 + s.tolerated_cores as f64))
                .collect();
            let label = match b {
                Bubble::Cpu => "bubble: CPU",
                Bubble::Llc => "bubble: LLC",
                Bubble::Dram => "bubble: DRAM",
            };
            (label, ranking_agreement(&directed, &indirect))
        })
        .collect()
}

/// Runs all ablations and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = Report::new("ablate", "design-choice ablations (DESIGN.md §5)");
    let c = contribution_ablation(0xAB1);
    report.line("contribution definition (e-commerce, mixed BEs, production-like load):");
    report.line(render(&c));
    let p = period_ablation(0xAB2);
    report.line("controller period (solr, mixed BEs, 75% load):");
    report.line(render(&p));
    let f = fanout_ablation(0xAB3);
    report.line("critical-path scaling α (SNMS, mixed BEs):");
    report.line(render(&f));
    let b = bubble_comparison(0xAB4);
    report.line("directed vs bubble-pressure profiling (§3.2): ranking agreement with Eq.4 contributions");
    for (label, agreement) in &b {
        report.line(format!("  {label:<14} pairwise agreement {:.2}", agreement));
    }
    report.line("  (the paper's argument: no single one-dimensional bubble reproduces the directed ranking)");
    report.finish(&(&c, &p, &f, &b))
}
