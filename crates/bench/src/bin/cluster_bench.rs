//! Cluster runner scaling benchmark — see `rhythm_bench::clusterbench`.
//!
//! ```text
//! cluster_bench            # 16-machine cell at 1/2/4/8 threads -> BENCH_cluster.json
//! cluster_bench --quick    # shorter simulated duration, same file
//! ```

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bad) = args.iter().find(|a| *a != "--quick") {
        eprintln!("unknown argument: {bad}");
        eprintln!("usage: cluster_bench [--quick]");
        std::process::exit(2);
    }
    rhythm_bench::clusterbench::run(quick)?;
    Ok(())
}
