//! Engine throughput benchmark binary — see `rhythm_bench::enginebench`.
//!
//! ```text
//! engine_bench             # full grid -> BENCH_engine.json
//! engine_bench --quick     # short grid -> BENCH_engine_quick.json
//! engine_bench --baseline  # full grid -> BENCH_engine_baseline.json
//! ```

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let baseline = args.iter().any(|a| a == "--baseline");
    if let Some(bad) = args
        .iter()
        .find(|a| *a != "--quick" && *a != "--baseline")
    {
        eprintln!("unknown argument: {bad}");
        eprintln!("usage: engine_bench [--quick] [--baseline]");
        std::process::exit(2);
    }
    if quick && baseline {
        eprintln!("--quick and --baseline are mutually exclusive");
        std::process::exit(2);
    }
    rhythm_bench::enginebench::run(quick, baseline).map(|_| ())
}
