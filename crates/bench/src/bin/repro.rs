//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <id> [...]   # one or more of: tab1 fig02 fig06 fig07 fig08
//!                    #   fig09 fig10 fig11 fig12 fig13 fig14
//!                    #   fig15 fig16 fig17 fig18 tab2 ablate cluster
//!                    #   chaos trace lint
//! repro all          # everything (reuses the Figures 9-14 grid)
//! repro --json <id>  # print the JSON document instead of text tables
//! repro cluster --hetero  # heterogeneous 4-machine cell instead of the
//!                         # homogeneous N ∈ {4,16,64} sweep
//! repro lint --github     # also emit ::error workflow commands so CI
//!                         # annotates findings inline in the PR diff
//! repro snapshot [--machines N] [--epoch E] [--out FILE]
//!                         # capture the standard cell at an epoch barrier
//! repro resume FILE       # continue a capture to the end of its horizon
//! repro snapshot-diff A B # structural diff of two captures
//! ```
//!
//! Results are written as text + JSON under `results/` (override with
//! `RHYTHM_RESULTS_DIR`). `--json` switches stdout from the text tables
//! to the same JSON document written to `results/<id>.json`.

use rhythm_bench as b;
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_mode = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let hetero = args.iter().any(|a| a == "--hetero");
    args.retain(|a| a != "--hetero");
    let github = args.iter().any(|a| a == "--github");
    args.retain(|a| a != "--github");
    b::report::set_json_stdout(json_mode);
    // The snapshot family takes its own flags/positionals, not a target
    // list — dispatch before the experiment loop.
    match args.first().map(String::as_str) {
        Some("snapshot") => return b::snapshotcli::snapshot(&args[1..]),
        Some("resume") => return b::snapshotcli::resume(&args[1..]),
        Some("snapshot-diff") => return b::snapshotcli::diff(&args[1..]),
        _ => {}
    }
    let targets: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "tab1",
            "fig02",
            "fig06",
            "fig07",
            "fig08",
            "grid",
            "fig15",
            "fig16",
            "fig17",
            "fig18+tab2",
            "ablate",
            "cluster",
            "chaos",
            "trace",
            "lint",
        ]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let grid_ids = ["fig09", "fig10", "fig11", "fig12", "fig13", "fig14"];
    let mut grid: Option<b::colocation::Grid> = None;
    for t in targets {
        let started = Instant::now();
        eprintln!("[repro] running {t} ...");
        match t {
            "tab1" => b::tab1::run()?,
            "fig02" => b::fig02::run()?,
            "fig06" => b::fig06::run()?,
            "fig07" => b::fig07::run()?,
            "fig08" => b::fig08::run()?,
            "grid" => {
                let g = grid.get_or_insert_with(|| b::colocation::build(0xF09));
                b::colocation::fig09(g)?;
                b::colocation::fig10(g)?;
                b::colocation::fig11(g)?;
                b::colocation::fig12(g)?;
                b::colocation::fig13(g)?;
                b::colocation::fig14(g)?;
            }
            id if grid_ids.contains(&id) => {
                let g = grid.get_or_insert_with(|| b::colocation::build(0xF09));
                match id {
                    "fig09" => b::colocation::fig09(g)?,
                    "fig10" => b::colocation::fig10(g)?,
                    "fig11" => b::colocation::fig11(g)?,
                    "fig12" => b::colocation::fig12(g)?,
                    "fig13" => b::colocation::fig13(g)?,
                    _ => b::colocation::fig14(g)?,
                }
            }
            "fig15" => b::fig15::run()?,
            "fig16" => b::fig16::run()?,
            "fig17" => b::fig17::run()?,
            "fig18+tab2" => {
                let d = b::fig18::collect(0xF18);
                b::fig18::render_fig18(&d)?;
                b::fig18::render_tab2(&d)?;
            }
            "fig18" => b::fig18::run()?,
            "tab2" => b::fig18::run_tab2()?,
            "ablate" => b::ablate::run()?,
            "cluster" if hetero => b::cluster::run_hetero()?,
            "cluster" => b::cluster::run()?,
            "chaos" => b::chaos::run()?,
            "trace" => b::trace::run()?,
            "lint" => b::lint::run(github)?,
            other => {
                eprintln!("[repro] unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
        eprintln!(
            "[repro] {t} done in {:.1}s",
            started.elapsed().as_secs_f64()
        );
    }
    Ok(())
}
