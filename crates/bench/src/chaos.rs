//! The chaos campaign: the six-scenario library under Rhythm.
//!
//! Runs [`Scenario::library`] over an 8-machine cluster (two e-commerce
//! replicas): the diurnal baseline, a flash crowd, rolling machine
//! crashes, a correlated rack failure, a silent straggler, and the
//! crash-restart drill that kills the scheduler process at an epoch
//! barrier and resumes it from the snapshot bytes. Reports SLA
//! violations, EMU, job outcomes, the tail-latency recovery time of
//! every disruption, and a per-scenario run fingerprint. Writes
//! `results/chaos.{txt,json}` — byte-identical for a given seed, for
//! any shard or worker-thread count.

use crate::Report;
use rhythm_chaos::{Scenario, ScenarioOutcome};
use rhythm_core::experiment::ControllerChoice;
use serde_json::json;

/// Machines in the chaos cell (two e-commerce replicas).
pub const MACHINES: usize = 8;

/// Base seed of the campaign.
pub const SEED: u64 = 0xCA05;

fn fmt_outcome(o: &ScenarioOutcome) -> Vec<String> {
    let m = &o.metrics;
    let mut lines = vec![format!(
        "{:<24} EMU {:>5.3}  p99/SLA {:>5.2}  sla-viol {:>4}  jobs {:>3}/{:<3}  \
         kills {:>3}  requeues {:>3}  fp {:#018x}",
        o.name,
        m.emu,
        m.tail_ratio,
        m.sla_violations,
        m.jobs.completed,
        m.jobs.submitted,
        m.jobs.kills,
        m.requeues,
        o.fingerprint,
    )];
    if let Some(r) = &o.recovery {
        let when = match r.recovered_s {
            Some(s) => format!("{s:.0}s"),
            None => "censored".to_string(),
        };
        lines.push(format!(
            "{:<24} recovery {when}  (baseline p99 {:.2}ms, peak {:.2}ms)",
            "", r.baseline_p99_ms, r.peak_p99_ms,
        ));
    }
    if let Some(c) = &o.restart {
        lines.push(format!(
            "{:<24} restart @epoch {} (t={:.0}s, {} snapshot bytes): {}",
            "",
            c.epoch,
            c.t_s,
            c.snapshot_bytes,
            if c.bit_identical() {
                "resumed run bit-identical"
            } else {
                "MISMATCH"
            },
        ));
    }
    lines
}

/// Runs the campaign and writes `results/chaos.{txt,json}`.
pub fn run() -> std::io::Result<()> {
    let ctx = crate::cluster::context(SEED);
    let mut report = Report::new(
        "chaos",
        "Chaos campaign: trace-shaped load + deterministic fault injection \
         (8 machines, diurnal curve, heavy-tailed backlog)",
    );
    let mut outcomes = Vec::new();
    for scenario in Scenario::library(MACHINES, SEED) {
        report.line(format!("-- {}: {} --", scenario.name, scenario.summary));
        let outcome = scenario.run(&ctx, &ControllerChoice::Rhythm);
        for line in fmt_outcome(&outcome) {
            report.line(line);
        }
        report.blank();
        outcomes.push(outcome);
    }
    let drill_ok = outcomes
        .iter()
        .filter_map(|o| o.restart.as_ref())
        .all(|c| c.bit_identical());
    report.line(format!(
        "crash-restart drill: {}",
        if drill_ok {
            "all comparisons bit-identical"
        } else {
            "MISMATCH — resumed run diverged"
        }
    ));
    report.finish(&json!({
        "machines": MACHINES,
        "seed": SEED,
        "controller": "rhythm",
        "restart_bit_identical": drill_ok,
        "scenarios": outcomes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_library_matches_the_report() {
        let lib = Scenario::library(MACHINES, SEED);
        assert!(lib.len() >= 6);
        assert!(lib.iter().any(|s| s.restart_epoch.is_some()));
        // Every scenario fits the report cell: same machine count, a
        // horizon the recovery metric can observe.
        for s in &lib {
            assert_eq!(s.cfg.machines, MACHINES);
            assert!(s.cfg.duration_s >= 120);
        }
    }
}
