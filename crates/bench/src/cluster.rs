//! The cluster experiment: Rhythm vs Heracles at N ∈ {4, 16, 64}
//! machines.
//!
//! Scales the paper's 4-machine evaluation up with the cluster layer:
//! each cell runs the shared-backlog BE dispatcher (interference-score
//! placement) over N machines at 85% load — the regime where the two
//! controllers diverge — and reports cluster-wide EMU / CPU / MemBW plus
//! the job-level outcomes only the cluster can see: BE completion times
//! and wasted work. Writes `results/cluster.{txt,json}`.

use crate::Report;
use rhythm_cluster::{compare_cluster, ClusterConfig, ClusterMetrics, PlacementPolicy};
use rhythm_core::experiment::ServiceContext;
use rhythm_workloads::{apps, BeKind, BeSpec};
use serde_json::json;

/// Cluster sizes evaluated (the paper's testbed is N=4).
pub const SIZES: [usize; 3] = [4, 16, 64];

/// The cluster configuration one cell runs (shared by the scaling
/// benchmark so BENCH numbers describe the same workload).
pub fn cell_config(machines: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(machines).with_scaled_jobs(0.05);
    cfg.duration_s = 300;
    cfg.jobs_per_machine = 4;
    cfg.policy = PlacementPolicy::InterferenceScore;
    cfg.seed = seed;
    cfg.threads = 8;
    cfg
}

/// The prepared e-commerce context every cell shares.
pub fn context(seed: u64) -> ServiceContext {
    ServiceContext::prepare(
        apps::ecommerce(),
        &[
            BeSpec::of(BeKind::Wordcount),
            BeSpec::of(BeKind::StreamDram { big: true }),
        ],
        seed,
    )
}

fn fmt_row(name: &str, m: &ClusterMetrics) -> String {
    format!(
        "{name:<10} EMU {:>5.3}  LC {:>5.3}  BE {:>5.3}  CPU {:>4.1}%  MemBW {:>4.1}%  \
         p99/SLA {:>5.2}  jobs {:>3}/{:<3}  compl-mean {:>6.1}s  wasted {:>5.2} jobs  kills {:>3}",
        m.emu,
        m.lc_throughput,
        m.be_throughput,
        m.cpu_util * 100.0,
        m.membw_util * 100.0,
        m.tail_ratio,
        m.jobs.completed,
        m.jobs.submitted,
        m.jobs.completion_mean_s,
        m.jobs.wasted_jobs,
        m.jobs.kills,
    )
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let ctx = context(0xC1);
    let mut report = Report::new(
        "cluster",
        "Cluster-level Rhythm vs Heracles at N machines (shared BE backlog, interference-score placement)",
    );
    let mut cells = Vec::new();
    for &n in &SIZES {
        let cfg = cell_config(n, 0xC1);
        let (rhythm, heracles) = compare_cluster(&ctx, &cfg);
        report.line(format!("-- N = {n} machines ({} replicas) --", rhythm.metrics.replicas));
        report.line(fmt_row("rhythm", &rhythm.metrics));
        report.line(fmt_row("heracles", &heracles.metrics));
        let gain = if heracles.metrics.emu > 0.0 {
            (rhythm.metrics.emu / heracles.metrics.emu - 1.0) * 100.0
        } else {
            0.0
        };
        report.line(format!("EMU improvement: {gain:+.1}%"));
        report.blank();
        cells.push(json!({
            "machines": n,
            "rhythm": rhythm.metrics,
            "heracles": heracles.metrics,
            "emu_gain_pct": gain,
        }));
    }
    report.finish(&json!({
        "policy": "interference-score",
        "load": 0.85,
        "duration_s": 300,
        "cells": cells,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_config_scales_with_n() {
        for &n in &SIZES {
            let c = cell_config(n, 1);
            assert_eq!(c.machines, n);
            assert_eq!(c.total_jobs(), 4 * n);
        }
    }
}
