//! The cluster experiment: Rhythm vs Heracles at N ∈ {4, 16, 64}
//! machines.
//!
//! Scales the paper's 4-machine evaluation up with the cluster layer:
//! each cell runs the shared-backlog BE dispatcher (interference-score
//! placement) over N machines at 85% load — the regime where the two
//! controllers diverge — and reports cluster-wide EMU / CPU / MemBW plus
//! the job-level outcomes only the cluster can see: BE completion times
//! and wasted work. Writes `results/cluster.{txt,json}`.

use crate::Report;
use rhythm_cluster::{compare_cluster, ClusterConfig, ClusterMetrics, JobSpec, PlacementPolicy};
use rhythm_core::experiment::ServiceContext;
use rhythm_machine::MachineSpec;
use rhythm_workloads::{apps, BeKind, BeSpec};
use serde_json::json;

/// Cluster sizes evaluated (the paper's testbed is N=4).
pub const SIZES: [usize; 3] = [4, 16, 64];

/// The cluster configuration one cell runs (shared by the scaling
/// benchmark so BENCH numbers describe the same workload).
pub fn cell_config(machines: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(machines).with_scaled_jobs(0.05);
    cfg.duration_s = 300;
    cfg.jobs_per_machine = 4;
    cfg.policy = PlacementPolicy::InterferenceScore;
    cfg.seed = seed;
    cfg.threads = 8;
    cfg
}

/// The prepared e-commerce context every cell shares.
pub fn context(seed: u64) -> ServiceContext {
    ServiceContext::prepare(
        apps::ecommerce(),
        &[
            BeSpec::of(BeKind::Wordcount),
            BeSpec::of(BeKind::StreamDram { big: true }),
        ],
        seed,
    )
}

fn fmt_row(name: &str, m: &ClusterMetrics) -> String {
    let mut row = format!(
        "{name:<10} EMU {:>5.3}  LC {:>5.3}  BE {:>5.3}  CPU {:>4.1}%  MemBW {:>4.1}%  \
         p99/SLA {:>5.2}  jobs {:>3}/{:<3}  compl-mean {:>6.1}s  wasted {:>5.2} jobs  kills {:>3}",
        m.emu,
        m.lc_throughput,
        m.be_throughput,
        m.cpu_util * 100.0,
        m.membw_util * 100.0,
        m.tail_ratio,
        m.jobs.completed,
        m.jobs.submitted,
        m.jobs.completion_mean_s,
        m.jobs.wasted_jobs,
        m.jobs.kills,
    );
    // Deadline column only when the plan has dated jobs, so homogeneous
    // reports render exactly as before.
    if m.jobs.deadline_total > 0 {
        row.push_str(&format!(
            "  dmiss {:>2}/{:<2} ({:>4.1}%)",
            m.jobs.deadline_missed,
            m.jobs.deadline_total,
            m.jobs.deadline_miss_rate * 100.0,
        ));
    }
    row
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let ctx = context(0xC1);
    let mut report = Report::new(
        "cluster",
        "Cluster-level Rhythm vs Heracles at N machines (shared BE backlog, interference-score placement)",
    );
    let mut cells = Vec::new();
    for &n in &SIZES {
        let cfg = cell_config(n, 0xC1);
        let (rhythm, heracles) = compare_cluster(&ctx, &cfg);
        report.line(format!("-- N = {n} machines ({} replicas) --", rhythm.metrics.replicas));
        report.line(fmt_row("rhythm", &rhythm.metrics));
        report.line(fmt_row("heracles", &heracles.metrics));
        let gain = if heracles.metrics.emu > 0.0 {
            (rhythm.metrics.emu / heracles.metrics.emu - 1.0) * 100.0
        } else {
            0.0
        };
        report.line(format!("EMU improvement: {gain:+.1}%"));
        report.blank();
        cells.push(json!({
            "machines": n,
            "rhythm": rhythm.metrics,
            "heracles": heracles.metrics,
            "emu_gain_pct": gain,
        }));
    }
    report.finish(&json!({
        "policy": "interference-score",
        "load": 0.85,
        "duration_s": 300,
        "cells": cells,
    }))
}

/// Machine specs of the heterogeneous 4-machine cell: a dense compute
/// node, two paper testbeds and a lean node — two distinct hardware
/// classes beyond the baseline, in fixed global order.
pub fn hetero_specs() -> Vec<MachineSpec> {
    vec![
        MachineSpec::dense_compute(),
        MachineSpec::paper_testbed(),
        MachineSpec::lean_node(),
        MachineSpec::paper_testbed(),
    ]
}

/// The heterogeneous cluster cell: 4 machines of 3 hardware classes,
/// hetero-aware placement, priority preemption, queue aging, and a job
/// plan mixing best-effort work with dated priority jobs and one
/// 3-instance gang.
pub fn hetero_config(seed: u64) -> ClusterConfig {
    let mut cfg = cell_config(4, seed);
    cfg.policy = PlacementPolicy::HeteroAware;
    cfg.machine_specs = hetero_specs();
    cfg.priority_preemption = true;
    cfg.queue_aging_s = Some(60.0);
    let wc = cfg.be_mix[0].clone();
    let ic = cfg.be_mix[1].clone();
    let lstm = cfg.be_mix[2].clone();
    cfg.job_plan = vec![
        // An urgent class-2 job and a batch of dated class-1 jobs.
        JobSpec::solitary(lstm.clone()).with_priority(2).with_deadline(90.0),
        JobSpec::solitary(ic.clone()).with_priority(1).with_deadline(120.0),
        JobSpec::solitary(ic.clone()).with_priority(1).with_deadline(180.0),
        JobSpec::solitary(ic).with_priority(1).with_deadline(240.0),
        // A gang of three co-scheduled instances.
        JobSpec::solitary(wc.clone()).with_priority(1).with_gang(3),
        // Best-effort filler the high classes preempt.
        JobSpec::solitary(wc.clone()),
        JobSpec::solitary(wc.clone()),
        JobSpec::solitary(wc.clone()),
        JobSpec::solitary(lstm),
        JobSpec::solitary(wc),
    ];
    cfg
}

/// Runs the heterogeneous experiment and writes
/// `results/cluster_hetero.{txt,json}`.
pub fn run_hetero() -> std::io::Result<()> {
    let ctx = context(0xC1);
    let cfg = hetero_config(0xC1);
    let mut report = Report::new(
        "cluster_hetero",
        "Heterogeneous 4-machine cluster: 3 hardware classes, priority/deadline jobs, \
         one 3-instance gang (hetero-aware placement, priority preemption, queue aging)",
    );
    let (rhythm, heracles) = compare_cluster(&ctx, &cfg);
    let classes: Vec<&str> = vec!["dense-compute", "paper-testbed", "lean-node", "paper-testbed"];
    report.line(format!(
        "-- 4 machines [{}], {} jobs ({} gang instances) --",
        classes.join(", "),
        cfg.total_jobs(),
        cfg.job_plan.iter().filter(|e| e.gang > 1).map(|e| e.gang).sum::<u32>(),
    ));
    report.line(fmt_row("rhythm", &rhythm.metrics));
    report.line(fmt_row("heracles", &heracles.metrics));
    let gain = if heracles.metrics.emu > 0.0 {
        (rhythm.metrics.emu / heracles.metrics.emu - 1.0) * 100.0
    } else {
        0.0
    };
    report.line(format!("EMU improvement: {gain:+.1}%"));
    report.blank();
    report.finish(&json!({
        "policy": "hetero-aware",
        "load": 0.85,
        "duration_s": cfg.duration_s,
        "machine_classes": classes,
        "priority_preemption": true,
        "queue_aging_s": 60.0,
        "gang_patience_epochs": cfg.gang_patience_epochs,
        "jobs": cfg.total_jobs(),
        "rhythm": rhythm.metrics,
        "heracles": heracles.metrics,
        "emu_gain_pct": gain,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_config_scales_with_n() {
        for &n in &SIZES {
            let c = cell_config(n, 1);
            assert_eq!(c.machines, n);
            assert_eq!(c.total_jobs(), 4 * n);
        }
    }

    #[test]
    fn hetero_config_is_well_formed() {
        let c = hetero_config(1);
        assert_eq!(c.machines, 4);
        assert_eq!(c.machine_specs.len(), 4);
        let distinct: std::collections::BTreeSet<u32> = c
            .machine_specs
            .iter()
            .map(|s| s.total_cores() * s.max_freq_mhz)
            .collect();
        assert!(distinct.len() >= 2, "at least two hardware classes");
        assert!(c.job_plan.iter().any(|e| e.gang > 1), "plan has a gang");
        assert!(
            c.job_plan.iter().any(|e| e.deadline_s.is_some()),
            "plan has dated jobs"
        );
        assert!(c.priority_preemption);
        assert_eq!(c.total_jobs(), 12, "9 solitary + 3 gang instances");
    }
}
