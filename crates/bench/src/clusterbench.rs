//! Cluster runner scaling harness.
//!
//! Times `run_cluster` wall-clock on the 16-machine cell at worker-thread
//! counts {1, 2, 4, 8} and writes `BENCH_cluster.json` at the repo root.
//! Because cluster results are bit-identical for any thread count, the
//! cells also double as a determinism check: every row must report the
//! same simulated request count.
//!
//! ```text
//! cargo run --release --bin cluster_bench            # -> BENCH_cluster.json
//! cargo run --release --bin cluster_bench -- --quick # shorter run, same file
//! ```

use rhythm_cluster::run_cluster;
use rhythm_core::experiment::ControllerChoice;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Thread counts benchmarked.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Repo root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Runs the scaling grid and writes the JSON report. Returns the path.
pub fn run(quick: bool) -> std::io::Result<PathBuf> {
    let machines = 16;
    let ctx = crate::cluster::context(0xC1);
    let mut base = crate::cluster::cell_config(machines, 0xC1);
    if quick {
        base.duration_s = 60;
    }
    let reps = if quick { 1 } else { 2 };

    let mut cells = Vec::new();
    let mut requests_seen: Option<u64> = None;
    let mut wall_by_threads = std::collections::BTreeMap::new();
    for &threads in &THREADS {
        let mut cfg = base.clone();
        cfg.threads = threads;
        // Warm-up run (first touch pays page faults and lazy init).
        let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
        let mut best = f64::INFINITY;
        let mut requests = 0;
        for _ in 0..reps {
            let start = Instant::now();
            let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            requests = out.metrics.completed_requests;
        }
        match requests_seen {
            None => requests_seen = Some(requests),
            Some(r) => assert_eq!(
                r, requests,
                "thread count changed simulated results — determinism broken"
            ),
        }
        let rps = requests as f64 / (best / 1e3);
        println!(
            "threads={threads:<2} {requests:>8} req  best {best:>8.1} ms  {rps:>10.0} req/s"
        );
        wall_by_threads.insert(threads, best);
        cells.push(serde_json::json!({
            "threads": threads,
            "requests": requests,
            "best_wall_ms": best,
            "sim_req_per_sec": rps,
        }));
    }
    let speedup_8v1 = wall_by_threads[&1] / wall_by_threads[&8];
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let max_threads = *THREADS.iter().max().expect("grid is non-empty");
    let oversubscribed = host_cpus < max_threads;
    println!("speedup 8 threads vs 1: {speedup_8v1:.2}x (host has {host_cpus} CPUs)");
    if host_cpus < 2 {
        println!("note: single-CPU host — parallel speedup cannot manifest; the grid still verifies thread-count determinism and measures pool overhead");
    }
    if oversubscribed {
        eprintln!(
            "note: host has {host_cpus} CPUs but the grid runs up to {max_threads} worker threads; \
             oversubscribed rows measure scheduling pressure, not scaling"
        );
    }

    let report = serde_json::json!({
        "schema": "rhythm-cluster-bench/v1",
        "quick": quick,
        "machines": machines,
        "duration_s": base.duration_s,
        "reps": reps,
        "host_cpus": host_cpus,
        "oversubscribed": oversubscribed,
        "cells": cells,
        "speedup_8_threads_vs_1": speedup_8v1,
    });
    let dir = std::env::var("RHYTHM_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| repo_root());
    std::fs::create_dir_all(&dir)?;
    let out_path = dir.join("BENCH_cluster.json");
    let mut f = std::fs::File::create(&out_path)?;
    serde_json::to_writer_pretty(&mut f, &report)?;
    f.flush()?;
    println!("wrote {}", out_path.display());
    Ok(out_path)
}
