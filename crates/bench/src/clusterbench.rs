//! Cluster runner scaling harness.
//!
//! Two grids plus two cost probes, one report
//! (`BENCH_cluster.json`, schema v3):
//!
//! * **Thread sweep** — times `run_cluster` wall-clock on the 16-machine
//!   cell at worker-thread counts {1, 2, 4, 8}. Because cluster results
//!   are bit-identical for any thread count, the cells double as a
//!   determinism check: every row must report the same simulated request
//!   count. On a host with fewer CPUs than the widest row the sweep
//!   measures scheduling pressure, not scaling, so the speedup field is
//!   reported as `null` and `speedup_oversubscribed` is set.
//! * **Scaling grid** — runs N ∈ {64, 256, 1024, 4096} machines
//!   (quick: {64, 256}) at 1 and 8 worker threads, recording per-N wall
//!   clock, simulated requests/s and per-machine throughput. This is the
//!   warehouse-scale check for the sharded scheduler: per-machine
//!   throughput should stay roughly flat as N grows (the per-epoch hot
//!   path is shard-local), where the unsharded dispatcher degraded
//!   quadratically.
//! * **Snapshot overhead** — the N=256 cell with and without one
//!   mid-run epoch-barrier capture ([`rhythm_cluster::ClusterRunner`]),
//!   reported as `snapshot_overhead.overhead_frac` (target < 0.05).
//! * **Chaos overhead** — the N=256 cell with an empty
//!   [`rhythm_cluster::FaultPlan`] versus a small crash/straggler plan,
//!   reported as `chaos_overhead.overhead_frac` (target < 0.02): fault
//!   injection rides the existing epoch barriers, so a handful of
//!   machine-lifecycle events must be noise against the run itself.
//!
//! ```text
//! cargo run --release --bin cluster_bench            # -> BENCH_cluster.json
//! cargo run --release --bin cluster_bench -- --quick # N ≤ 256, shorter runs
//! ```

use rhythm_cluster::{run_cluster, ClusterRunner};
use rhythm_core::experiment::ControllerChoice;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Thread counts benchmarked in the thread sweep.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Cluster sizes of the scaling grid (quick mode stops at 256).
pub const GRID_SIZES: [usize; 4] = [64, 256, 1024, 4096];

/// Repo root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// The 16-machine thread sweep: same cell at every thread count, best
/// wall clock per row, identical-results assertion across rows.
fn thread_sweep(quick: bool, host_cpus: usize) -> serde_json::Value {
    let machines = 16;
    let ctx = crate::cluster::context(0xC1);
    let mut base = crate::cluster::cell_config(machines, 0xC1);
    if quick {
        base.duration_s = 60;
    }
    let reps = if quick { 1 } else { 2 };

    let mut cells = Vec::new();
    let mut requests_seen: Option<u64> = None;
    let mut wall_by_threads = std::collections::BTreeMap::new();
    for &threads in &THREADS {
        let mut cfg = base.clone();
        cfg.threads = threads;
        // Warm-up run (first touch pays page faults and lazy init).
        let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
        let mut best = f64::INFINITY;
        let mut requests = 0;
        for _ in 0..reps {
            let start = Instant::now();
            let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
            requests = out.metrics.completed_requests;
        }
        match requests_seen {
            None => requests_seen = Some(requests),
            Some(r) => assert_eq!(
                r, requests,
                "thread count changed simulated results — determinism broken"
            ),
        }
        let rps = requests as f64 / (best / 1e3);
        println!(
            "threads={threads:<2} {requests:>8} req  best {best:>8.1} ms  {rps:>10.0} req/s"
        );
        wall_by_threads.insert(threads, best);
        cells.push(serde_json::json!({
            "threads": threads,
            "requests": requests,
            "best_wall_ms": best,
            "sim_req_per_sec": rps,
        }));
    }
    let speedup_8v1 = wall_by_threads[&1] / wall_by_threads[&8];
    let max_threads = *THREADS.iter().max().expect("grid is non-empty");
    let oversubscribed = host_cpus < max_threads;
    if oversubscribed {
        // A speedup measured under oversubscription describes the host's
        // scheduler, not the runner: suppress the number entirely.
        println!(
            "speedup 8 threads vs 1: suppressed — host has {host_cpus} CPUs for {max_threads} \
             workers (oversubscribed rows measure scheduling pressure, not scaling)"
        );
    } else {
        println!("speedup 8 threads vs 1: {speedup_8v1:.2}x (host has {host_cpus} CPUs)");
    }

    serde_json::json!({
        "machines": machines,
        "duration_s": base.duration_s,
        "reps": reps,
        "cells": cells,
        "speedup_8_threads_vs_1": (!oversubscribed).then_some(speedup_8v1),
        "speedup_oversubscribed": oversubscribed,
    })
}

/// The warehouse scaling grid: N machines at 1 and 8 worker threads,
/// one timed run each (a 4096-machine run is seconds of wall clock; the
/// grid's signal is the per-machine throughput trend, not microseconds).
fn scaling_grid(quick: bool) -> serde_json::Value {
    let ctx = crate::cluster::context(0xC1);
    let duration_s = if quick { 60 } else { 120 };
    let sizes: &[usize] = if quick { &GRID_SIZES[..2] } else { &GRID_SIZES };

    let mut cells = Vec::new();
    let mut total_rps: Vec<(usize, f64)> = Vec::new();
    for &n in sizes {
        let mut cfg = crate::cluster::cell_config(n, 0xC1);
        cfg.duration_s = duration_s;
        let mut walls = std::collections::BTreeMap::new();
        let mut requests = 0;
        let mut sharding = (0usize, 0u64);
        for threads in [1usize, 8] {
            cfg.threads = threads;
            let start = Instant::now();
            let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
            walls.insert(threads, start.elapsed().as_secs_f64() * 1e3);
            requests = out.metrics.completed_requests;
            sharding = (out.sharding.shards, out.sharding.steals);
        }
        let best = walls.values().fold(f64::INFINITY, |a, &b| a.min(b));
        let rps = requests as f64 / (best / 1e3);
        let per_machine = rps / n as f64;
        total_rps.push((n, rps));
        println!(
            "N={n:<5} K={:<3} {requests:>9} req  wall 1t {:>9.1} ms / 8t {:>9.1} ms  \
             {rps:>10.0} sim-req/s  {per_machine:>7.0} req/machine/s  steals {}",
            sharding.0, walls[&1], walls[&8], sharding.1
        );
        cells.push(serde_json::json!({
            "machines": n,
            "shards": sharding.0,
            "requests": requests,
            "wall_ms_1_thread": walls[&1],
            "wall_ms_8_threads": walls[&8],
            "best_wall_ms": best,
            "sim_req_per_sec": rps,
            "req_per_machine_per_sec": per_machine,
            "steals": sharding.1,
        }));
    }
    if let (Some(&(n0, small)), Some(&(n, big))) = (
        total_rps.first(),
        total_rps.iter().find(|&&(n, _)| n >= 1024),
    ) {
        // The host simulates N machines' worth of events per wall
        // second, so flat *total* sim-req/s across N means flat
        // per-machine scheduler cost — the unsharded dispatcher's O(N²)
        // placement would crater this ratio.
        println!(
            "total sim-req/s at N={n}: {:.2}x of N={n0} (flat = per-machine cost constant)",
            big / small
        );
    }
    serde_json::json!({
        "duration_s": duration_s,
        "sizes": sizes,
        "cells": cells,
    })
}

/// Snapshot capture cost: the N=256 cell with and without one mid-run
/// [`ClusterRunner::snapshot_at`] capture, best-of-`reps` wall clock
/// each. Capture serializes every engine and the full scheduler at a
/// single barrier, so the target is small: < 5% of the run.
fn snapshot_overhead(quick: bool) -> serde_json::Value {
    let n = 256;
    let ctx = crate::cluster::context(0xC1);
    let mut cfg = crate::cluster::cell_config(n, 0xC1);
    cfg.duration_s = if quick { 60 } else { 120 };
    let epochs = cfg.duration_s * 1000 / cfg.controller_period_ms.max(100);
    let capture_epoch = (epochs / 2).max(1) as u32;
    let reps = 2;
    // Warm-up run (first touch pays page faults and lazy init).
    let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
    let mut plain = f64::INFINITY;
    let mut capture = f64::INFINITY;
    let mut snapshot_bytes = 0usize;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
        plain = plain.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &cfg)
            .snapshot_at(capture_epoch)
            .run();
        capture = capture.min(start.elapsed().as_secs_f64() * 1e3);
        snapshot_bytes = run.snapshots[0].1.to_bytes().len();
    }
    let overhead_frac = capture / plain - 1.0;
    println!(
        "snapshot overhead N={n}: plain {plain:.1} ms, with capture {capture:.1} ms \
         ({:+.2}%), snapshot {snapshot_bytes} bytes at epoch {capture_epoch}",
        overhead_frac * 100.0
    );
    serde_json::json!({
        "machines": n,
        "duration_s": cfg.duration_s,
        "capture_epoch": capture_epoch,
        "reps": reps,
        "wall_ms_plain": plain,
        "wall_ms_with_capture": capture,
        "overhead_frac": overhead_frac,
        "snapshot_bytes": snapshot_bytes,
    })
}

/// Fault-injection cost: the N=256 cell with an empty plan versus a
/// small crash/recover/straggler plan, best-of-`reps` wall clock each.
/// The faults are applied single-threaded at barriers the runner
/// already takes, so the target is tight: < 2% of the run. (The two
/// runs simulate different clusters — the faulted one really loses
/// machines — so this probe compares wall clock only.)
fn chaos_overhead(quick: bool) -> serde_json::Value {
    let n = 256;
    let ctx = crate::cluster::context(0xC1);
    let mut cfg = crate::cluster::cell_config(n, 0xC1);
    cfg.duration_s = if quick { 60 } else { 120 };
    let mid = cfg.duration_s as f64 / 2.0;
    let mut faulted = cfg.clone();
    faulted.faults = rhythm_cluster::FaultPlan::new()
        .crash(mid - 10.0, 3)
        .slow_node(mid - 5.0, 7, 0.6)
        .correlated(mid, vec![11, 12])
        .recover(mid + 10.0, 3)
        .recover(mid + 10.0, 7)
        .recover(mid + 12.0, 11)
        .recover(mid + 12.0, 12);
    let reps = 2;
    // Warm-up run (first touch pays page faults and lazy init).
    let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
    let mut plain = f64::INFINITY;
    let mut chaos = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
        plain = plain.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let _ = run_cluster(&ctx, &ControllerChoice::Rhythm, &faulted);
        chaos = chaos.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let overhead_frac = chaos / plain - 1.0;
    println!(
        "chaos overhead N={n}: plain {plain:.1} ms, with {} fault events {chaos:.1} ms \
         ({:+.2}%)",
        faulted.faults.len(),
        overhead_frac * 100.0
    );
    serde_json::json!({
        "machines": n,
        "duration_s": cfg.duration_s,
        "fault_events": faulted.faults.len(),
        "reps": reps,
        "wall_ms_plain": plain,
        "wall_ms_with_faults": chaos,
        "overhead_frac": overhead_frac,
    })
}

/// Runs both grids and writes the JSON report. Returns the path.
pub fn run(quick: bool) -> std::io::Result<PathBuf> {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if host_cpus < 2 {
        println!(
            "note: single-CPU host — parallel speedup cannot manifest; the grids still verify \
             thread-count determinism and measure scheduler cost"
        );
    }
    let sweep = thread_sweep(quick, host_cpus);
    let grid = scaling_grid(quick);
    let snapshot = snapshot_overhead(quick);
    let chaos = chaos_overhead(quick);

    let report = serde_json::json!({
        "schema": "rhythm-cluster-bench/v3",
        "quick": quick,
        "host_cpus": host_cpus,
        "thread_sweep": sweep,
        "scaling_grid": grid,
        "snapshot_overhead": snapshot,
        "chaos_overhead": chaos,
    });
    let dir = std::env::var("RHYTHM_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| repo_root());
    std::fs::create_dir_all(&dir)?;
    let out_path = dir.join("BENCH_cluster.json");
    let mut f = std::fs::File::create(&out_path)?;
    serde_json::to_writer_pretty(&mut f, &report)?;
    f.flush()?;
    println!("wrote {}", out_path.display());
    Ok(out_path)
}
