//! The constant-load co-location grid behind Figures 9-14.
//!
//! Five LC services × six BE jobs × loads {5,25,45,65,85}% × two
//! controllers (Rhythm, Heracles). Figures 9-11 read per-Servpod BE
//! throughput / CPU utilization / memory-bandwidth utilization at one
//! highlighted Servpod per service (Tomcat, Slave, Zookeeper, Memcached,
//! Kibana); Figures 12-14 read service-level EMU / CPU / MemBW
//! improvements of Rhythm over Heracles.

use crate::{parallel_map, Report};
use rhythm_core::experiment::{ExperimentConfig, ServiceContext};
use rhythm_core::metrics::{improvement, RunMetrics};
use rhythm_workloads::{apps, BeSpec, LoadGen};
use serde::Serialize;

/// Loads of the constant-load experiments, in percent of max load.
pub const LOADS_PCT: [u32; 5] = [5, 25, 45, 65, 85];

/// Run length per cell in virtual seconds.
const DURATION_S: u64 = 180;

/// The highlighted Servpod per service (Figures 9-11).
pub fn focus_pod(service: &str) -> &'static str {
    match service {
        "e-commerce" => "tomcat",
        "redis" => "slave",
        "solr" => "zookeeper",
        "elgg" => "memcached",
        "elasticsearch" => "kibana",
        "snms" => "frontend",
        _ => panic!("unknown service {service}"),
    }
}

/// One grid cell: both controllers on the same (service, BE, load).
#[derive(Clone, Debug, Serialize)]
pub struct GridCell {
    /// Service name.
    pub service: String,
    /// BE workload name.
    pub be: String,
    /// Load in percent of max.
    pub load_pct: u32,
    /// Metrics under Rhythm.
    pub rhythm: RunMetrics,
    /// Metrics under Heracles.
    pub heracles: RunMetrics,
}

/// Summary of one prepared service context (thresholds etc.).
#[derive(Clone, Debug, Serialize)]
pub struct CtxSummary {
    /// Service name.
    pub service: String,
    /// Measured SLA in ms.
    pub sla_ms: f64,
    /// Per-Servpod (name, contribution, loadlimit, slacklimit).
    pub pods: Vec<(String, f64, f64, f64)>,
}

/// The full grid.
#[derive(Clone, Debug, Serialize)]
pub struct Grid {
    /// Prepared-context summaries.
    pub contexts: Vec<CtxSummary>,
    /// All cells.
    pub cells: Vec<GridCell>,
}

fn summarize(ctx: &ServiceContext) -> CtxSummary {
    CtxSummary {
        service: ctx.service.name.clone(),
        sla_ms: ctx.sla_ms,
        pods: ctx
            .thresholds
            .contributions
            .iter()
            .zip(&ctx.thresholds.thresholds)
            .map(|(c, t)| (c.name.clone(), c.value, t.loadlimit, t.slacklimit))
            .collect(),
    }
}

/// Prepares the five evaluation services in parallel.
pub fn prepare_contexts(seed: u64) -> Vec<ServiceContext> {
    let probe = BeSpec::colocation_set();
    let jobs: Vec<Box<dyn FnOnce() -> ServiceContext + Send>> = apps::evaluation_apps()
        .into_iter()
        .map(|service| {
            let probe = probe.clone();
            Box::new(move || ServiceContext::prepare(service, &probe, seed)) as _
        })
        .collect();
    parallel_map(jobs)
}

/// Builds the full grid (expensive; parallelized across cells).
pub fn build(seed: u64) -> Grid {
    let contexts = prepare_contexts(seed);
    let bes = BeSpec::colocation_set();
    let mut jobs: Vec<Box<dyn FnOnce() -> GridCell + Send>> = Vec::new();
    for ctx in &contexts {
        for be in &bes {
            for load_pct in LOADS_PCT {
                let ctx = ctx.clone();
                let be = be.clone();
                jobs.push(Box::new(move || {
                    let cfg = ExperimentConfig {
                        bes: vec![be.clone()],
                        load: LoadGen::constant(load_pct as f64 / 100.0),
                        duration_s: DURATION_S,
                        seed: seed ^ ((load_pct as u64) << 8),
                        record_timeline: false,
                        controller_period_ms: 2_000,
                    };
                    let outcome = ctx.compare(&cfg);
                    GridCell {
                        service: ctx.service.name.clone(),
                        be: be.name.clone(),
                        load_pct,
                        rhythm: outcome.rhythm,
                        heracles: outcome.heracles,
                    }
                }));
            }
        }
    }
    Grid {
        contexts: contexts.iter().map(summarize).collect(),
        cells: parallel_map(jobs),
    }
}

/// Per-Servpod metric selector for Figures 9-11.
fn pod_metric(m: &RunMetrics, pod: &str, which: PodMetric) -> f64 {
    let p = m.pod(pod).expect("focus pod exists");
    match which {
        PodMetric::BeThroughput => p.be_throughput,
        PodMetric::CpuUtil => p.cpu_util * 100.0,
        PodMetric::MembwUtil => p.membw_util * 100.0,
    }
}

#[derive(Clone, Copy)]
enum PodMetric {
    BeThroughput,
    CpuUtil,
    MembwUtil,
}

fn bes_of(grid: &Grid, service: &str) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for c in &grid.cells {
        if c.service == service && !seen.contains(&c.be) {
            seen.push(c.be.clone());
        }
    }
    seen
}

fn render_pod_figure(grid: &Grid, which: PodMetric, unit: &str) -> String {
    let mut out = String::new();
    for ctx in &grid.contexts {
        let pod = focus_pod(&ctx.service);
        out.push_str(&format!("{} — Servpod {pod} ({unit})\n", ctx.service));
        out.push_str(&format!("{:<18}", "BE \\ load"));
        for l in LOADS_PCT {
            out.push_str(&format!("  {l:>3}%R {l:>3}%H"));
        }
        out.push('\n');
        for be in bes_of(grid, &ctx.service) {
            out.push_str(&format!("{be:<18}"));
            for l in LOADS_PCT {
                let cell = grid
                    .cells
                    .iter()
                    .find(|c| c.service == ctx.service && c.be == be && c.load_pct == l)
                    .expect("cell exists");
                out.push_str(&format!(
                    " {:>5.2} {:>5.2}",
                    pod_metric(&cell.rhythm, pod, which),
                    pod_metric(&cell.heracles, pod, which)
                ));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out.push_str("(columns: Rhythm then Heracles at each load)\n");
    out
}

/// Service-level improvement selector for Figures 12-14.
fn svc_improvement(cell: &GridCell, which: SvcMetric) -> f64 {
    let (r, h) = match which {
        SvcMetric::Emu => (cell.rhythm.emu, cell.heracles.emu),
        SvcMetric::Cpu => (cell.rhythm.cpu_util, cell.heracles.cpu_util),
        SvcMetric::Membw => (cell.rhythm.membw_util, cell.heracles.membw_util),
    };
    improvement(r, h) * 100.0
}

#[derive(Clone, Copy)]
enum SvcMetric {
    Emu,
    Cpu,
    Membw,
}

fn render_improvement_figure(grid: &Grid, which: SvcMetric, what: &str) -> String {
    let mut out = String::new();
    for ctx in &grid.contexts {
        out.push_str(&format!(
            "{} — {what} improvement over Heracles (%)\n",
            ctx.service
        ));
        out.push_str(&format!("{:<18}", "BE \\ load"));
        for l in LOADS_PCT {
            out.push_str(&format!(" {l:>7}%"));
        }
        out.push_str(&format!(" {:>8}\n", "avg"));
        for be in bes_of(grid, &ctx.service) {
            out.push_str(&format!("{be:<18}"));
            let mut sum = 0.0;
            for l in LOADS_PCT {
                let cell = grid
                    .cells
                    .iter()
                    .find(|c| c.service == ctx.service && c.be == be && c.load_pct == l)
                    .expect("cell exists");
                let v = svc_improvement(cell, which);
                sum += v;
                out.push_str(&format!(" {v:>8.1}"));
            }
            out.push_str(&format!(" {:>8.1}\n", sum / LOADS_PCT.len() as f64));
        }
        let all: Vec<f64> = grid
            .cells
            .iter()
            .filter(|c| c.service == ctx.service)
            .map(|c| svc_improvement(c, which))
            .collect();
        out.push_str(&format!(
            "{:<18} {:>8.1}% average across all groups\n\n",
            "=> service avg",
            all.iter().sum::<f64>() / all.len().max(1) as f64
        ));
    }
    out
}

fn thresholds_block(grid: &Grid) -> String {
    let mut out = String::from("derived thresholds (contribution, loadlimit, slacklimit):\n");
    for ctx in &grid.contexts {
        out.push_str(&format!("  {} (SLA {:.1} ms)\n", ctx.service, ctx.sla_ms));
        for (name, c, ll, sl) in &ctx.pods {
            out.push_str(&format!(
                "    {name:<16} C={c:<8.4} loadlimit={:.0}% slacklimit={sl:.3}\n",
                ll * 100.0
            ));
        }
    }
    out
}

/// Writes the Figure 9 report from a built grid.
pub fn fig09(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig09",
        "BE throughput at Servpods under different loads (Figure 9)",
    );
    r.line(thresholds_block(grid));
    r.line(render_pod_figure(
        grid,
        PodMetric::BeThroughput,
        "normalized BE throughput",
    ));
    r.finish(grid)
}

/// Writes the Figure 10 report.
pub fn fig10(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig10",
        "CPU utilization at Servpods under different loads (Figure 10)",
    );
    r.line(render_pod_figure(grid, PodMetric::CpuUtil, "machine CPU %"));
    r.finish(grid)
}

/// Writes the Figure 11 report.
pub fn fig11(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig11",
        "memory bandwidth utilization at Servpods under different loads (Figure 11)",
    );
    r.line(render_pod_figure(
        grid,
        PodMetric::MembwUtil,
        "machine MemBW %",
    ));
    r.finish(grid)
}

/// Writes the Figure 12 report.
pub fn fig12(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig12",
        "EMU improvements under different loads (Figure 12)",
    );
    r.line(render_improvement_figure(grid, SvcMetric::Emu, "EMU"));
    r.finish(grid)
}

/// Writes the Figure 13 report.
pub fn fig13(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new("fig13", "CPU utilization improvements (Figure 13)");
    r.line(render_improvement_figure(
        grid,
        SvcMetric::Cpu,
        "CPU utilization",
    ));
    r.finish(grid)
}

/// Writes the Figure 14 report.
pub fn fig14(grid: &Grid) -> std::io::Result<()> {
    let mut r = Report::new(
        "fig14",
        "memory bandwidth utilization improvements (Figure 14)",
    );
    r.line(render_improvement_figure(
        grid,
        SvcMetric::Membw,
        "MemBW utilization",
    ));
    r.finish(grid)
}

/// Builds the grid once and writes all six figures.
pub fn run_all(seed: u64) -> std::io::Result<()> {
    let grid = build(seed);
    fig09(&grid)?;
    fig10(&grid)?;
    fig11(&grid)?;
    fig12(&grid)?;
    fig13(&grid)?;
    fig14(&grid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_metrics(be: f64, cpu: f64) -> RunMetrics {
        RunMetrics {
            lc_throughput: 0.5,
            be_throughput: be,
            emu: 0.5 + be,
            cpu_util: cpu,
            membw_util: cpu / 2.0,
            p99_ms: 100.0,
            sla_ms: 200.0,
            tail_ratio: 0.5,
            sla_violations: 0,
            be_kills: 0,
            pods: vec![rhythm_core::metrics::PodMetrics {
                name: "tomcat".into(),
                be_throughput: be,
                cpu_util: cpu,
                membw_util: cpu / 2.0,
                be_instances: 2.0,
                sla_violations: 0,
                be_kills: 0,
            }],
        }
    }

    fn fake_grid() -> Grid {
        let mut cells = Vec::new();
        for &l in &LOADS_PCT {
            cells.push(GridCell {
                service: "e-commerce".into(),
                be: "wordcount".into(),
                load_pct: l,
                rhythm: fake_metrics(0.8, 0.6),
                heracles: fake_metrics(0.4, 0.3),
            });
        }
        Grid {
            contexts: vec![CtxSummary {
                service: "e-commerce".into(),
                sla_ms: 250.0,
                pods: vec![("tomcat".into(), 0.1, 0.9, 0.3)],
            }],
            cells,
        }
    }

    #[test]
    fn focus_pods_cover_every_service() {
        for s in ["e-commerce", "redis", "solr", "elgg", "elasticsearch", "snms"] {
            assert!(!focus_pod(s).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "unknown service")]
    fn focus_pod_rejects_unknown() {
        focus_pod("nope");
    }

    #[test]
    fn pod_figure_renders_both_controllers() {
        let g = fake_grid();
        let s = render_pod_figure(&g, PodMetric::BeThroughput, "BE tp");
        assert!(s.contains("tomcat"));
        assert!(s.contains("0.80"), "rhythm value rendered: {s}");
        assert!(s.contains("0.40"), "heracles value rendered");
    }

    #[test]
    fn improvement_figure_computes_percentages() {
        let g = fake_grid();
        let s = render_improvement_figure(&g, SvcMetric::Cpu, "CPU");
        // (0.6 - 0.3) / 0.3 = 100%.
        assert!(s.contains("100.0"), "{s}");
        assert!(s.contains("service avg"));
    }

    #[test]
    fn thresholds_block_lists_pods() {
        let g = fake_grid();
        let s = thresholds_block(&g);
        assert!(s.contains("tomcat"));
        assert!(s.contains("loadlimit=90%"));
        assert!(s.contains("slacklimit=0.300"));
    }
}
