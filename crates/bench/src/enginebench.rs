//! Engine throughput trajectory harness.
//!
//! Times `Engine::run` wall-clock over a fixed seeded grid of scenarios
//! (solo / static / managed, low and high load, chain and fan-out
//! services) and writes `BENCH_engine.json` at the repo root (override
//! the output directory with `RHYTHM_BENCH_DIR` to keep the working
//! tree clean), so every perf PR records a comparable number. The
//! committed
//! `BENCH_engine_baseline.json` holds the numbers recorded by this same
//! harness *before* the hot-path rework; when present, the current run
//! embeds it and reports the speedup.
//!
//! Invoked via the `engine_bench` binary:
//!
//! ```text
//! cargo run --release --bin engine_bench            # full grid -> BENCH_engine.json
//! cargo run --release --bin engine_bench -- --quick # short grid -> BENCH_engine_quick.json
//! cargo run --release --bin engine_bench -- --baseline # full grid -> BENCH_engine_baseline.json
//! ```

use rhythm_controller::Thresholds;
use rhythm_core::{ControlMode, Engine, EngineConfig};
use rhythm_workloads::{apps, BeKind, BeSpec, ServiceSpec};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// One grid cell: a named (service, config) pair.
struct Cell {
    name: &'static str,
    service: ServiceSpec,
    cfg: EngineConfig,
}

/// The fixed benchmark grid. `scale` shrinks simulated durations for
/// `--quick` runs (floored so warm-up never dominates).
fn grid(scale: f64) -> Vec<Cell> {
    let d = |secs: u64| ((secs as f64 * scale) as u64).max(8);
    let mut cells = Vec::new();
    cells.push(Cell {
        name: "ecommerce/solo@0.6",
        service: apps::ecommerce(),
        cfg: EngineConfig::solo(0.6, d(120), 42),
    });
    cells.push(Cell {
        name: "ecommerce/solo@0.9",
        service: apps::ecommerce(),
        cfg: EngineConfig::solo(0.9, d(180), 45),
    });
    let mut cfg = EngineConfig::solo(0.6, d(120), 43);
    cfg.bes = vec![BeSpec::of(BeKind::StreamDram { big: true })];
    cfg.mode = ControlMode::Static {
        instances: 2,
        cores: 4,
        llc_ways: 4,
        pods: Vec::new(),
    };
    cells.push(Cell {
        name: "ecommerce/static+stream",
        service: apps::ecommerce(),
        cfg,
    });
    let mut cfg = EngineConfig::solo(0.5, d(160), 44);
    cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
    cfg.sla_ms = 400.0;
    cfg.mode = ControlMode::Managed {
        thresholds: vec![Thresholds::new(0.9, 0.05); 4],
    };
    cells.push(Cell {
        name: "ecommerce/managed+wordcount",
        service: apps::ecommerce(),
        cfg,
    });
    cells.push(Cell {
        name: "snms/solo@0.8",
        service: apps::snms(),
        cfg: EngineConfig::solo(0.8, d(120), 46),
    });
    cells.push(Cell {
        name: "elgg/solo@0.5",
        service: apps::elgg(),
        cfg: EngineConfig::solo(0.5, d(120), 47),
    });
    cells
}

struct CellResult {
    name: &'static str,
    sim_seconds: u64,
    requests: u64,
    best_wall_ms: f64,
    mean_wall_ms: f64,
    sim_req_per_sec: f64,
}

/// Repo root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}

/// Where `BENCH_*.json` is written: `RHYTHM_BENCH_DIR` when set (so CI
/// and local `--quick` runs keep the working tree clean), otherwise the
/// repo root where the baselines are committed.
fn bench_dir() -> PathBuf {
    std::env::var("RHYTHM_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| repo_root())
}

/// Pulls a `"key": <number>` value out of JSON text written by this
/// harness. The key must be unique in the document (ours are); this
/// avoids needing a JSON parser for the one number we read back.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pulls one cell's `sim_req_per_sec` out of a bench JSON by cell name:
/// finds the cell's `"name"` entry, then reads the first
/// `sim_req_per_sec` after it (the harness always writes the rate right
/// after the name within the same cell object).
fn extract_cell_rps(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"name\": \"{name}\"");
    let at = json.find(&needle)?;
    extract_number(&json[at..], "sim_req_per_sec")
}

/// Threshold below which a per-cell throughput ratio counts as a
/// regression worth flagging (CI warns, never fails: quick-grid cells
/// are short enough that scheduling noise alone can dent one cell).
const REGRESSION_RATIO: f64 = 0.90;

/// Runs the grid and writes the JSON report. Returns the output path.
pub fn run(quick: bool, record_baseline: bool) -> std::io::Result<PathBuf> {
    let (scale, reps) = if quick { (0.3, 2) } else { (1.0, 5) };
    let cells = grid(scale);
    let mut results: Vec<CellResult> = Vec::with_capacity(cells.len());
    for cell in &cells {
        // One untimed warm-up run per cell.
        let _ = Engine::new(cell.service.clone(), cell.cfg.clone()).run();
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut requests = 0;
        for _ in 0..reps {
            let engine = Engine::new(cell.service.clone(), cell.cfg.clone());
            let start = Instant::now();
            let out = engine.run();
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            best = best.min(wall_ms);
            total += wall_ms;
            requests = out.completed_total;
        }
        let r = CellResult {
            name: cell.name,
            sim_seconds: cell.cfg.duration.as_secs_f64() as u64,
            requests,
            best_wall_ms: best,
            mean_wall_ms: total / reps as f64,
            sim_req_per_sec: requests as f64 / (best / 1e3),
        };
        println!(
            "{:<28} {:>7} req / {:>4} sim-s  best {:>8.2} ms  {:>10.0} req/s",
            r.name, r.requests, r.sim_seconds, r.best_wall_ms, r.sim_req_per_sec
        );
        results.push(r);
    }

    let total_requests: u64 = results.iter().map(|r| r.requests).sum();
    let total_best_ms: f64 = results.iter().map(|r| r.best_wall_ms).sum();
    let aggregate_rps = total_requests as f64 / (total_best_ms / 1e3);
    println!(
        "aggregate: {total_requests} requests in {total_best_ms:.1} ms -> {aggregate_rps:.0} simulated req/s"
    );

    let dir = bench_dir();
    let baseline_path = dir.join("BENCH_engine_baseline.json");
    let baseline_text = if record_baseline {
        None
    } else {
        // The baseline is committed at the repo root; an overridden
        // bench dir takes precedence if it holds its own copy.
        std::fs::read_to_string(&baseline_path)
            .or_else(|_| std::fs::read_to_string(repo_root().join("BENCH_engine_baseline.json")))
            .ok()
    };
    let baseline_rps = baseline_text
        .as_deref()
        .and_then(|s| extract_number(s, "aggregate_sim_req_per_sec"));
    let speedup = baseline_rps.map(|b| aggregate_rps / b);
    if let Some(s) = speedup {
        println!("speedup vs pre-refactor baseline: {s:.2}x");
    }

    // Per-cell diff against the baseline grid: print one
    // `bench-regression:` line per cell that lost more than 10%
    // (bench-smoke greps these into warning annotations) and record the
    // whole comparison as its own artifact.
    let mut comparisons: Vec<serde_json::Value> = Vec::new();
    if let Some(base) = baseline_text.as_deref() {
        for r in &results {
            let Some(b) = extract_cell_rps(base, r.name) else {
                continue;
            };
            let ratio = r.sim_req_per_sec / b;
            if ratio < REGRESSION_RATIO {
                println!(
                    "bench-regression: {} {:.2}x vs baseline ({:.0} -> {:.0} req/s)",
                    r.name, ratio, b, r.sim_req_per_sec
                );
            }
            comparisons.push(serde_json::json!({
                "name": r.name,
                "baseline_sim_req_per_sec": b,
                "sim_req_per_sec": r.sim_req_per_sec,
                "ratio": ratio,
                "regression": ratio < REGRESSION_RATIO,
            }));
        }
    }

    let cells_json: Vec<serde_json::Value> = results
        .iter()
        .map(|r| {
            serde_json::json!({
                "name": r.name,
                "sim_seconds": r.sim_seconds,
                "requests": r.requests,
                "best_wall_ms": r.best_wall_ms,
                "mean_wall_ms": r.mean_wall_ms,
                "sim_req_per_sec": r.sim_req_per_sec,
            })
        })
        .collect();
    let report = serde_json::json!({
        "schema": "rhythm-engine-bench/v1",
        "quick": quick,
        "reps": reps,
        "duration_scale": scale,
        "cells": cells_json,
        "aggregate_requests": total_requests,
        "aggregate_best_wall_ms": total_best_ms,
        "aggregate_sim_req_per_sec": aggregate_rps,
        "baseline_sim_req_per_sec": baseline_rps,
        "speedup_vs_baseline": speedup,
    });
    let out_path = if record_baseline {
        baseline_path
    } else if quick {
        dir.join("BENCH_engine_quick.json")
    } else {
        dir.join("BENCH_engine.json")
    };
    std::fs::create_dir_all(out_path.parent().unwrap_or(&dir))?;
    let mut f = std::fs::File::create(&out_path)?;
    serde_json::to_writer_pretty(&mut f, &report)?;
    f.flush()?;
    println!("wrote {}", out_path.display());
    if !comparisons.is_empty() {
        let compare = serde_json::json!({
            "schema": "rhythm-engine-bench-compare/v1",
            "quick": quick,
            "regression_ratio": REGRESSION_RATIO,
            "cells": comparisons,
            "aggregate_speedup_vs_baseline": speedup,
        });
        let cmp_path = dir.join("BENCH_engine_compare.json");
        let mut f = std::fs::File::create(&cmp_path)?;
        serde_json::to_writer_pretty(&mut f, &compare)?;
        f.flush()?;
        println!("wrote {}", cmp_path.display());
    }
    Ok(out_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_number_finds_unique_keys() {
        let j = "{\n  \"aggregate_sim_req_per_sec\": 123456.75,\n  \"x\": 1\n}";
        assert_eq!(extract_number(j, "aggregate_sim_req_per_sec"), Some(123456.75));
        assert_eq!(extract_number(j, "missing"), None);
    }

    #[test]
    fn extract_cell_rps_reads_the_named_cell() {
        let j = r#"{
  "cells": [
    {
      "name": "ecommerce/solo@0.6",
      "sim_req_per_sec": 100.5
    },
    {
      "name": "snms/solo@0.8",
      "sim_req_per_sec": 200.25
    }
  ],
  "aggregate_sim_req_per_sec": 150.0
}"#;
        assert_eq!(extract_cell_rps(j, "ecommerce/solo@0.6"), Some(100.5));
        assert_eq!(extract_cell_rps(j, "snms/solo@0.8"), Some(200.25));
        assert_eq!(extract_cell_rps(j, "missing/cell"), None);
    }

    #[test]
    fn grid_is_seeded_and_scaled() {
        let full = grid(1.0);
        let quick = grid(0.3);
        assert_eq!(full.len(), quick.len());
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.cfg.seed, q.cfg.seed);
            assert!(q.cfg.duration <= f.cfg.duration);
        }
    }
}
