//! Figure 2 — impact of interference on per-component tail latency.
//!
//! Each LC component is co-located, alone, with one interference
//! generator at a time (stream-dram big/small, stream-llc big/small,
//! DVFS, iperf, CPU-stress) while the service runs at 20/40/60/80% of
//! max load; the reported number is the 99th-percentile latency increase
//! relative to the solo run at the same load.

use crate::parallel_map;
use rhythm_core::{ControlMode, Engine, EngineConfig};
use rhythm_workloads::{BeKind, BeSpec, ServiceSpec};
use serde::Serialize;

/// The seven interference groups of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Group {
    /// stream-dram saturating the DRAM channel.
    StreamDramBig,
    /// stream-dram at half intensity.
    StreamDramSmall,
    /// stream-llc saturating the LLC.
    StreamLlcBig,
    /// stream-llc at half intensity.
    StreamLlcSmall,
    /// LC cores down-clocked to the DVFS floor.
    Dvfs,
    /// iperf saturating the NIC.
    Iperf,
    /// CPU-stress on the sibling cores.
    CpuStress,
}

impl Group {
    /// All groups in the paper's panel order.
    pub fn all() -> [Group; 7] {
        [
            Group::StreamDramBig,
            Group::StreamDramSmall,
            Group::StreamLlcBig,
            Group::StreamLlcSmall,
            Group::Dvfs,
            Group::Iperf,
            Group::CpuStress,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Group::StreamDramBig => "stream_dram(big)",
            Group::StreamDramSmall => "stream_dram(small)",
            Group::StreamLlcBig => "stream_llc(big)",
            Group::StreamLlcSmall => "stream_llc(small)",
            Group::Dvfs => "DVFS",
            Group::Iperf => "iperf",
            Group::CpuStress => "CPU_stress",
        }
    }

    /// The BE job and static allocation (instances, cores, ways) that
    /// realizes this group, or `None` for the DVFS group.
    fn be(&self) -> Option<(BeSpec, u32, u32, u32)> {
        match self {
            Group::StreamDramBig => Some((BeSpec::of(BeKind::StreamDram { big: true }), 1, 4, 2)),
            Group::StreamDramSmall => {
                Some((BeSpec::of(BeKind::StreamDram { big: false }), 1, 4, 2))
            }
            Group::StreamLlcBig => Some((BeSpec::of(BeKind::StreamLlc { big: true }), 1, 4, 8)),
            Group::StreamLlcSmall => Some((BeSpec::of(BeKind::StreamLlc { big: false }), 1, 4, 8)),
            Group::Dvfs => None,
            Group::Iperf => Some((BeSpec::of(BeKind::Iperf), 1, 2, 1)),
            Group::CpuStress => Some((BeSpec::of(BeKind::CpuStress), 1, 12, 2)),
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Component (Servpod) name.
    pub pod: String,
    /// Interference group label.
    pub group: &'static str,
    /// Load as percent of max.
    pub load_pct: u32,
    /// 99th-percentile latency increase relative to solo, in percent.
    pub increase_pct: f64,
}

/// The full characterization of one service.
#[derive(Clone, Debug, Serialize)]
pub struct Characterization {
    /// Service name.
    pub service: String,
    /// All cells.
    pub cells: Vec<Cell>,
}

const LOADS: [u32; 4] = [20, 40, 60, 80];
const DURATION_S: u64 = 60;

fn run_cell(
    service: &ServiceSpec,
    pod: usize,
    group: Group,
    load_pct: u32,
    seed: u64,
) -> (f64, f64) {
    let load = load_pct as f64 / 100.0;
    let solo = Engine::new(service.clone(), EngineConfig::solo(load, DURATION_S, seed)).run();
    let mut cfg = EngineConfig::solo(load, DURATION_S, seed);
    match group.be() {
        Some((be, instances, cores, llc_ways)) => {
            cfg.bes = vec![be];
            cfg.mode = ControlMode::Static {
                instances,
                cores,
                llc_ways,
                pods: vec![pod],
            };
        }
        None => {
            cfg.lc_freq_mhz = Some(cfg.machine_spec.min_freq_mhz);
            cfg.lc_freq_pods = vec![pod];
        }
    }
    let colocated = Engine::new(service.clone(), cfg).run();
    (solo.p99_ms(), colocated.p99_ms())
}

/// Characterizes every component of `service` against every group.
pub fn characterize(service: &ServiceSpec, seed: u64) -> Characterization {
    let mut jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for (pod, node) in service.nodes.iter().enumerate() {
        let pod_name = node.component.name.clone();
        for group in Group::all() {
            for load_pct in LOADS {
                let service = service.clone();
                let pod_name = pod_name.clone();
                jobs.push(Box::new(move || {
                    let (solo, coloc) = run_cell(&service, pod, group, load_pct, seed);
                    Cell {
                        pod: pod_name,
                        group: group.label(),
                        load_pct,
                        increase_pct: (coloc - solo) / solo * 100.0,
                    }
                }));
            }
        }
    }
    Characterization {
        service: service.name.clone(),
        cells: parallel_map(jobs),
    }
}

/// Renders one characterization as a text matrix.
pub fn render(c: &Characterization) -> String {
    let mut out = String::new();
    let pods: Vec<&str> = {
        let mut seen = Vec::new();
        for cell in &c.cells {
            if !seen.contains(&cell.pod.as_str()) {
                seen.push(cell.pod.as_str());
            }
        }
        seen
    };
    out.push_str(&format!(
        "{} — 99p latency increase (%) vs solo\n",
        c.service
    ));
    out.push_str(&format!("{:<20} {:>5}", "group", "load"));
    for p in &pods {
        out.push_str(&format!(" {p:>14}"));
    }
    out.push('\n');
    for group in Group::all() {
        for load in LOADS {
            out.push_str(&format!("{:<20} {:>4}%", group.label(), load));
            for p in &pods {
                let v = c
                    .cells
                    .iter()
                    .find(|cell| {
                        cell.pod == *p && cell.group == group.label() && cell.load_pct == load
                    })
                    .map(|cell| cell.increase_pct)
                    .unwrap_or(f64::NAN);
                out.push_str(&format!(" {v:>13.1}%"));
            }
            out.push('\n');
        }
    }
    out
}

/// One-line comparison of the two headline pods (the paper's claim:
/// interference tolerance differs wildly between components).
pub fn summary(c: &Characterization, sensitive: &str, tolerant: &str) -> String {
    let avg = |pod: &str| {
        let xs: Vec<f64> = c
            .cells
            .iter()
            .filter(|cell| cell.pod == pod)
            .map(|cell| cell.increase_pct)
            .collect();
        xs.iter().sum::<f64>() / xs.len().max(1) as f64
    };
    format!(
        "{}: avg increase {}={:.1}% vs {}={:.1}% (ratio {:.1}x)",
        c.service,
        sensitive,
        avg(sensitive),
        tolerant,
        avg(tolerant),
        avg(sensitive) / avg(tolerant).max(1e-9)
    )
}

/// Runs Figure 2a (Redis) and 2b (E-commerce) and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = crate::Report::new(
        "fig02",
        "interference impact on per-component 99p latency (Figure 2)",
    );
    let redis = characterize(&rhythm_workloads::apps::redis(), 0xF2A);
    let ecom = characterize(&rhythm_workloads::apps::ecommerce(), 0xF2B);
    report.line(render(&redis));
    report.blank();
    report.line(render(&ecom));
    report.line(summary(&redis, "master", "slave"));
    report.line(summary(&ecom, "mysql", "tomcat"));
    report.finish(&(&redis, &ecom))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_groups_in_paper_order() {
        let all = Group::all();
        assert_eq!(all.len(), 7);
        assert_eq!(all[0].label(), "stream_dram(big)");
        assert_eq!(all[4].label(), "DVFS");
    }

    #[test]
    fn dvfs_group_has_no_be() {
        assert!(Group::Dvfs.be().is_none());
        for g in Group::all() {
            if g != Group::Dvfs {
                assert!(g.be().is_some(), "{:?}", g);
            }
        }
    }

    #[test]
    fn cpu_stress_gets_the_biggest_core_grant() {
        let (_, _, cores, _) = Group::CpuStress.be().unwrap();
        for g in [Group::StreamDramBig, Group::StreamLlcBig, Group::Iperf] {
            let (_, _, c, _) = g.be().unwrap();
            assert!(cores > c);
        }
    }

    #[test]
    fn render_and_summary_on_synthetic_cells() {
        let c = Characterization {
            service: "redis".into(),
            cells: vec![
                Cell { pod: "master".into(), group: "DVFS", load_pct: 20, increase_pct: 100.0 },
                Cell { pod: "slave".into(), group: "DVFS", load_pct: 20, increase_pct: 10.0 },
            ],
        };
        let r = render(&c);
        assert!(r.contains("master") && r.contains("slave"));
        let s = summary(&c, "master", "slave");
        assert!(s.contains("10.0x"), "{s}");
    }
}
