//! Figure 6 — average sojourn times of the E-commerce Servpods and
//! their normalized coefficients of variation, collected in solo-run.

use rhythm_core::{profile_service, ProfileConfig};
use rhythm_workloads::apps;
use serde::Serialize;

/// The Figure 6 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig06 {
    /// Servpod names.
    pub pods: Vec<String>,
    /// Load fractions.
    pub loads: Vec<f64>,
    /// Mean sojourn per pod per load (ms), `[pod][load]`.
    pub mean_sojourn_ms: Vec<Vec<f64>>,
    /// 99p latency per load (ms).
    pub p99_ms: Vec<f64>,
    /// Normalized CoV share per pod per load (each load column sums to
    /// 1), `[pod][load]`.
    pub cov_share: Vec<Vec<f64>>,
}

/// Collects the Figure 6 dataset via the profiling pipeline (the full
/// tracer path: events → filter → pairing → sojourns).
pub fn collect(seed: u64) -> Fig06 {
    let service = apps::ecommerce();
    let cfg = ProfileConfig {
        load_levels: (1..=17).map(|i| i as f64 * 0.05).collect(),
        duration_s: 40,
        seed,
        min_requests: 3_000,
        use_tracer: true,
    };
    let profile = profile_service(&service, &cfg);
    let n = profile.pods();
    let loads = profile.loads();
    let mean_sojourn_ms: Vec<Vec<f64>> = (0..n).map(|i| profile.sojourn_series(i)).collect();
    let p99_ms = profile.tail_series();
    let mut cov_share = vec![vec![0.0; loads.len()]; n];
    for (j, level) in profile.levels.iter().enumerate() {
        let total: f64 = level.sojourn_cov.iter().sum();
        for (i, share) in cov_share.iter_mut().enumerate().take(n) {
            share[j] = if total > 0.0 {
                level.sojourn_cov[i] / total
            } else {
                0.0
            };
        }
    }
    Fig06 {
        pods: profile.pod_names.clone(),
        loads,
        mean_sojourn_ms,
        p99_ms,
        cov_share,
    }
}

/// Renders the dataset as two text tables (6a and 6b).
pub fn render(d: &Fig06) -> String {
    let mut out = String::new();
    out.push_str("(a) average sojourn time (ms) and overall 99p\n");
    out.push_str(&format!("{:<8}", "load"));
    for p in &d.pods {
        out.push_str(&format!(" {p:>12}"));
    }
    out.push_str(&format!(" {:>10}\n", "99th"));
    for (j, &load) in d.loads.iter().enumerate() {
        out.push_str(&format!("{:<7.0}%", load * 100.0));
        for i in 0..d.pods.len() {
            out.push_str(&format!(" {:>12.2}", d.mean_sojourn_ms[i][j]));
        }
        out.push_str(&format!(" {:>10.1}\n", d.p99_ms[j]));
    }
    out.push_str("\n(b) normalized coefficient-of-variation share\n");
    out.push_str(&format!("{:<8}", "load"));
    for p in &d.pods {
        out.push_str(&format!(" {p:>12}"));
    }
    out.push('\n');
    for (j, &load) in d.loads.iter().enumerate() {
        out.push_str(&format!("{:<7.0}%", load * 100.0));
        for i in 0..d.pods.len() {
            out.push_str(&format!(" {:>12.3}", d.cov_share[i][j]));
        }
        out.push('\n');
    }
    out
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = crate::Report::new(
        "fig06",
        "E-commerce Servpod sojourn times and CoV over load (Figure 6)",
    );
    let d = collect(0xF06);
    report.line(render(&d));
    // Headline checks from the paper's discussion.
    let idx = |name: &str| d.pods.iter().position(|p| p == name).expect("pod");
    let (hap, tom, myq) = (idx("haproxy"), idx("tomcat"), idx("mysql"));
    let last = d.loads.len() - 1;
    let hap_share = d.mean_sojourn_ms[hap][last]
        / d.pods
            .iter()
            .enumerate()
            .map(|(i, _)| d.mean_sojourn_ms[i][last])
            .sum::<f64>();
    report.line(format!(
        "haproxy sojourn share at max load: {:.1}% (paper: <5%)",
        hap_share * 100.0
    ));
    report.line(format!(
        "haproxy CoV share at max load: {:.1}% (paper: >20%)",
        d.cov_share[hap][last] * 100.0
    ));
    report.line(format!(
        "mysql sojourn at max load {:.1} ms vs tomcat {:.1} ms (paper: mysql grows fastest beyond 50%)",
        d.mean_sojourn_ms[myq][last], d.mean_sojourn_ms[tom][last]
    ));
    report.finish(&d)
}
