//! Figure 7 — Servpod sensitivity vs contribution.
//!
//! For each E-commerce Servpod: x = its contribution (Equations 1-5 from
//! the solo profile), y = the increase in the service's 99p latency when
//! *only that Servpod* is co-located with a BE group. The paper's
//! validation claim is a positive correlation regardless of BE.

use crate::parallel_map;
use rhythm_analyzer::contributions;
use rhythm_core::{profile_service, ControlMode, Engine, EngineConfig, ProfileConfig};
use rhythm_sim::pearson;
use rhythm_workloads::{apps, BeKind, BeSpec};
use serde::Serialize;

/// The BE groups of Figure 7.
fn groups() -> Vec<(&'static str, Vec<BeSpec>)> {
    vec![
        (
            "mixed",
            vec![
                BeSpec::of(BeKind::Wordcount),
                BeSpec::of(BeKind::ImageClassify),
                BeSpec::of(BeKind::Lstm),
                BeSpec::of(BeKind::CpuStress),
                BeSpec::of(BeKind::StreamDram { big: true }),
                BeSpec::of(BeKind::StreamLlc { big: true }),
            ],
        ),
        (
            "stream-dram",
            vec![BeSpec::of(BeKind::StreamDram { big: true })],
        ),
        ("CPU-stress", vec![BeSpec::of(BeKind::CpuStress)]),
        (
            "stream-llc",
            vec![BeSpec::of(BeKind::StreamLlc { big: true })],
        ),
    ]
}

/// One scatter point.
#[derive(Clone, Debug, Serialize)]
pub struct Point {
    /// BE group label.
    pub group: &'static str,
    /// Servpod name.
    pub pod: String,
    /// Contribution (x-axis).
    pub contribution: f64,
    /// Sensitivity: relative 99p increase under interference (y-axis).
    pub sensitivity: f64,
}

/// The Figure 7 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig07 {
    /// All scatter points.
    pub points: Vec<Point>,
    /// Pearson correlation per group.
    pub correlation: Vec<(&'static str, f64)>,
}

const LOAD: f64 = 0.65;
const DURATION_S: u64 = 120;

/// Collects the dataset.
pub fn collect(seed: u64) -> Fig07 {
    let service = apps::ecommerce();
    let profile = profile_service(
        &service,
        &ProfileConfig {
            seed,
            ..ProfileConfig::default()
        },
    );
    let contribs = contributions(&profile, &service);
    let solo = Engine::new(service.clone(), EngineConfig::solo(LOAD, DURATION_S, seed)).run();
    let solo_p99 = solo.p99_ms();
    let mut jobs: Vec<Box<dyn FnOnce() -> Point + Send>> = Vec::new();
    for (pod, node) in service.nodes.iter().enumerate() {
        for (label, bes) in groups() {
            let service = service.clone();
            let name = node.component.name.clone();
            let contribution = contribs[pod].value;
            jobs.push(Box::new(move || {
                let mut cfg = EngineConfig::solo(LOAD, DURATION_S, seed);
                cfg.bes = bes;
                cfg.mode = ControlMode::Static {
                    instances: 2,
                    cores: 4,
                    llc_ways: 6,
                    pods: vec![pod],
                };
                let out = Engine::new(service, cfg).run();
                Point {
                    group: label,
                    pod: name,
                    contribution,
                    sensitivity: (out.p99_ms() - solo_p99) / solo_p99,
                }
            }));
        }
    }
    let points = parallel_map(jobs);
    let correlation = groups()
        .iter()
        .map(|(label, _)| {
            let xs: Vec<f64> = points
                .iter()
                .filter(|p| p.group == *label)
                .map(|p| p.contribution)
                .collect();
            let ys: Vec<f64> = points
                .iter()
                .filter(|p| p.group == *label)
                .map(|p| p.sensitivity)
                .collect();
            (*label, pearson(&xs, &ys))
        })
        .collect();
    Fig07 {
        points,
        correlation,
    }
}

/// Renders the scatter as a table.
pub fn render(d: &Fig07) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<12} {:>14} {:>14}\n",
        "group", "servpod", "contribution", "sensitivity"
    ));
    for p in &d.points {
        out.push_str(&format!(
            "{:<14} {:<12} {:>14.4} {:>13.2}x\n",
            p.group, p.pod, p.contribution, p.sensitivity
        ));
    }
    out.push('\n');
    for (g, r) in &d.correlation {
        out.push_str(&format!(
            "{g:<14} contribution-sensitivity Pearson r = {r:.3}\n"
        ));
    }
    out
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = crate::Report::new("fig07", "Servpod sensitivity vs contribution (Figure 7)");
    let d = collect(0xF07);
    report.line(render(&d));
    report.line("paper: sensitivity is positively correlated with contribution for every BE group");
    report.finish(&d)
}
