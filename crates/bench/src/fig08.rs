//! Figure 8 — sojourn-time CoV over load and loadlimit detection.
//!
//! The CoV of per-request sojourn times rises sharply as a Servpod
//! approaches its fluctuation knee; `loadlimit` is the first load point
//! whose CoV exceeds the series average (paper: 76% for MySQL, 87% for
//! Tomcat in E-commerce).

use rhythm_analyzer::loadlimit::{find_loadlimit, smooth3};
use rhythm_core::{profile_service, ProfileConfig};
use rhythm_workloads::apps;
use serde::Serialize;

/// The Figure 8 dataset for one service.
#[derive(Clone, Debug, Serialize)]
pub struct Fig08 {
    /// Servpod names.
    pub pods: Vec<String>,
    /// Load fractions.
    pub loads: Vec<f64>,
    /// CoV per pod per load, `[pod][load]`.
    pub cov: Vec<Vec<f64>>,
    /// Series-average CoV per pod.
    pub avg_cov: Vec<f64>,
    /// Detected loadlimit per pod.
    pub loadlimit: Vec<f64>,
}

/// Collects CoV curves for the E-commerce Servpods over a dense sweep.
pub fn collect(seed: u64) -> Fig08 {
    let service = apps::ecommerce();
    let cfg = ProfileConfig {
        load_levels: (1..=19).map(|i| i as f64 * 0.05).collect(),
        duration_s: 80,
        seed,
        min_requests: 6_000,
        use_tracer: false,
    };
    let profile = profile_service(&service, &cfg);
    let loads = profile.loads();
    let n = profile.pods();
    let cov: Vec<Vec<f64>> = (0..n).map(|i| smooth3(&profile.cov_series(i))).collect();
    let avg_cov: Vec<f64> = cov
        .iter()
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let loadlimit: Vec<f64> = cov.iter().map(|c| find_loadlimit(&loads, c)).collect();
    Fig08 {
        pods: profile.pod_names.clone(),
        loads,
        cov,
        avg_cov,
        loadlimit,
    }
}

/// Renders the CoV table with the detected limits.
pub fn render(d: &Fig08) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<8}", "load"));
    for p in &d.pods {
        out.push_str(&format!(" {p:>12}"));
    }
    out.push('\n');
    for (j, &load) in d.loads.iter().enumerate() {
        out.push_str(&format!("{:<7.0}%", load * 100.0));
        for i in 0..d.pods.len() {
            out.push_str(&format!(" {:>12.3}", d.cov[i][j]));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<8}", "avg"));
    for &a in &d.avg_cov {
        out.push_str(&format!(" {a:>12.3}"));
    }
    out.push('\n');
    out.push_str(&format!("{:<8}", "limit"));
    for &l in &d.loadlimit {
        out.push_str(&format!(" {:>11.0}%", l * 100.0));
    }
    out.push('\n');
    out
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = crate::Report::new(
        "fig08",
        "sojourn CoV over load and loadlimit detection (Figure 8)",
    );
    let d = collect(0xF08);
    report.line(render(&d));
    let idx = |name: &str| d.pods.iter().position(|p| p == name).expect("pod");
    report.line(format!(
        "detected loadlimits: mysql {:.0}% (paper 76%), tomcat {:.0}% (paper 87%)",
        d.loadlimit[idx("mysql")] * 100.0,
        d.loadlimit[idx("tomcat")] * 100.0
    ));
    report.finish(&d)
}
