//! Figure 15 — performance under the production (ClarkNet-like) load.
//!
//! Five LC services × six BE jobs under the diurnal production trace;
//! panels (a)-(c) report the average improvement of Rhythm over Heracles
//! in EMU / CPU utilization / MemBW utilization, panel (d) the worst 99p
//! latency normalized to the SLA under Rhythm (the paper's headline: the
//! SLA always holds, worst case 0.99×).

use crate::{colocation::prepare_contexts, parallel_map, Report};
use rhythm_core::experiment::ExperimentConfig;
use rhythm_core::metrics::improvement;
use rhythm_sim::SimDuration;
use rhythm_workloads::{BeSpec, LoadGen};
use serde::Serialize;

/// Trace length in virtual seconds (five diurnal cycles, the paper's
/// five ClarkNet days compressed ~20x as in §5.3 — compressing harder
/// makes load ramps unrealistically fast relative to the 2 s controller
/// period).
const TRACE_S: u64 = 3_600;

/// One production-load cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Service name.
    pub service: String,
    /// BE name.
    pub be: String,
    /// EMU improvement (fraction).
    pub emu_gain: f64,
    /// CPU-utilization improvement (fraction).
    pub cpu_gain: f64,
    /// MemBW-utilization improvement (fraction).
    pub membw_gain: f64,
    /// Rhythm's worst 99p / SLA.
    pub tail_ratio: f64,
    /// Rhythm SLA-violation ticks.
    pub sla_violations: u64,
}

/// The Figure 15 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig15 {
    /// All cells.
    pub cells: Vec<Cell>,
}

/// Collects the dataset.
pub fn collect(seed: u64) -> Fig15 {
    let contexts = prepare_contexts(seed);
    let bes = BeSpec::colocation_set();
    let mut jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for ctx in &contexts {
        for be in &bes {
            let ctx = ctx.clone();
            let be = be.clone();
            jobs.push(Box::new(move || {
                let load =
                    LoadGen::clarknet_like(5, SimDuration::from_secs(TRACE_S), 240, 0.95, seed);
                let cfg = ExperimentConfig {
                    bes: vec![be.clone()],
                    load,
                    duration_s: TRACE_S,
                    seed: seed ^ 0x15,
                    record_timeline: false,
                    controller_period_ms: 500,
                };
                let o = ctx.compare(&cfg);
                Cell {
                    service: ctx.service.name.clone(),
                    be: be.name.clone(),
                    emu_gain: improvement(o.rhythm.emu, o.heracles.emu),
                    cpu_gain: improvement(o.rhythm.cpu_util, o.heracles.cpu_util),
                    membw_gain: improvement(o.rhythm.membw_util, o.heracles.membw_util),
                    tail_ratio: o.rhythm.tail_ratio,
                    sla_violations: o.rhythm.sla_violations,
                }
            }));
        }
    }
    Fig15 {
        cells: parallel_map(jobs),
    }
}

fn heatmap(d: &Fig15, pick: impl Fn(&Cell) -> f64, title: &str, fmt_pct: bool) -> String {
    let mut out = format!("({title})\n");
    let services: Vec<String> = {
        let mut seen = Vec::new();
        for c in &d.cells {
            if !seen.contains(&c.service) {
                seen.push(c.service.clone());
            }
        }
        seen
    };
    let bes: Vec<String> = {
        let mut seen = Vec::new();
        for c in &d.cells {
            if !seen.contains(&c.be) {
                seen.push(c.be.clone());
            }
        }
        seen
    };
    out.push_str(&format!("{:<14}", "LC \\ BE"));
    for b in &bes {
        out.push_str(&format!(" {b:>14}"));
    }
    out.push('\n');
    for s in &services {
        out.push_str(&format!("{s:<14}"));
        for b in &bes {
            let cell = d
                .cells
                .iter()
                .find(|c| &c.service == s && &c.be == b)
                .expect("cell");
            let v = pick(cell);
            if fmt_pct {
                out.push_str(&format!(" {:>13.1}%", v * 100.0));
            } else {
                out.push_str(&format!(" {v:>14.2}"));
            }
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = Report::new("fig15", "improvements under production load (Figure 15)");
    let d = collect(0xF15);
    report.line(heatmap(&d, |c| c.emu_gain, "a: EMU improvement", true));
    report.line(heatmap(
        &d,
        |c| c.cpu_gain,
        "b: CPU utilization improvement",
        true,
    ));
    report.line(heatmap(
        &d,
        |c| c.membw_gain,
        "c: MemBW utilization improvement",
        true,
    ));
    report.line(heatmap(
        &d,
        |c| c.tail_ratio,
        "d: worst 99p / SLA under Rhythm",
        false,
    ));
    let worst = d.cells.iter().map(|c| c.tail_ratio).fold(0.0, f64::max);
    let violations: u64 = d.cells.iter().map(|c| c.sla_violations).sum();
    let max_emu = d.cells.iter().map(|c| c.emu_gain).fold(f64::MIN, f64::max);
    let min_emu = d.cells.iter().map(|c| c.emu_gain).fold(f64::MAX, f64::min);
    report.line(format!(
        "worst 99p/SLA = {worst:.2} (paper 0.99); total Rhythm violation ticks = {violations}"
    ));
    report.line(format!(
        "EMU improvement range: {:.1}%..{:.1}% (paper: 12.4%..31.7%)",
        min_emu * 100.0,
        max_emu * 100.0
    ));
    report.finish(&d)
}
