//! Figure 16 — running Rhythm with the SNMS microservice application.
//!
//! SNMS (DeathStarBench social network) is divided into three Servpods
//! (frontend, UserService, MediaService). The figure stacks, per BE and
//! load: the LC service's own EMU/utilization, Heracles' addition, and
//! Rhythm's further addition. The paper derives contributions
//! 0.295/0.14/0.565 (media/frontend/user) and slacklimits
//! 0.189/0.054/0.381.

use crate::{parallel_map, Report};
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_workloads::{apps, BeSpec, LoadGen};
use serde::Serialize;

const LOADS_PCT: [u32; 5] = [20, 40, 60, 80, 100];
const DURATION_S: u64 = 180;

/// One stacked cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// BE name.
    pub be: String,
    /// Load percent.
    pub load_pct: u32,
    /// (LC solo, +Heracles, +Rhythm) EMU.
    pub emu: (f64, f64, f64),
    /// (LC solo, +Heracles, +Rhythm) CPU utilization.
    pub cpu: (f64, f64, f64),
    /// (LC solo, +Heracles, +Rhythm) MemBW utilization.
    pub membw: (f64, f64, f64),
}

/// The Figure 16 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig16 {
    /// Per-Servpod (name, contribution, slacklimit).
    pub pods: Vec<(String, f64, f64)>,
    /// All cells.
    pub cells: Vec<Cell>,
    /// Average (EMU, CPU, MemBW) improvement of Rhythm over Heracles.
    pub avg_gain: (f64, f64, f64),
}

/// Collects the dataset.
pub fn collect(seed: u64) -> Fig16 {
    let ctx = ServiceContext::prepare(apps::snms(), &BeSpec::colocation_set(), seed);
    let pods: Vec<(String, f64, f64)> = ctx
        .thresholds
        .contributions
        .iter()
        .zip(&ctx.thresholds.thresholds)
        .map(|(c, t)| (c.name.clone(), c.value, t.slacklimit))
        .collect();
    let bes = BeSpec::colocation_set();
    let mut jobs: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for be in &bes {
        for load_pct in LOADS_PCT {
            let ctx = ctx.clone();
            let be = be.clone();
            jobs.push(Box::new(move || {
                let cfg = ExperimentConfig {
                    bes: vec![be.clone()],
                    load: LoadGen::constant(load_pct as f64 / 100.0),
                    duration_s: DURATION_S,
                    seed: seed ^ ((load_pct as u64) << 4),
                    record_timeline: false,
                    controller_period_ms: 2_000,
                };
                let (_, solo) = ctx.run(ControllerChoice::Solo, &cfg);
                let (_, heracles) = ctx.run(ControllerChoice::Heracles, &cfg);
                let (_, rhythm) = ctx.run(ControllerChoice::Rhythm, &cfg);
                Cell {
                    be: be.name.clone(),
                    load_pct,
                    emu: (solo.emu, heracles.emu, rhythm.emu),
                    cpu: (solo.cpu_util, heracles.cpu_util, rhythm.cpu_util),
                    membw: (solo.membw_util, heracles.membw_util, rhythm.membw_util),
                }
            }));
        }
    }
    let cells = parallel_map(jobs);
    // Ratio of means rather than mean of ratios: cells where Heracles
    // collapses to ~0 would otherwise dominate the average.
    let gain = |pick: &dyn Fn(&Cell) -> (f64, f64, f64)| {
        let (mut hs, mut rs) = (0.0, 0.0);
        for c in cells.iter() {
            let (_, h, r) = pick(c);
            hs += h;
            rs += r;
        }
        rhythm_core::metrics::improvement(rs, hs)
    };
    let avg_gain = (
        gain(&|c: &Cell| c.emu),
        gain(&|c: &Cell| c.cpu),
        gain(&|c: &Cell| c.membw),
    );
    Fig16 {
        pods,
        cells,
        avg_gain,
    }
}

fn stack_table(d: &Fig16, pick: impl Fn(&Cell) -> (f64, f64, f64), title: &str) -> String {
    let mut out = format!("{title} (LC / +Heracles / +Rhythm)\n");
    let bes: Vec<String> = {
        let mut seen = Vec::new();
        for c in &d.cells {
            if !seen.contains(&c.be) {
                seen.push(c.be.clone());
            }
        }
        seen
    };
    out.push_str(&format!("{:<18}", "BE \\ load"));
    for l in LOADS_PCT {
        out.push_str(&format!("        {l:>3}%"));
    }
    out.push('\n');
    for be in &bes {
        out.push_str(&format!("{be:<18}"));
        for l in LOADS_PCT {
            let c = d
                .cells
                .iter()
                .find(|c| &c.be == be && c.load_pct == l)
                .expect("cell");
            let (a, b, r) = pick(c);
            out.push_str(&format!(" {a:>3.2}/{b:>3.2}/{r:>3.2}"));
        }
        out.push('\n');
    }
    out.push('\n');
    out
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = Report::new("fig16", "running with the SNMS microservice (Figure 16)");
    let d = collect(0xF16);
    report.line("SNMS Servpods (contribution, slacklimit) — paper: media 0.295/0.189, frontend 0.14/0.054, user 0.565/0.381:");
    for (name, c, sl) in &d.pods {
        report.line(format!("  {name:<14} C={c:.3} slacklimit={sl:.3}"));
    }
    report.blank();
    report.line(stack_table(&d, |c| c.emu, "EMU"));
    report.line(stack_table(&d, |c| c.cpu, "CPU utilization"));
    report.line(stack_table(&d, |c| c.membw, "MemBW utilization"));
    report.line(format!(
        "average Rhythm-over-Heracles improvements: EMU {:.1}% CPU {:.1}% MemBW {:.1}% (paper: 14.3%/30.2%/45.8%)",
        d.avg_gain.0 * 100.0,
        d.avg_gain.1 * 100.0,
        d.avg_gain.2 * 100.0
    ));
    report.finish(&d)
}
