//! Figure 17 — the timeline of Rhythm's running process.
//!
//! E-commerce co-located with Wordcount under the production load; the
//! recorded timeline shows load vs loadlimit, slack vs slacklimit, and
//! the BE population (cores, LLC, instances, throughput) on the Tomcat
//! and MySQL Servpods, driven through growth / SuspendBE / CutBE /
//! recovery cycles.

use crate::Report;
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_core::timeline::{phase_summary, render};
use rhythm_sim::SimDuration;
use rhythm_workloads::{apps, BeKind, BeSpec, LoadGen};
use serde::Serialize;

const DURATION_S: u64 = 20 * 60;

/// The Figure 17 dataset.
#[derive(Clone, Debug, Serialize)]
pub struct Fig17 {
    /// Thresholds of the observed pods (name, loadlimit, slacklimit).
    pub thresholds: Vec<(String, f64, f64)>,
    /// Recorded timeline points.
    pub timeline: Vec<rhythm_core::runtime::TimelinePoint>,
    /// Phase labels over time for MySQL.
    pub mysql_phases: Vec<(f64, &'static str)>,
}

/// Collects the dataset.
pub fn collect(seed: u64) -> Fig17 {
    let ctx = ServiceContext::prepare(apps::ecommerce(), &BeSpec::colocation_set(), seed);
    // A trace with one pronounced peak per ~7 minutes so the 20-minute
    // window shows growth, suspension and recovery (the paper's Figure 17
    // shows exactly these transitions).
    let load = LoadGen::clarknet_like(3, SimDuration::from_secs(DURATION_S), 300, 1.0, seed);
    let cfg = ExperimentConfig {
        bes: vec![BeSpec::of(BeKind::Wordcount)],
        load,
        duration_s: DURATION_S,
        seed,
        record_timeline: true,
        controller_period_ms: 500,
    };
    let (out, _) = ctx.run(ControllerChoice::Rhythm, &cfg);
    let idx = |name: &str| ctx.service.index_of(name).expect("pod");
    let mysql = idx("mysql");
    Fig17 {
        thresholds: ["tomcat", "mysql"]
            .iter()
            .map(|n| {
                let t = ctx.thresholds.thresholds[idx(n)];
                (n.to_string(), t.loadlimit, t.slacklimit)
            })
            .collect(),
        mysql_phases: phase_summary(&out.timeline, mysql),
        timeline: out.timeline,
    }
}

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = Report::new("fig17", "timeline of Rhythm's running process (Figure 17)");
    let d = collect(0xF17);
    for (n, ll, sl) in &d.thresholds {
        report.line(format!(
            "{n}: loadlimit={:.0}% slacklimit={sl:.3}",
            ll * 100.0
        ));
    }
    report.blank();
    let service = apps::ecommerce();
    let names: Vec<&str> = service.component_names();
    let tomcat = service.index_of("tomcat").expect("tomcat");
    let mysql = service.index_of("mysql").expect("mysql");
    // Print every 5th point to keep the table readable; the JSON holds
    // everything.
    let sampled: Vec<_> = d.timeline.iter().step_by(5).cloned().collect();
    report.line(render(&sampled, &names, &[tomcat, mysql]));
    report.blank();
    report.line("MySQL machine phases:");
    for (t, label) in &d.mysql_phases {
        report.line(format!("  t={t:>7.1}s {label}"));
    }
    let suspended = d
        .mysql_phases
        .iter()
        .any(|(_, l)| *l == "suspended" || *l == "kill/stop");
    let grew = d.mysql_phases.iter().any(|(_, l)| *l == "growth");
    report.line(format!(
        "observed growth={grew} restriction={suspended} (paper: both occur over the window)"
    ));
    report.finish(&d)
}
