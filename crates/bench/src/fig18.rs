//! Figure 18 and Table 2 — sensitivity of the thresholds.
//!
//! Fixing the other Servpods at their derived thresholds, MySQL's
//! loadlimit (or slacklimit) is scaled to 70-130% of the derived value;
//! for each level we measure normalized BE throughput, SLA violations
//! and BE kills. The paper finds BE throughput peaks around the 90%
//! level, but below 100% the SLA starts being violated — i.e. the
//! derived thresholds are close to optimal on the safe side.

use crate::{parallel_map, Report};
use rhythm_controller::Thresholds;
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_sim::SimDuration;
use rhythm_workloads::{apps, BeKind, BeSpec, LoadGen};
use serde::Serialize;

const DURATION_S: u64 = 600;
const LEVELS: [u32; 7] = [70, 80, 90, 100, 110, 120, 130];

/// One sweep row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Which threshold is varied ("slacklimit" or "loadlimit").
    pub varied: &'static str,
    /// Level in percent of the derived value.
    pub level_pct: u32,
    /// The actual threshold value used.
    pub value: f64,
    /// BE throughput normalized to the 100% level.
    pub be_throughput_norm: f64,
    /// Raw BE throughput.
    pub be_throughput: f64,
    /// SLA violation ticks.
    pub sla_violations: u64,
    /// BE jobs killed.
    pub be_kills: u64,
}

/// The dataset behind Figure 18 and Table 2.
#[derive(Clone, Debug, Serialize)]
pub struct Fig18 {
    /// Derived MySQL thresholds (loadlimit, slacklimit).
    pub derived: (f64, f64),
    /// All sweep rows.
    pub rows: Vec<Row>,
}

/// Collects the sweep.
pub fn collect(seed: u64) -> Fig18 {
    let ctx = ServiceContext::prepare(apps::ecommerce(), &BeSpec::colocation_set(), seed);
    let mysql = ctx.service.index_of("mysql").expect("mysql");
    let base = ctx.thresholds.thresholds[mysql];
    let mut jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = Vec::new();
    for varied in ["slacklimit", "loadlimit"] {
        for level in LEVELS {
            if varied == "loadlimit" && level == 130 {
                continue; // The paper's table marks this level as "-".
            }
            let ctx = ctx.clone();
            jobs.push(Box::new(move || {
                let mut thresholds = ctx.thresholds.thresholds.clone();
                let scale = level as f64 / 100.0;
                let value;
                thresholds[mysql] = match varied {
                    "slacklimit" => {
                        value = base.slacklimit * scale;
                        Thresholds::new(base.loadlimit, value)
                    }
                    _ => {
                        value = (base.loadlimit * scale).min(1.0);
                        Thresholds::new(value, base.slacklimit)
                    }
                };
                let load =
                    LoadGen::clarknet_like(3, SimDuration::from_secs(DURATION_S), 300, 0.95, seed);
                let cfg = ExperimentConfig {
                    bes: vec![BeSpec::of(BeKind::Wordcount)],
                    load,
                    duration_s: DURATION_S,
                    seed: seed ^ ((level as u64) << 3),
                    record_timeline: false,
                    controller_period_ms: 500,
                };
                let (_, m) = ctx.run(ControllerChoice::Custom(thresholds), &cfg);
                Row {
                    varied,
                    level_pct: level,
                    value,
                    be_throughput_norm: 0.0, // Filled after the sweep.
                    be_throughput: m.be_throughput,
                    sla_violations: m.sla_violations,
                    be_kills: m.be_kills,
                }
            }));
        }
    }
    let mut rows = parallel_map(jobs);
    for varied in ["slacklimit", "loadlimit"] {
        let base_tp = rows
            .iter()
            .find(|r| r.varied == varied && r.level_pct == 100)
            .map(|r| r.be_throughput)
            .unwrap_or(1.0)
            .max(1e-9);
        for r in rows.iter_mut().filter(|r| r.varied == varied) {
            r.be_throughput_norm = r.be_throughput / base_tp;
        }
    }
    Fig18 {
        derived: (base.loadlimit, base.slacklimit),
        rows,
    }
}

/// Writes the Figure 18 report from a collected sweep.
pub fn render_fig18(d: &Fig18) -> std::io::Result<()> {
    let mut report = Report::new("fig18", "threshold level vs BE throughput (Figure 18)");
    report.line(format!(
        "derived MySQL thresholds: loadlimit={:.0}% slacklimit={:.3}",
        d.derived.0 * 100.0,
        d.derived.1
    ));
    report.line(format!(
        "{:<12} {:>6} {:>9} {:>12} {:>14}",
        "varied", "level", "value", "BE tp", "BE tp (norm)"
    ));
    for r in &d.rows {
        report.line(format!(
            "{:<12} {:>5}% {:>9.3} {:>12.3} {:>14.2}",
            r.varied, r.level_pct, r.value, r.be_throughput, r.be_throughput_norm
        ));
    }
    report.finish(d)
}

/// Runs the experiment and writes the Figure 18 report.
pub fn run() -> std::io::Result<()> {
    render_fig18(&collect(0xF18))
}

/// Runs the sweep and writes the Table 2 report (SLA violations and BE
/// kills per level). Reuses fresh data for a standalone invocation.
pub fn run_tab2() -> std::io::Result<()> {
    let d = collect(0xF18);
    render_tab2(&d)
}

/// Writes the Table 2 report from a collected sweep.
pub fn render_tab2(d: &Fig18) -> std::io::Result<()> {
    let mut report = Report::new(
        "tab2",
        "SLA violations and BE kills when varying loadlimit/slacklimit (Table 2)",
    );
    report.line(format!(
        "{:<7} | {:>10} {:>13} {:>9} | {:>10} {:>13} {:>9}",
        "level", "slacklimit", "SLAviolation", "BEkills", "loadlimit", "SLAviolation", "BEkills"
    ));
    for level in LEVELS {
        let pick = |varied: &str| {
            d.rows
                .iter()
                .find(|r| r.varied == varied && r.level_pct == level)
        };
        let s = pick("slacklimit");
        let l = pick("loadlimit");
        let fmt = |r: Option<&Row>| match r {
            Some(r) => format!(
                "{:>10.3} {:>13} {:>9}",
                r.value, r.sla_violations, r.be_kills
            ),
            None => format!("{:>10} {:>13} {:>9}", "-", "-", "-"),
        };
        report.line(format!("{:<6}% | {} | {}", level, fmt(s), fmt(l)));
    }
    report.line("paper: shrinking slacklimit below 100% causes violations/kills; loadlimit is safe up to 100% and violates above it");
    report.finish(d)
}
