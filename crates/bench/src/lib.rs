//! Reproduction harness for the paper's evaluation (§5).
//!
//! Each module regenerates one table or figure; the `repro` binary
//! dispatches on experiment id and writes both a human-readable text
//! table and machine-readable JSON under `results/`.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig02`] | Figure 2 — per-component interference characterization |
//! | [`fig06`] | Figure 6 — E-commerce sojourn times and CoV over load |
//! | [`fig07`] | Figure 7 — Servpod sensitivity vs contribution |
//! | [`fig08`] | Figure 8 — CoV curves and loadlimit detection |
//! | [`colocation`] | the Figures 9-14 constant-load grid |
//! | [`fig15`] | Figure 15 — production-load improvements |
//! | [`fig16`] | Figure 16 — SNMS microservice comparison |
//! | [`fig17`] | Figure 17 — controller timeline |
//! | [`fig18`] | Figure 18 + Table 2 — threshold sweeps |
//! | [`tab1`] | Table 1 — workload inventory |
//! | [`ablate`] | ablations of Rhythm's design choices |
//! | [`cluster`] | cluster-level Rhythm vs Heracles at N ∈ {4, 16, 64} |
//! | [`chaos`] | chaos campaign: trace-shaped load + fault injection |
//! | [`trace`] | telemetry exports of one traced cluster run |
//! | [`lint`] | rhythm-lint determinism & invariant pass over the workspace |
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod ablate;
pub mod chaos;
pub mod cluster;
pub mod clusterbench;
pub mod colocation;
pub mod enginebench;
pub mod fig02;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod lint;
pub mod report;
pub mod snapshotcli;
pub mod tab1;
pub mod trace;

pub use report::Report;

/// Runs `jobs` closures in parallel across available cores and returns
/// their results in input order.
pub fn parallel_map<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let queue: crossbeam::queue::SegQueue<(usize, F)> = crossbeam::queue::SegQueue::new();
    for (i, j) in jobs.into_iter().enumerate() {
        queue.push((i, j));
    }
    let slots: Vec<slot::Slot<T>> = (0..n).map(|_| slot::Slot::new()).collect();
    crossbeam::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                while let Some((i, job)) = queue.pop() {
                    slots[i].put(job());
                }
            });
        }
    })
    .expect("worker thread panicked");
    for (i, slot) in slots.into_iter().enumerate() {
        results[i] = slot.take();
    }
    results.into_iter().map(|r| r.expect("job ran")).collect()
}

/// A tiny once-per-index result slot.
mod slot {
    use std::sync::Mutex;

    pub struct Slot<T>(Mutex<Option<T>>);

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot(Mutex::new(None))
        }

        pub fn put(&self, v: T) {
            *self.0.lock().expect("slot poisoned") = Some(v);
        }

        pub fn take(self) -> Option<T> {
            self.0.into_inner().expect("slot poisoned")
        }
    }

    impl<T> Default for Slot<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> =
            (0..32usize).map(|i| Box::new(move || i * i) as _).collect();
        let out = parallel_map(jobs);
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let jobs: Vec<Box<dyn FnOnce() -> u8 + Send>> = Vec::new();
        assert!(parallel_map(jobs).is_empty());
    }
}
