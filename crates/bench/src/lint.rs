//! `repro lint` — the rhythm-lint determinism & invariant pass over the
//! whole workspace, reported like every other experiment
//! (`results/lint.{txt,json}`).
//!
//! The JSON document is deterministic: files are walked in sorted
//! order, findings are sorted by (file, line, rule), and the renderer
//! has no timestamps — two consecutive runs are byte-identical. The
//! process exits non-zero when any unsuppressed finding remains, so the
//! CI job fails on the report it just uploaded.
//!
//! With `--github` the pass additionally prints one GitHub Actions
//! `::error file=...,line=...::` workflow command per unsuppressed
//! finding, so a CI run annotates the offending lines inline in the PR
//! diff. The `results/lint.{txt,json}` artifacts are byte-identical
//! with and without the flag.

use crate::report::Report;
use rhythm_lint::{lint_workspace, render_github, RULES};
use serde_json::Value;
use std::path::{Path, PathBuf};

/// The workspace root: fixed at compile time relative to this crate, so
/// `repro lint` works from any working directory. Overridable with
/// `RHYTHM_LINT_ROOT` (the self-tests use a scratch tree).
fn workspace_root() -> PathBuf {
    if let Ok(root) = std::env::var("RHYTHM_LINT_ROOT") {
        return PathBuf::from(root);
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| manifest.join("../.."))
}

/// Runs the pass and writes `results/lint.{txt,json}`. With `github`
/// set, also prints one `::error` workflow command per unsuppressed
/// finding (annotations, not artifacts — the written reports do not
/// change). Exits with status 2 when unsuppressed findings remain.
pub fn run(github: bool) -> std::io::Result<()> {
    let root = workspace_root();
    let ws = lint_workspace(&root)?;
    if github {
        print!("{}", render_github(&ws));
    }

    let mut r = Report::new("lint", "rhythm-lint determinism & invariant pass");
    r.line(format!("workspace: {}", root.display()));
    r.line(format!(
        "{} file(s) scanned, {} finding(s), {} suppressed",
        ws.files_scanned,
        ws.findings.len(),
        ws.suppressed.len()
    ));
    r.blank();
    r.line("rules:");
    for rule in RULES {
        r.line(format!("  {}  {}", rule.id, rule.summary));
    }
    r.blank();
    if ws.is_clean() {
        r.line("no unsuppressed findings");
    } else {
        r.line("findings:");
        for f in &ws.findings {
            r.line(format!("  {}", f.render()));
        }
    }
    if !ws.suppressed.is_empty() {
        r.blank();
        r.line("suppressed (pragma with reason):");
        for s in &ws.suppressed {
            r.line(format!(
                "  {}:{}: {} -- {}",
                s.finding.file, s.finding.line, s.finding.rule, s.reason
            ));
        }
    }
    let findings: Vec<Value> = ws
        .findings
        .iter()
        .map(|f| {
            Value::Object(vec![
                ("file".into(), Value::String(f.file.clone())),
                ("line".into(), Value::UInt(f.line as u64)),
                ("rule".into(), Value::String(f.rule.to_string())),
                ("message".into(), Value::String(f.message.clone())),
            ])
        })
        .collect();
    let suppressed: Vec<Value> = ws
        .suppressed
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("file".into(), Value::String(s.finding.file.clone())),
                ("line".into(), Value::UInt(s.finding.line as u64)),
                ("rule".into(), Value::String(s.finding.rule.to_string())),
                ("reason".into(), Value::String(s.reason.clone())),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("tool".into(), Value::String("rhythm-lint".into())),
        ("schema".into(), Value::String("rhythm-lint/v1".into())),
        (
            "files_scanned".into(),
            Value::UInt(ws.files_scanned as u64),
        ),
        ("unsuppressed".into(), Value::UInt(ws.findings.len() as u64)),
        ("suppressed".into(), Value::UInt(ws.suppressed.len() as u64)),
        ("findings".into(), Value::Array(findings)),
        ("suppressed_findings".into(), Value::Array(suppressed)),
    ]);
    let clean = ws.is_clean();
    r.finish(&doc)?;
    if !clean {
        eprintln!("[repro] lint: unsuppressed findings — failing");
        std::process::exit(2);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_points_at_the_repo() {
        let root = workspace_root();
        assert!(root.join("Cargo.toml").exists(), "{}", root.display());
        assert!(root.join("crates/lint").exists());
    }
}
