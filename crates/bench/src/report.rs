//! Result reporting: aligned text plus JSON under `results/`.

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, [`Report::finish`] prints the machine-readable JSON
/// document to stdout instead of the text table (the files written
/// under the results directory are unchanged). Toggled by the `repro`
/// binary's `--json` flag.
static JSON_STDOUT: AtomicBool = AtomicBool::new(false);

/// Switches stdout reporting between text tables (default) and JSON.
pub fn set_json_stdout(on: bool) {
    JSON_STDOUT.store(on, Ordering::Relaxed);
}

/// Whether stdout reporting is in JSON mode.
pub fn json_stdout() -> bool {
    JSON_STDOUT.load(Ordering::Relaxed)
}

/// A report for one experiment id.
pub struct Report {
    id: String,
    title: String,
    text: String,
    out_dir: PathBuf,
}

impl Report {
    /// Starts a report for experiment `id` (e.g. "fig09").
    pub fn new(id: &str, title: &str) -> Report {
        let out_dir = std::env::var("RHYTHM_RESULTS_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("results"));
        Report {
            id: id.to_string(),
            title: title.to_string(),
            text: format!("== {id}: {title} ==\n"),
            out_dir,
        }
    }

    /// Appends a text line.
    pub fn line(&mut self, s: impl AsRef<str>) {
        self.text.push_str(s.as_ref());
        self.text.push('\n');
    }

    /// Appends a blank line.
    pub fn blank(&mut self) {
        self.text.push('\n');
    }

    /// The accumulated text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The experiment title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Writes `<id>.txt` and `<id>.json` under the results directory and
    /// prints the text (or, in [`set_json_stdout`] mode, the JSON
    /// document) to stdout.
    pub fn finish<T: Serialize>(self, data: &T) -> std::io::Result<()> {
        fs::create_dir_all(&self.out_dir)?;
        let txt = self.out_dir.join(format!("{}.txt", self.id));
        fs::write(&txt, &self.text)?;
        let json = self.out_dir.join(format!("{}.json", self.id));
        let mut f = fs::File::create(&json)?;
        serde_json::to_writer_pretty(&mut f, data)?;
        writeln!(f)?;
        if json_stdout() {
            let doc = serde_json::to_string_pretty(data)?;
            println!("{doc}");
        } else {
            print!("{}", self.text);
            println!("[written {} and {}]", txt.display(), json.display());
        }
        Ok(())
    }
}

/// Formats a fraction as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_and_writes() {
        std::env::set_var(
            "RHYTHM_RESULTS_DIR",
            std::env::temp_dir().join("rhythm-test-results"),
        );
        let mut r = Report::new("test-exp", "unit test");
        r.line("row 1");
        r.blank();
        r.line(format!("value {}", pct(0.123)));
        assert!(r.text().contains("row 1"));
        assert!(r.text().contains("12.3%"));
        r.finish(&serde_json::json!({"ok": true})).unwrap();
        let p = std::env::temp_dir().join("rhythm-test-results/test-exp.json");
        assert!(p.exists());
        std::env::remove_var("RHYTHM_RESULTS_DIR");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.317), "131.7%");
    }
}
