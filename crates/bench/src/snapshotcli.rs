//! Durable cluster state from the CLI: `repro snapshot`, `repro resume`
//! and `repro snapshot-diff`.
//!
//! ```text
//! repro snapshot [--machines N] [--epoch E] [--seed S] [--duration S]
//!                [--out FILE]       # capture the standard cluster cell
//! repro resume FILE [--threads T]   # continue a capture to the horizon
//! repro snapshot-diff A B           # structural post-mortem diff
//! ```
//!
//! `snapshot` runs the same cell as `repro cluster` ([`crate::cluster`]'s
//! e-commerce context and config) under Rhythm, captures at the requested
//! epoch barrier, and writes the versioned binary to `FILE` (default
//! `results/snapshot_n<N>.bin`). `resume` rebuilds the cell from the
//! snapshot's own metadata (machines, seed, horizon, epoch length are all
//! embedded), so the only inputs it needs are the file and, optionally, a
//! worker-thread count — the continuation is bit-identical regardless.

use rhythm_cluster::{ClusterRunner, ClusterSnapshot};
use rhythm_core::experiment::ControllerChoice;
use std::io;
use std::path::PathBuf;

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// `--flag value` pairs pulled out of an argument list.
type FlagPairs = Vec<(String, String)>;

/// Parses `--flag value` pairs and positionals out of `args`.
fn parse(args: &[String], flags: &[&str]) -> io::Result<(Vec<String>, FlagPairs)> {
    let mut positional = Vec::new();
    let mut pairs = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if !flags.contains(&name) {
                return Err(invalid(format!("unknown flag --{name}")));
            }
            let v = it
                .next()
                .ok_or_else(|| invalid(format!("--{name} needs a value")))?;
            pairs.push((name.to_string(), v.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, pairs))
}

fn flag<T: std::str::FromStr>(
    pairs: &[(String, String)],
    name: &str,
    default: T,
) -> io::Result<T> {
    match pairs.iter().rev().find(|(n, _)| n == name) {
        None => Ok(default),
        Some((_, v)) => v
            .parse()
            .map_err(|_| invalid(format!("--{name}: cannot parse {v:?}"))),
    }
}

fn results_dir() -> PathBuf {
    std::env::var("RHYTHM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// The standard cell for `snap`'s metadata: config fields that shape
/// state (machines, seed, horizon, epoch length) come from the snapshot
/// itself; everything else is [`crate::cluster::cell_config`].
fn cell_for(snap: &ClusterSnapshot, threads: usize) -> rhythm_cluster::ClusterConfig {
    let mut cfg = crate::cluster::cell_config(snap.machines as usize, snap.seed);
    cfg.duration_s = snap.duration_s;
    cfg.controller_period_ms = snap.controller_period_ms;
    cfg.threads = threads;
    cfg
}

fn outcome_line(m: &rhythm_cluster::ClusterMetrics) -> String {
    format!(
        "EMU {:.3}  LC {:.3}  BE {:.3}  jobs {}/{}  requeues {}  kills {}",
        m.emu,
        m.lc_throughput,
        m.be_throughput,
        m.jobs.completed,
        m.jobs.submitted,
        m.requeues,
        m.jobs.kills,
    )
}

/// `repro snapshot`: run the standard cell, capture, write the file.
pub fn snapshot(args: &[String]) -> io::Result<()> {
    let (pos, pairs) = parse(args, &["machines", "epoch", "seed", "duration", "out"])?;
    if !pos.is_empty() {
        return Err(invalid(format!("unexpected argument {:?}", pos[0])));
    }
    let machines: usize = flag(&pairs, "machines", 64)?;
    let epoch: u32 = flag(&pairs, "epoch", 5)?;
    let seed: u64 = flag(&pairs, "seed", 0xC1)?;
    let duration: u64 = flag(&pairs, "duration", 300)?;
    let out: String = flag(
        &pairs,
        "out",
        results_dir()
            .join(format!("snapshot_n{machines}.bin"))
            .to_string_lossy()
            .into_owned(),
    )?;
    if epoch == 0 {
        return Err(invalid("--epoch must be at least 1".into()));
    }

    let ctx = crate::cluster::context(seed);
    let mut cfg = crate::cluster::cell_config(machines, seed);
    cfg.duration_s = duration;
    eprintln!(
        "[snapshot] running N={machines} seed={seed:#x} for {duration}s, capturing at epoch {epoch}"
    );
    let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &cfg)
        .snapshot_at(epoch)
        .run();
    let snap = run
        .snapshots
        .first()
        .map(|(_, s)| s)
        .ok_or_else(|| invalid(format!("epoch {epoch} is past the end of the {duration}s run")))?;
    let bytes = snap.to_bytes();
    if let Some(parent) = PathBuf::from(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out, &bytes)?;
    println!(
        "snapshot: epoch {epoch} (t={}s)  {} bytes  fingerprint {:#018x}  -> {out}",
        snap.t_ns / 1_000_000_000,
        bytes.len(),
        snap.fingerprint(),
    );
    println!("run:      {}", outcome_line(&run.outcome.metrics));
    Ok(())
}

/// `repro resume`: continue a captured cell to the end of its horizon.
pub fn resume(args: &[String]) -> io::Result<()> {
    let (pos, pairs) = parse(args, &["threads"])?;
    let [path] = pos.as_slice() else {
        return Err(invalid("usage: repro resume FILE [--threads T]".into()));
    };
    let threads: usize = flag(&pairs, "threads", 8)?;
    let bytes = std::fs::read(path)?;
    let snap = ClusterSnapshot::from_bytes(&bytes).map_err(|e| invalid(e.to_string()))?;
    let ctx = crate::cluster::context(snap.seed);
    let cfg = cell_for(&snap, threads);
    eprintln!(
        "[resume] {path}: N={} epoch {} (t={}s), continuing to {}s on {threads} threads",
        snap.machines,
        snap.epoch,
        snap.t_ns / 1_000_000_000,
        snap.duration_s,
    );
    let run = ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &cfg)
        .map_err(|e| invalid(e.to_string()))?
        .run();
    println!("resumed:  {}", outcome_line(&run.outcome.metrics));
    Ok(())
}

/// `repro snapshot-diff`: render the structural diff of two captures.
pub fn diff(args: &[String]) -> io::Result<()> {
    let (pos, _) = parse(args, &[])?;
    let [a, b] = pos.as_slice() else {
        return Err(invalid("usage: repro snapshot-diff A B".into()));
    };
    let read = |p: &String| -> io::Result<ClusterSnapshot> {
        ClusterSnapshot::from_bytes(&std::fs::read(p)?)
            .map_err(|e| invalid(format!("{p}: {e}")))
    };
    let (sa, sb) = (read(a)?, read(b)?);
    print!("{}", sa.diff(&sb).render());
    Ok(())
}
