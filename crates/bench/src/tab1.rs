//! Table 1 — the workload inventory, rendered from the live specs.

use rhythm_workloads::catalog;

/// Runs the experiment and writes the report.
pub fn run() -> std::io::Result<()> {
    let mut report = crate::Report::new("tab1", "LC workloads and BE jobs (Table 1)");
    report.line(catalog::render_table1());
    let lc = catalog::lc_rows();
    let be = catalog::be_rows();
    report.line(format!("{} LC services, {} BE jobs", lc.len(), be.len()));
    report.finish(&serde_json::json!({
        "lc": lc.iter().map(|r| serde_json::json!({
            "workload": r.workload,
            "domain": r.domain,
            "servpods": r.servpods,
            "maxload_qps": r.maxload_qps,
            "sla_ms": r.sla_ms,
            "containers": r.containers,
        })).collect::<Vec<_>>(),
        "be": be.iter().map(|r| serde_json::json!({
            "workload": r.workload,
            "domain": r.domain,
            "intensive": r.intensive,
        })).collect::<Vec<_>>(),
    }))
}
