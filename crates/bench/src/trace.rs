//! `repro trace` — replays a cluster run with full telemetry and
//! exports everything the flight recorder, audit trail and tail
//! timelines captured.
//!
//! Runs the paper's 4-machine e-commerce testbed under the Rhythm
//! controller with [`TelemetryConfig::full`] and writes, under
//! `results/` (override with `RHYTHM_RESULTS_DIR`):
//!
//! * `trace.jsonl` — the line-per-record export: a meta line, then
//!   every replica's events, audit records and tail points, then the
//!   merged cluster tail series;
//! * `trace_chrome.json` — the same run as a `chrome://tracing` /
//!   Perfetto trace (instant events per action, counter tracks for
//!   tail latency and slack);
//! * `trace.txt` / `trace.json` — the usual report pair, including the
//!   human-readable "why did Rhythm do X at t=Y" decision log.
//!
//! Both exports are byte-identical for any worker-thread count.

use crate::Report;
use rhythm_cluster::{run_cluster, ClusterConfig, PlacementPolicy};
use rhythm_core::experiment::{ControllerChoice, ServiceContext};
use rhythm_telemetry::TelemetryConfig;
use rhythm_workloads::{apps, BeKind, BeSpec};
use serde_json::json;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Where exports land (same rule as [`Report`]).
fn results_dir() -> PathBuf {
    std::env::var("RHYTHM_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// The traced cell: the paper's 4-machine testbed at 85% load, short
/// enough to stay interactive, with every telemetry stream on.
pub fn trace_config(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(4).with_scaled_jobs(0.05);
    cfg.duration_s = 120;
    cfg.jobs_per_machine = 4;
    cfg.policy = PlacementPolicy::InterferenceScore;
    cfg.seed = seed;
    cfg.threads = 4;
    cfg.telemetry = TelemetryConfig::full();
    cfg
}

/// Runs the traced cluster and writes the exports + report.
pub fn run() -> std::io::Result<()> {
    let ctx = ServiceContext::prepare(
        apps::ecommerce(),
        &[
            BeSpec::of(BeKind::Wordcount),
            BeSpec::of(BeKind::StreamDram { big: true }),
        ],
        0x7ACE,
    );
    let cfg = trace_config(0x7ACE);
    let outcome = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg);
    let tel = outcome
        .telemetry
        .expect("telemetry was enabled in the config");

    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let jsonl_path = dir.join("trace.jsonl");
    std::fs::write(&jsonl_path, tel.export_jsonl())?;
    let chrome_path = dir.join("trace_chrome.json");
    std::fs::write(&chrome_path, tel.chrome_trace())?;

    let recorded: u64 = tel.replicas.iter().map(|r| r.recorded).sum();
    let dropped: u64 = tel.replicas.iter().map(|r| r.dropped).sum();
    let mut by_action: BTreeMap<&'static str, usize> = BTreeMap::new();
    for rep in &tel.replicas {
        for rec in &rep.audit {
            *by_action.entry(rec.action.name()).or_insert(0) += 1;
        }
    }

    let mut report = Report::new(
        "trace",
        "Telemetry of one cluster run (flight recorder + decision audit + tail timelines)",
    );
    report.line(format!(
        "cell: {} machines, {} replicas, {}s at load 0.85, seed {:#x}",
        cfg.machines,
        tel.replicas.len(),
        cfg.duration_s,
        cfg.seed
    ));
    report.line(format!(
        "flight recorder: {recorded} events recorded, {dropped} dropped (ring capacity {})",
        cfg.telemetry.ring_capacity
    ));
    report.line(format!(
        "audit trail: {} controller decisions; cluster tail: {} epoch points",
        tel.decisions(),
        tel.cluster_tail.len()
    ));
    report.blank();
    report.line("decisions by action:");
    for (name, count) in &by_action {
        report.line(format!("  {name:<18} {count:>5}"));
    }
    report.blank();
    report.line("decision log (why did Rhythm do X at t=Y):");
    let why = tel.why_report();
    let total_lines = why.lines().count();
    for line in why.lines().take(40) {
        report.line(format!("  {line}"));
    }
    if total_lines > 40 {
        report.line(format!(
            "  ... {} more decisions in {}",
            total_lines - 40,
            jsonl_path.display()
        ));
    }
    report.blank();
    if let (Some(first), Some(last)) = (tel.cluster_tail.first(), tel.cluster_tail.last()) {
        report.line(format!(
            "cluster tail: p99 {:.1} -> {:.1} ms, slack {:+.3} -> {:+.3} over {} epochs",
            first.p99_ms,
            last.p99_ms,
            first.slack,
            last.slack,
            tel.cluster_tail.len()
        ));
    }
    report.line(format!(
        "[exports: {} and {}]",
        jsonl_path.display(),
        chrome_path.display()
    ));

    let actions_json: Vec<serde_json::Value> = by_action
        .iter()
        .map(|(name, count)| json!({ "action": *name, "count": *count }))
        .collect();
    let tail_json: Vec<serde_json::Value> = tel
        .cluster_tail
        .iter()
        .map(|p| {
            json!({
                "t_s": p.t_s,
                "count": p.count,
                "p95_ms": p.p95_ms,
                "p99_ms": p.p99_ms,
                "slack": p.slack,
            })
        })
        .collect();
    report.finish(&json!({
        "machines": cfg.machines,
        "duration_s": cfg.duration_s,
        "seed": cfg.seed,
        "events_recorded": recorded,
        "events_dropped": dropped,
        "decisions": tel.decisions(),
        "decisions_by_action": actions_json,
        "cluster_tail": tail_json,
        "exports": json!({
            "jsonl": jsonl_path.display().to_string(),
            "chrome_trace": chrome_path.display().to_string(),
        }),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_config_enables_all_streams() {
        let c = trace_config(1);
        assert!(c.telemetry.enabled);
        assert!(c.telemetry.audit);
        assert!(c.telemetry.tail);
        assert!(c.machines >= 4);
    }
}
