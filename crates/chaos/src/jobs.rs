//! Heavy-tailed BE job-size plans.
//!
//! The paper's cluster backlog uses the three real BE workloads at
//! their solo runtimes — every job the same size. Production batch
//! tiers are nothing like that: the Alibaba 2017/2018 cluster traces
//! (analyzed in arXiv 1808.02919) show batch durations that are
//! heavily right-skewed — the bulk of jobs finish within a couple of
//! minutes while a long tail runs for hours, well fit by a lognormal
//! body with a Pareto-like tail. [`heavy_tailed_plan`] reproduces that
//! shape deterministically: it cycles the requested BE mix and draws
//! each job's `job_seconds` from a [`JobSizeDist`], all from the
//! deterministic sim RNG, so a plan is a pure function of
//! `(count, mix, dist, seed)`.

use rhythm_cluster::JobSpec;
use rhythm_sim::{Dist, SimRng};
use rhythm_workloads::BeSpec;
use serde::{Deserialize, Serialize};

/// A job-size distribution for [`heavy_tailed_plan`], in solo-runtime
/// virtual seconds.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum JobSizeDist {
    /// Lognormal: `exp(ln(median) + sigma · z)` with `z` standard
    /// normal. `sigma` ≈ 1.5–2 matches the published Alibaba batch
    /// spread.
    LogNormal {
        /// Median job size in seconds.
        median_s: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Bounded Pareto: scale `scale_s`, shape `alpha`, hard cap
    /// `cap_s`. `alpha` just above 1 gives the classic heavy tail with
    /// a finite mean.
    BoundedPareto {
        /// Minimum (scale) job size in seconds.
        scale_s: f64,
        /// Tail index (smaller = heavier tail).
        alpha: f64,
        /// Hard upper bound in seconds.
        cap_s: f64,
    },
}

impl JobSizeDist {
    /// The lognormal fit used by the chaos scenarios: median 72 s,
    /// σ = 1.7 — most jobs under two minutes, p99 in the tens of
    /// minutes, the Alibaba batch-duration shape.
    pub fn alibaba_lognormal() -> JobSizeDist {
        JobSizeDist::LogNormal {
            median_s: 72.0,
            sigma: 1.7,
        }
    }

    /// A bounded-Pareto alternative with the same flavor: 20 s minimum,
    /// α = 1.1, capped at one hour.
    pub fn alibaba_pareto() -> JobSizeDist {
        JobSizeDist::BoundedPareto {
            scale_s: 20.0,
            alpha: 1.1,
            cap_s: 3_600.0,
        }
    }

    /// Draws one job size in seconds (always finite and positive).
    pub fn sample_s(&self, rng: &mut SimRng) -> f64 {
        match *self {
            JobSizeDist::LogNormal { median_s, sigma } => {
                let z = rng.standard_normal();
                (median_s.max(1e-9).ln() + sigma.max(0.0) * z).exp()
            }
            JobSizeDist::BoundedPareto {
                scale_s,
                alpha,
                cap_s,
            } => Dist::BoundedPareto {
                scale: scale_s,
                alpha,
                cap: cap_s,
            }
            .sample(rng),
        }
    }
}

/// Builds a `count`-job solitary backlog cycling through `mix`, with
/// each job's solo runtime drawn from `dist` and clamped to
/// `[min_s, cap_s]` (`cap_s` also bounds the lognormal so one outlier
/// cannot dwarf the horizon). Deterministic in `seed`: the RNG stream
/// is `SimRng::from_seed(seed).split("job-sizes")`.
///
/// Each entry gets a **unique workload name** (`<kind>#<index>`): the
/// engines and the placement catalog key workloads by name, and two
/// jobs of the same kind with different sampled sizes must not alias —
/// progress accrual would otherwise use whichever spec registered the
/// name first. Pressure characteristics stay those of the base kind;
/// only the size varies.
pub fn heavy_tailed_plan(
    count: usize,
    mix: &[BeSpec],
    dist: &JobSizeDist,
    min_s: f64,
    cap_s: f64,
    seed: u64,
) -> Vec<JobSpec> {
    assert!(!mix.is_empty(), "need at least one BE kind in the mix");
    assert!(
        min_s > 0.0 && min_s <= cap_s,
        "size bounds [{min_s}, {cap_s}] are inverted"
    );
    let mut rng = SimRng::from_seed(seed).split("job-sizes");
    (0..count)
        .map(|i| {
            let mut spec = mix[i % mix.len()].clone();
            spec.name = format!("{}#{i:03}", spec.name);
            spec.job_seconds = dist.sample_s(&mut rng).clamp(min_s, cap_s);
            JobSpec::solitary(spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::BeKind;

    fn mix() -> Vec<BeSpec> {
        vec![BeSpec::of(BeKind::Wordcount), BeSpec::of(BeKind::Lstm)]
    }

    #[test]
    fn plan_is_deterministic_and_bounded() {
        let a = heavy_tailed_plan(64, &mix(), &JobSizeDist::alibaba_lognormal(), 2.0, 600.0, 9);
        let b = heavy_tailed_plan(64, &mix(), &JobSizeDist::alibaba_lognormal(), 2.0, 600.0, 9);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec.name, y.spec.name);
            assert_eq!(x.spec.job_seconds, y.spec.job_seconds);
            assert!((2.0..=600.0).contains(&x.spec.job_seconds));
        }
        let c = heavy_tailed_plan(64, &mix(), &JobSizeDist::alibaba_lognormal(), 2.0, 600.0, 10);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.spec.job_seconds != y.spec.job_seconds),
            "different seeds draw different sizes"
        );
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        // Median near the nominal value, mean well above it (skew), and
        // a spread of at least an order of magnitude.
        let plan = heavy_tailed_plan(
            2048,
            &mix(),
            &JobSizeDist::alibaba_lognormal(),
            0.1,
            1e9,
            3,
        );
        let mut sizes: Vec<f64> = plan.iter().map(|j| j.spec.job_seconds).collect();
        sizes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sizes[sizes.len() / 2];
        let mean = sizes.iter().sum::<f64>() / sizes.len() as f64;
        assert!((30.0..150.0).contains(&median), "median={median}");
        assert!(mean > 1.5 * median, "mean={mean} median={median}");
        assert!(sizes[sizes.len() - 1] / sizes[0] > 100.0, "dynamic range");
    }

    #[test]
    fn pareto_respects_scale_and_cap() {
        let plan = heavy_tailed_plan(512, &mix(), &JobSizeDist::alibaba_pareto(), 1.0, 3_600.0, 5);
        for j in &plan {
            assert!((20.0..=3_600.0).contains(&j.spec.job_seconds));
        }
    }

    #[test]
    fn plan_cycles_the_mix_with_unique_names() {
        let plan = heavy_tailed_plan(5, &mix(), &JobSizeDist::alibaba_pareto(), 1.0, 100.0, 1);
        assert!(plan[0].spec.name.starts_with("wordcount#"));
        assert!(plan[2].spec.name.starts_with("wordcount#"));
        assert!(plan[1].spec.name.starts_with("LSTM#"));
        let names: std::collections::BTreeSet<&str> =
            plan.iter().map(|j| j.spec.name.as_str()).collect();
        assert_eq!(names.len(), plan.len(), "no two jobs alias a name");
        assert!(plan.iter().all(|j| j.gang == 1 && j.priority == 0));
    }
}
