//! Chaos harness: trace-shaped workloads + deterministic fault
//! injection over the cluster runner.
//!
//! The paper evaluates Rhythm under constant loads and one scaled
//! production trace (§5.2–5.3) — steady-state conditions. Production
//! clusters are not steady: load follows diurnal curves with flash
//! crowds, BE job sizes are heavy-tailed, machines crash, racks fail
//! together, and nodes silently degrade. This crate packages those
//! conditions as a **deterministic scenario library** over the
//! epoch-barrier cluster runner, so "Rhythm under chaos" is a
//! reproducible experiment, not an anecdote:
//!
//! * [`jobs`] — heavy-tailed BE job-size plans (lognormal /
//!   bounded-Pareto, fit to the published Alibaba trace shape);
//! * [`recovery`] — the tail-latency recovery-time metric: how long
//!   after a disruption the cluster-wide p99 returns to (and stays
//!   near) its pre-fault baseline;
//! * [`scenario`] — named scenarios (baseline-diurnal, flash-crowd,
//!   rolling-crashes, correlated-rack-failure, straggler-node,
//!   crash-restart) built from [`LoadGen`] shapes and
//!   [`FaultPlan`] schedules, each reporting SLA violations, EMU,
//!   recovery time and a run fingerprint;
//! * [`restart`] — the process-crash drill: snapshot at an epoch
//!   barrier, drop the runner, resume from the decoded bytes, and
//!   check the resumed run is **bit-identical** to one that never
//!   stopped (outcome fingerprints and telemetry exports).
//!
//! Everything is driven by the deterministic sim RNG and the runner's
//! barrier discipline: the same seed produces byte-identical scenario
//! results for any shard count and any worker-thread count.
//!
//! [`LoadGen`]: rhythm_workloads::LoadGen
//! [`FaultPlan`]: rhythm_cluster::FaultPlan
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod jobs;
pub mod recovery;
pub mod restart;
pub mod scenario;

pub use jobs::{heavy_tailed_plan, JobSizeDist};
pub use recovery::{recovery_time, Recovery, RECOVERY_SUSTAIN_POINTS, RECOVERY_THRESHOLD};
pub use restart::{crash_restart, RestartCheck};
pub use scenario::{outcome_fingerprint, Scenario, ScenarioOutcome};
