//! The tail-latency recovery-time metric.
//!
//! "How long until the cluster was healthy again?" is the headline
//! number of every incident review, and none of the paper's metrics
//! capture it: EMU and SLA-violation counts integrate over the whole
//! run. This module derives recovery time from the cluster-wide tail
//! series the runner already records at every epoch barrier:
//!
//! 1. **Baseline** — the median p99 over the non-empty windows that
//!    closed *before* the disruption.
//! 2. **Excursion** — the first post-disruption window whose p99
//!    exceeds [`RECOVERY_THRESHOLD`] × baseline. Queue buildup lags
//!    the disruption itself, so windows *before* the excursion do not
//!    count as recovery: the cluster had not degraded yet. A run whose
//!    tail never leaves the threshold reports zero recovery time.
//! 3. **Recovered** — the first window at or after the excursion from
//!    which the p99 stays in-threshold for
//!    [`RECOVERY_SUSTAIN_POINTS`] consecutive non-empty windows (a
//!    single good window inside an oscillation does not count),
//!    reported as seconds since the disruption.
//! 4. **Censored** — if no such window exists before the horizon, the
//!    run never recovered inside the observation window; the estimate
//!    says so instead of reporting a number.
//!
//! The series is produced single-threaded at the barriers, so the
//! metric inherits the runner's determinism: same seed, same recovery
//! time, for any shard or worker-thread count.

use rhythm_telemetry::TailPoint;
use serde::{Deserialize, Serialize};

/// A window's p99 counts as recovered when it is at or below this
/// multiple of the pre-fault baseline (15% headroom for sampling
/// noise in small windows).
pub const RECOVERY_THRESHOLD: f64 = 1.15;

/// Consecutive in-threshold windows required before the first of them
/// counts as the recovery point.
pub const RECOVERY_SUSTAIN_POINTS: usize = 3;

/// A recovery-time estimate for one disruption.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// Median p99 (ms) of the non-empty pre-fault windows.
    pub baseline_p99_ms: f64,
    /// Seconds from the disruption to the first sustained in-threshold
    /// window at or after the excursion. `Some(0.0)` means the tail
    /// never left the threshold; `None` means the run ended still
    /// degraded (censored at the horizon).
    pub recovered_s: Option<f64>,
    /// Worst post-disruption p99 (ms), the depth of the excursion.
    pub peak_p99_ms: f64,
}

/// Estimates recovery from `tail` for a disruption at `fault_at_s`.
/// Returns `None` when there is no usable pre-fault baseline (no
/// non-empty window closed before the disruption) — without a
/// baseline, "recovered" is undefined.
pub fn recovery_time(tail: &[TailPoint], fault_at_s: f64) -> Option<Recovery> {
    let mut pre: Vec<f64> = tail
        .iter()
        .filter(|p| p.t_s < fault_at_s && p.count > 0)
        .map(|p| p.p99_ms)
        .collect();
    if pre.is_empty() {
        return None;
    }
    pre.sort_by(|a, b| a.partial_cmp(b).expect("p99 values are finite"));
    let baseline = pre[pre.len() / 2];
    let threshold = baseline * RECOVERY_THRESHOLD;
    let post: Vec<&TailPoint> = tail
        .iter()
        .filter(|p| p.t_s >= fault_at_s && p.count > 0)
        .collect();
    let peak = post.iter().map(|p| p.p99_ms).fold(0.0, f64::max);
    // The excursion: queue buildup lags the fault, so good windows
    // before the tail actually degrades are pre-incident, not recovery.
    let Some(excursion) = post.iter().position(|p| p.p99_ms > threshold) else {
        return Some(Recovery {
            baseline_p99_ms: baseline,
            recovered_s: Some(0.0),
            peak_p99_ms: peak,
        });
    };
    // First window at/after the excursion opening a run of
    // RECOVERY_SUSTAIN_POINTS consecutive in-threshold windows. The
    // final windows of the run may open a shorter run; that is not
    // "sustained", so it censors.
    let mut recovered_s = None;
    let mut run_start: Option<usize> = None;
    let mut run_len = 0usize;
    for (i, p) in post.iter().enumerate().skip(excursion) {
        if p.p99_ms <= threshold {
            if run_len == 0 {
                run_start = Some(i);
            }
            run_len += 1;
            if run_len >= RECOVERY_SUSTAIN_POINTS {
                let first = post[run_start.expect("run_start set with run_len > 0")];
                recovered_s = Some((first.t_s - fault_at_s).max(0.0));
                break;
            }
        } else {
            run_len = 0;
            run_start = None;
        }
    }
    Some(Recovery {
        baseline_p99_ms: baseline,
        recovered_s,
        peak_p99_ms: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(t_s: f64, p99_ms: f64) -> TailPoint {
        TailPoint {
            t_s,
            count: 100,
            p50_ms: p99_ms * 0.5,
            p95_ms: p99_ms * 0.9,
            p99_ms,
            slack: 0.0,
        }
    }

    #[test]
    fn clean_recovery_is_measured_from_the_fault() {
        // Baseline 10ms, excursion to 40ms at t=50, back under
        // threshold from t=70 onward.
        let mut tail: Vec<TailPoint> = (1..=4).map(|i| pt(i as f64 * 10.0, 10.0)).collect();
        tail.push(pt(50.0, 40.0));
        tail.push(pt(60.0, 20.0));
        for i in 7..=12 {
            tail.push(pt(i as f64 * 10.0, 10.5));
        }
        let r = recovery_time(&tail, 50.0).expect("baseline exists");
        assert_eq!(r.baseline_p99_ms, 10.0);
        assert_eq!(r.peak_p99_ms, 40.0);
        assert_eq!(r.recovered_s, Some(20.0), "t=70 minus fault at t=50");
    }

    #[test]
    fn single_good_window_does_not_count_as_recovered() {
        // One in-threshold window inside an oscillation, then degraded
        // to the horizon: censored.
        let mut tail: Vec<TailPoint> = (1..=3).map(|i| pt(i as f64 * 10.0, 10.0)).collect();
        tail.push(pt(40.0, 50.0));
        tail.push(pt(50.0, 10.0)); // lone good window
        tail.push(pt(60.0, 50.0));
        tail.push(pt(70.0, 48.0));
        let r = recovery_time(&tail, 40.0).expect("baseline exists");
        assert_eq!(r.recovered_s, None, "censored at the horizon");
        assert_eq!(r.peak_p99_ms, 50.0);
    }

    #[test]
    fn unshaken_tail_reports_zero_recovery() {
        let tail: Vec<TailPoint> = (1..=10).map(|i| pt(i as f64 * 10.0, 10.0)).collect();
        let r = recovery_time(&tail, 45.0).expect("baseline exists");
        assert_eq!(r.recovered_s, Some(0.0), "tail never left the threshold");
    }

    #[test]
    fn good_windows_before_the_excursion_are_not_recovery() {
        // Fault at t=40, but the tail only degrades at t=70 (queue
        // buildup lag); three good windows in between must not count.
        let mut tail: Vec<TailPoint> = (1..=3).map(|i| pt(i as f64 * 10.0, 10.0)).collect();
        for i in 4..=6 {
            tail.push(pt(i as f64 * 10.0, 10.5));
        }
        tail.push(pt(70.0, 60.0));
        tail.push(pt(80.0, 55.0));
        for i in 9..=12 {
            tail.push(pt(i as f64 * 10.0, 10.0));
        }
        let r = recovery_time(&tail, 40.0).expect("baseline exists");
        assert_eq!(r.recovered_s, Some(50.0), "t=90 minus fault at t=40");
        assert_eq!(r.peak_p99_ms, 60.0);
    }

    #[test]
    fn no_baseline_means_no_estimate() {
        let tail = vec![pt(100.0, 10.0)];
        assert!(recovery_time(&tail, 50.0).is_none(), "no pre-fault window");
        assert!(recovery_time(&[], 50.0).is_none());
        // Empty windows do not establish a baseline either.
        let empty = TailPoint {
            t_s: 10.0,
            count: 0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            slack: 1.0,
        };
        assert!(recovery_time(&[empty], 50.0).is_none());
    }
}
