//! The crash-restart drill: prove the scheduler process can die
//! mid-run and come back without anyone being able to tell.
//!
//! [`crash_restart`] runs the same experiment twice. The reference run
//! goes straight through. The drill run captures a snapshot at a
//! chosen epoch barrier, **drops the runner** (the process crash —
//! nothing of the live scheduler survives except the encoded bytes),
//! re-parses the snapshot from those bytes, and resumes — on a
//! different worker-thread count, to make the check stronger. The two
//! runs must then be bit-identical: outcome fingerprints, merged
//! metrics, and (when telemetry is on) the full JSONL and Chrome-trace
//! exports, byte for byte.

use crate::scenario::outcome_fingerprint;
use rhythm_cluster::{ClusterConfig, ClusterOutcome, ClusterRunner, ClusterSnapshot};
use rhythm_core::experiment::{ControllerChoice, ServiceContext};
use serde::{Deserialize, Serialize};

/// What the crash-restart drill observed.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RestartCheck {
    /// Epoch barrier the snapshot was captured at.
    pub epoch: u32,
    /// Virtual time of the capture, in seconds.
    pub t_s: f64,
    /// Size of the encoded snapshot the "crashed" process left behind.
    pub snapshot_bytes: usize,
    /// Fingerprint of the uninterrupted reference run.
    pub reference_fingerprint: u64,
    /// Fingerprint of the crash-then-resume run.
    pub resumed_fingerprint: u64,
    /// Outcome fingerprints match.
    pub fingerprints_match: bool,
    /// Telemetry JSONL exports are byte-identical (`None` when the run
    /// collected no telemetry).
    pub jsonl_match: Option<bool>,
    /// Chrome-trace exports are byte-identical (`None` without
    /// telemetry).
    pub chrome_match: Option<bool>,
}

impl RestartCheck {
    /// True when every comparison the drill could make passed.
    pub fn bit_identical(&self) -> bool {
        self.fingerprints_match
            && self.jsonl_match.unwrap_or(true)
            && self.chrome_match.unwrap_or(true)
    }
}

/// Runs the drill: an uninterrupted reference run, then a
/// snapshot-at-`epoch` → drop → decode → resume run on
/// `resume_threads` workers, compared field by field. Returns the
/// resumed outcome (so callers can report its metrics) plus the check.
///
/// # Panics
///
/// Panics if `epoch` is 0 or past the horizon (the drill would have
/// nothing to compare), or if the snapshot fails to decode or resume —
/// in this crate's usage those are test failures, not recoverable
/// conditions.
pub fn crash_restart(
    ctx: &ServiceContext,
    choice: &ControllerChoice,
    cfg: &ClusterConfig,
    epoch: u32,
    resume_threads: usize,
) -> (ClusterOutcome, RestartCheck) {
    let total_epochs = cfg.duration_s * 1_000 / cfg.controller_period_ms.max(1);
    assert!(
        epoch > 0 && u64::from(epoch) < total_epochs,
        "epoch {epoch} is not a mid-run barrier of {total_epochs} epochs"
    );
    let reference = ClusterRunner::new(ctx, choice, cfg).run().outcome;

    // The drill: run to the barrier, keep only the encoded bytes.
    let bytes = {
        let mut run = ClusterRunner::new(ctx, choice, cfg).snapshot_at(epoch).run();
        let (got, snap) = run.snapshots.pop().expect("snapshot captured at the barrier");
        assert_eq!(got, epoch, "captured the requested barrier");
        snap.to_bytes()
        // `run` (outcome, engines, telemetry) dropped here — the crash.
    };
    let snap = ClusterSnapshot::from_bytes(&bytes).expect("snapshot bytes parse");
    let t_s = snap.t_ns as f64 / 1e9;
    let mut resume_cfg = cfg.clone();
    resume_cfg.threads = resume_threads.max(1);
    let resumed = ClusterRunner::resume(&snap, ctx, choice, &resume_cfg)
        .expect("snapshot is compatible with its own config")
        .run()
        .outcome;

    let reference_fingerprint = outcome_fingerprint(&reference);
    let resumed_fingerprint = outcome_fingerprint(&resumed);
    let exports = |a: &ClusterOutcome, b: &ClusterOutcome, f: &dyn Fn(&rhythm_cluster::ClusterTelemetry) -> String| match (
        a.telemetry.as_ref(),
        b.telemetry.as_ref(),
    ) {
        (Some(x), Some(y)) => Some(f(x) == f(y)),
        _ => None,
    };
    let check = RestartCheck {
        epoch,
        t_s,
        snapshot_bytes: bytes.len(),
        reference_fingerprint,
        resumed_fingerprint,
        fingerprints_match: reference_fingerprint == resumed_fingerprint,
        jsonl_match: exports(&reference, &resumed, &|t| t.export_jsonl()),
        chrome_match: exports(&reference, &resumed, &|t| t.chrome_trace()),
    };
    (resumed, check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_cluster::{FaultPlan, PlacementPolicy};
    use rhythm_telemetry::TelemetryConfig;
    use rhythm_workloads::{apps, BeKind, BeSpec, LoadGen};

    fn ctx() -> ServiceContext {
        ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 17)
    }

    fn cfg() -> ClusterConfig {
        let mut c = ClusterConfig::new(2).with_scaled_jobs(0.02);
        c.duration_s = 60;
        c.jobs_per_machine = 3;
        c.load = LoadGen::constant(0.6);
        c.policy = PlacementPolicy::RoundRobin;
        c.threads = 1;
        c.telemetry = TelemetryConfig::full();
        c
    }

    #[test]
    fn drill_is_bit_identical_with_faults_active() {
        let ctx = ctx();
        let mut cfg = cfg();
        cfg.faults = FaultPlan::new().crash(10.0, 1).recover(30.0, 1);
        let (resumed, check) = crash_restart(&ctx, &ControllerChoice::Rhythm, &cfg, 10, 3);
        assert!(check.fingerprints_match, "{check:?}");
        assert_eq!(check.jsonl_match, Some(true));
        assert_eq!(check.chrome_match, Some(true));
        assert!(check.bit_identical());
        assert_eq!(check.epoch, 10);
        assert!((check.t_s - 20.0).abs() < 1e-9, "epoch 10 × 2s barrier");
        assert!(check.snapshot_bytes > 0);
        assert!(resumed.metrics.completed_requests > 0);
    }

    #[test]
    #[should_panic(expected = "mid-run barrier")]
    fn drill_refuses_out_of_range_epochs() {
        let ctx = ctx();
        let cfg = cfg();
        crash_restart(&ctx, &ControllerChoice::Rhythm, &cfg, 30, 1);
    }
}
