//! The named chaos scenarios.
//!
//! Each [`Scenario`] is a complete, deterministic cluster experiment:
//! a trace-shaped load curve, a heavy-tailed BE backlog, and a
//! [`FaultPlan`] keyed to virtual time — plus, for the crash-restart
//! drill, a snapshot/resume schedule. [`Scenario::library`] builds the
//! standard six:
//!
//! | name | disruption |
//! |------|------------|
//! | `baseline-diurnal` | none — the reference curve |
//! | `flash-crowd` | +60% traffic spike at mid-cycle, 20 s ramp-down |
//! | `rolling-crashes` | three machines crash and recover in sequence |
//! | `correlated-rack-failure` | half the cluster fails at once |
//! | `straggler-node` | one node silently degrades to 60% frequency |
//! | `crash-restart` | the *scheduler process* dies at a barrier and resumes |
//!
//! Every scenario reports the merged cluster metrics, the
//! tail-latency [`Recovery`] estimate anchored at its first
//! disruption, and a run fingerprint — same seed, same fingerprint,
//! for any shard count and any worker-thread count.
//!
//! [`FaultPlan`]: rhythm_cluster::FaultPlan

use crate::jobs::{heavy_tailed_plan, JobSizeDist};
use crate::recovery::{recovery_time, Recovery};
use crate::restart::{crash_restart, RestartCheck};
use rhythm_cluster::{run_cluster, ClusterConfig, ClusterMetrics, ClusterOutcome, FaultPlan};
use rhythm_core::experiment::{ControllerChoice, ServiceContext};
use rhythm_sim::SimDuration;
use rhythm_telemetry::TelemetryConfig;
use rhythm_workloads::LoadGen;
use serde::{Deserialize, Serialize};

/// One named chaos experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Stable scenario id (e.g. `rolling-crashes`).
    pub name: &'static str,
    /// One-line description for reports.
    pub summary: &'static str,
    /// The full cluster configuration, faults included.
    pub cfg: ClusterConfig,
    /// Virtual time of the first disruption — the anchor of the
    /// recovery metric. `None` for undisrupted baselines.
    pub fault_at_s: Option<f64>,
    /// When set, the scenario is the crash-restart drill: snapshot at
    /// this epoch barrier, drop the runner, resume, compare.
    pub restart_epoch: Option<u32>,
}

/// What one scenario run produced.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario id.
    pub name: String,
    /// Merged cluster metrics (EMU, SLA violations, job outcomes, …).
    pub metrics: ClusterMetrics,
    /// Tail-latency recovery estimate (`None` when the scenario has no
    /// disruption, no telemetry, or no pre-fault baseline).
    pub recovery: Option<Recovery>,
    /// Crash-restart drill result (`None` for ordinary scenarios).
    pub restart: Option<RestartCheck>,
    /// FNV-1a fingerprint of the outcome: per-machine fingerprints
    /// plus the merged metrics. Bit-identical across shard and thread
    /// counts; any scheduling drift changes it.
    pub fingerprint: u64,
}

/// FNV-1a over everything a run measured: the per-machine engine
/// fingerprints plus the merged cluster metrics and job outcomes.
/// Sharding counters are deliberately excluded — they describe the
/// partitioning, not the experiment, and legitimately vary with K.
pub fn outcome_fingerprint(out: &ClusterOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut feed = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for &fp in &out.fingerprints {
        feed(fp);
    }
    let m = &out.metrics;
    feed(m.emu.to_bits());
    feed(m.lc_throughput.to_bits());
    feed(m.be_throughput.to_bits());
    feed(m.p99_ms.to_bits());
    feed(m.sla_violations);
    feed(m.be_kills);
    feed(m.completed_requests);
    feed(m.requeues);
    feed(m.jobs.completed);
    feed(m.jobs.kills);
    feed(m.jobs.completion_mean_s.to_bits());
    feed(m.jobs.wasted_jobs.to_bits());
    h
}

impl Scenario {
    /// The standard six-scenario library over `machines` machines
    /// (must be ≥ 8 so the fault schedules have distinct targets, and a
    /// multiple of the service's Servpod count). All scenarios share
    /// the same diurnal curve, heavy-tailed backlog and 240 s horizon,
    /// so their metrics are directly comparable; only the disruption
    /// differs.
    pub fn library(machines: usize, seed: u64) -> Vec<Scenario> {
        assert!(machines >= 8, "the fault schedules address machines 0–7");
        let horizon_s = 240u64;
        let base = |seed_off: u64| -> ClusterConfig {
            let mut cfg = ClusterConfig::new(machines);
            cfg.duration_s = horizon_s;
            cfg.seed = seed.wrapping_add(seed_off);
            cfg.threads = 4;
            cfg.telemetry = TelemetryConfig::full();
            cfg.load = LoadGen::diurnal(
                2,
                SimDuration::from_secs(horizon_s),
                120,
                0.25,
                0.85,
                0.03,
                seed,
            );
            // The Alibaba σ=1.7 spread, with the median compressed to
            // fit the 240 s horizon the same way the paper compresses
            // its 5-day trace into 6 hours — short jobs finish inside
            // the window, the tail still dominates machine-seconds.
            cfg.job_plan = heavy_tailed_plan(
                4 * machines,
                &cfg.be_mix.clone(),
                &JobSizeDist::LogNormal {
                    median_s: 18.0,
                    sigma: 1.7,
                },
                2.0,
                180.0,
                seed,
            );
            cfg
        };
        let mut out = Vec::new();
        out.push(Scenario {
            name: "baseline-diurnal",
            summary: "diurnal curve + heavy-tailed backlog, no faults (the reference)",
            cfg: base(0),
            fault_at_s: None,
            restart_epoch: None,
        });
        let mut flash = base(1);
        // Spike lands at mid-cycle (t = 120 s of the 240 s horizon).
        flash.load = flash.load.with_flash_crowd(0.5, 1.6, 10);
        out.push(Scenario {
            name: "flash-crowd",
            summary: "+60% traffic at mid-cycle, ramping down over 20 s",
            cfg: flash,
            fault_at_s: Some(0.5 * horizon_s as f64),
            restart_epoch: None,
        });
        let mut rolling = base(2);
        rolling.faults = FaultPlan::new()
            .crash(60.0, 1)
            .recover(96.0, 1)
            .crash(100.0, 3)
            .recover(136.0, 3)
            .crash(140.0, 5)
            .recover(176.0, 5);
        out.push(Scenario {
            name: "rolling-crashes",
            summary: "machines 1, 3, 5 crash in sequence, each down for 36 s",
            cfg: rolling,
            fault_at_s: Some(60.0),
            restart_epoch: None,
        });
        let mut rack = base(3);
        let rack_members: Vec<u64> = (machines as u64 / 2..machines as u64).collect();
        rack.faults = {
            let mut plan = FaultPlan::new().correlated(80.0, rack_members.clone());
            for &m in &rack_members {
                plan = plan.recover(140.0, m);
            }
            plan
        };
        out.push(Scenario {
            name: "correlated-rack-failure",
            summary: "the upper half of the cluster fails at once, back after 60 s",
            cfg: rack,
            fault_at_s: Some(80.0),
            restart_epoch: None,
        });
        let mut straggler = base(4);
        straggler.faults = FaultPlan::new().slow_node(60.0, 2, 0.6).recover(180.0, 2);
        out.push(Scenario {
            name: "straggler-node",
            summary: "machine 2 silently degrades to 60% frequency for 120 s",
            cfg: straggler,
            fault_at_s: Some(60.0),
            restart_epoch: None,
        });
        let mut restart = base(5);
        restart.faults = FaultPlan::new().crash(64.0, 1).recover(120.0, 1);
        out.push(Scenario {
            name: "crash-restart",
            summary: "scheduler process dies at epoch 50 (t=100 s, one machine down) and resumes",
            cfg: restart,
            fault_at_s: Some(64.0),
            restart_epoch: Some(50),
        });
        out
    }

    /// Runs the scenario under `choice`. The crash-restart drill runs
    /// the experiment twice (reference + snapshot/resume) and reports
    /// the resumed outcome; everything else runs once.
    pub fn run(&self, ctx: &ServiceContext, choice: &ControllerChoice) -> ScenarioOutcome {
        let (outcome, restart) = match self.restart_epoch {
            Some(epoch) => {
                // Resume on a different worker count — determinism must
                // not depend on it.
                let (outcome, check) =
                    crash_restart(ctx, choice, &self.cfg, epoch, self.cfg.threads + 1);
                (outcome, Some(check))
            }
            None => (run_cluster(ctx, choice, &self.cfg), None),
        };
        let recovery = self.fault_at_s.and_then(|at| {
            outcome
                .telemetry
                .as_ref()
                .and_then(|t| recovery_time(&t.cluster_tail, at))
        });
        ScenarioOutcome {
            name: self.name.to_string(),
            fingerprint: outcome_fingerprint(&outcome),
            metrics: outcome.metrics,
            recovery,
            restart,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_cluster::PlacementPolicy;
    use rhythm_workloads::{apps, BeKind, BeSpec};

    #[test]
    fn library_is_well_formed() {
        let lib = Scenario::library(8, 7);
        assert!(lib.len() >= 6, "the standard library has six scenarios");
        let names: std::collections::BTreeSet<&str> = lib.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), lib.len(), "names are unique");
        for want in [
            "baseline-diurnal",
            "flash-crowd",
            "rolling-crashes",
            "correlated-rack-failure",
            "straggler-node",
            "crash-restart",
        ] {
            assert!(names.contains(want), "missing {want}");
        }
        for s in &lib {
            s.cfg.faults.validate(s.cfg.machines).expect("valid plan");
            assert!(s.cfg.telemetry.tail, "recovery metric needs the tail series");
            assert!(!s.cfg.job_plan.is_empty(), "heavy-tailed backlog present");
            if !s.cfg.faults.is_empty() || s.name == "flash-crowd" {
                assert!(s.fault_at_s.is_some(), "{} has a recovery anchor", s.name);
            }
        }
        assert!(lib.iter().any(|s| s.restart_epoch.is_some()));
        // Scenarios are pure functions of (machines, seed).
        let again = Scenario::library(8, 7);
        for (a, b) in lib.iter().zip(&again) {
            assert_eq!(a.cfg.faults.fingerprint(), b.cfg.faults.fingerprint());
            assert_eq!(a.cfg.load.peak_fraction(), b.cfg.load.peak_fraction());
        }
    }

    #[test]
    fn scenario_runs_are_fingerprint_stable() {
        // A miniature scenario (2 machines, 60 s) so the unit test stays
        // fast; the full library runs under `repro chaos`.
        let ctx = ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 23);
        let mini = |threads: usize| {
            let mut cfg = ClusterConfig::new(2).with_scaled_jobs(0.02);
            cfg.duration_s = 60;
            cfg.jobs_per_machine = 3;
            cfg.policy = PlacementPolicy::RoundRobin;
            cfg.threads = threads;
            cfg.telemetry = TelemetryConfig::full();
            cfg.load = LoadGen::diurnal(1, SimDuration::from_secs(60), 30, 0.3, 0.7, 0.02, 5);
            cfg.faults = FaultPlan::new().crash(20.0, 1).recover(40.0, 1);
            Scenario {
                name: "mini",
                summary: "unit-test scenario",
                cfg,
                fault_at_s: Some(20.0),
                restart_epoch: None,
            }
        };
        let a = mini(1).run(&ctx, &ControllerChoice::Rhythm);
        let b = mini(3).run(&ctx, &ControllerChoice::Rhythm);
        assert_eq!(a.fingerprint, b.fingerprint, "thread-count invariant");
        assert!(a.recovery.is_some(), "fault + tail series yield an estimate");
        assert!(a.metrics.completed_requests > 0);
        assert!(a.restart.is_none());
    }
}
