//! Deterministic fault injection: the [`FaultPlan`] schedule and the
//! runner's dynamic [`ChaosState`].
//!
//! A fault plan is a list of events keyed to **virtual time**; the
//! runner applies every due event single-threaded at the top of each
//! epoch barrier, in plan order, before dispatch. Because application
//! happens only at barriers and draws nothing from wall clock or
//! ambient entropy, a run with a fault plan is exactly as reproducible
//! as one without: same seed + same plan → bit-identical outcome for
//! any shard count and any worker-thread count.
//!
//! Fault semantics (see DESIGN.md §13 for the model rationale):
//!
//! * [`FaultKind::MachineCrash`] — the machine leaves the cluster: its
//!   outstanding BE offer is withdrawn, every bound BE instance is
//!   killed through the ordinary checkpoint-rollback-requeue path, and
//!   the machine joins the *down set*, which blocks dispatch
//!   eligibility until recovery. The LC service is modeled as failing
//!   over invisibly (the paper's Servpods are replicated); the modeled
//!   cost of a crash is lost batch work plus redistribution pressure
//!   on the survivors.
//! * [`FaultKind::MachineRecover`] — the machine rejoins: it leaves the
//!   down set and its LC DVFS domain is restored to full frequency
//!   (clearing any straggler state), making it eligible for offers at
//!   the same barrier.
//! * [`FaultKind::SlowNode`] — a straggler: the machine's LC frequency
//!   is stepped down to `factor` of its maximum via the existing DVFS
//!   domain, so frequency-sensitive LC components inflate through the
//!   interference model and the slowdown shows up in the cluster tail.
//!   The DVFS floor clamps the effective factor (a 1200–2000 MHz
//!   domain cannot go below 0.6).
//! * [`FaultKind::CorrelatedFailure`] — a rack/PDU event: every listed
//!   machine crashes at the same barrier, in listed order.
//!
//! The snapshot container gains an **optional** `chaos` section (plan
//! fingerprint + [`ChaosState`]) written only when a plan is
//! configured, so non-chaos snapshots stay byte-identical to the
//! pre-chaos format and the golden container fixture holds.
// lint:snapshot-state

use rhythm_snapshot::{fnv1a, Reader, Snapshot, SnapshotError, Writer};
use std::collections::BTreeSet;

/// One kind of injected fault. Machine indices are **global** (replica
/// × pods + pod), matching the scheduler's addressing.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The machine crashes: bound BE work is killed and requeued, and
    /// the machine is ineligible for placement until it recovers.
    MachineCrash {
        /// Global machine index.
        machine: u64,
    },
    /// A crashed machine rejoins the cluster at full frequency.
    MachineRecover {
        /// Global machine index.
        machine: u64,
    },
    /// The machine's LC frequency drops to `factor` of its maximum
    /// (straggler). Recovery is a [`FaultKind::MachineRecover`].
    SlowNode {
        /// Global machine index.
        machine: u64,
        /// Fraction of maximum frequency in `(0, 1]`; the DVFS grid
        /// and floor quantize/clamp the realized value.
        factor: f64,
    },
    /// Every machine in `group` crashes at the same barrier (rack /
    /// power-domain failure), in listed order.
    CorrelatedFailure {
        /// Global machine indices, crashed in order.
        group: Vec<u64>,
    },
}

impl FaultKind {
    /// The machines this event touches, in application order.
    pub fn machines(&self) -> Vec<u64> {
        match self {
            FaultKind::MachineCrash { machine }
            | FaultKind::MachineRecover { machine }
            | FaultKind::SlowNode { machine, .. } => vec![*machine],
            FaultKind::CorrelatedFailure { group } => group.clone(),
        }
    }

    /// Snake-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::MachineCrash { .. } => "machine_crash",
            FaultKind::MachineRecover { .. } => "machine_recover",
            FaultKind::SlowNode { .. } => "slow_node",
            FaultKind::CorrelatedFailure { .. } => "correlated_failure",
        }
    }
}

/// One scheduled fault: `kind` fires at the first epoch barrier whose
/// virtual time is ≥ `at_s`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Virtual time the event becomes due, in seconds.
    pub at_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
///
/// Build one with the fluent helpers, then hand it to
/// [`ClusterConfig::faults`](crate::ClusterConfig); the runner
/// normalizes the order (stable sort by due time, so same-time events
/// keep insertion order) and applies due events at each barrier.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled events.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (the default: no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules a machine crash.
    pub fn crash(mut self, at_s: f64, machine: u64) -> FaultPlan {
        self.events.push(FaultEvent {
            at_s,
            kind: FaultKind::MachineCrash { machine },
        });
        self
    }

    /// Schedules a machine recovery.
    pub fn recover(mut self, at_s: f64, machine: u64) -> FaultPlan {
        self.events.push(FaultEvent {
            at_s,
            kind: FaultKind::MachineRecover { machine },
        });
        self
    }

    /// Schedules a straggler: LC frequency drops to `factor` of max.
    pub fn slow_node(mut self, at_s: f64, machine: u64, factor: f64) -> FaultPlan {
        self.events.push(FaultEvent {
            at_s,
            kind: FaultKind::SlowNode { machine, factor },
        });
        self
    }

    /// Schedules a correlated (rack) failure of `group`.
    pub fn correlated(mut self, at_s: f64, group: Vec<u64>) -> FaultPlan {
        self.events.push(FaultEvent {
            at_s,
            kind: FaultKind::CorrelatedFailure { group },
        });
        self
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Stable-sorts the events by due time (same-time events keep
    /// insertion order), making application order a pure function of
    /// the plan. The runner calls this once at startup.
    pub fn normalize(&mut self) {
        self.events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
    }

    /// Checks every referenced machine index against the cluster size
    /// and every slow-node factor against `(0, 1]`.
    pub fn validate(&self, machines: usize) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.at_s.is_finite() || ev.at_s < 0.0 {
                return Err(format!("fault event {i}: at_s {} is not a valid time", ev.at_s));
            }
            if let FaultKind::SlowNode { factor, .. } = ev.kind {
                if !(factor > 0.0 && factor <= 1.0) {
                    return Err(format!("fault event {i}: slow-node factor {factor} outside (0, 1]"));
                }
            }
            if let FaultKind::CorrelatedFailure { group } = &ev.kind {
                if group.is_empty() {
                    return Err(format!("fault event {i}: empty correlated-failure group"));
                }
            }
            for m in ev.kind.machines() {
                if m as usize >= machines {
                    return Err(format!(
                        "fault event {i}: machine {m} outside cluster of {machines}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// FNV-1a over the canonical encoding — embedded in the snapshot's
    /// `chaos` section so resume can refuse a mismatched plan.
    pub fn fingerprint(&self) -> u64 {
        let mut w = Writer::new();
        self.encode(&mut w);
        fnv1a(&w.into_bytes())
    }
}

impl Snapshot for FaultKind {
    fn encode(&self, w: &mut Writer) {
        match self {
            FaultKind::MachineCrash { machine } => {
                w.u8(0);
                w.u64(*machine);
            }
            FaultKind::MachineRecover { machine } => {
                w.u8(1);
                w.u64(*machine);
            }
            FaultKind::SlowNode { machine, factor } => {
                w.u8(2);
                w.u64(*machine);
                w.f64(*factor);
            }
            FaultKind::CorrelatedFailure { group } => {
                w.u8(3);
                group.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => FaultKind::MachineCrash { machine: r.u64()? },
            1 => FaultKind::MachineRecover { machine: r.u64()? },
            2 => FaultKind::SlowNode {
                machine: r.u64()?,
                factor: r.f64()?,
            },
            3 => FaultKind::CorrelatedFailure {
                group: Snapshot::decode(r)?,
            },
            t => return Err(SnapshotError::Corrupt(format!("unknown fault kind {t}"))),
        })
    }
}

impl Snapshot for FaultEvent {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.at_s);
        self.kind.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultEvent {
            at_s: r.f64()?,
            kind: Snapshot::decode(r)?,
        })
    }
}

impl Snapshot for FaultPlan {
    fn encode(&self, w: &mut Writer) {
        self.events.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(FaultPlan {
            events: Snapshot::decode(r)?,
        })
    }
}

/// The runner's dynamic fault state, captured in the snapshot's
/// optional `chaos` section: which plan events have fired and which
/// machines are currently down. A version byte leads the section so
/// the chaos wire format can evolve without touching the v1 container
/// layout (whose schema hash the golden fixture pins).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosState {
    /// Plan events applied so far (prefix of the normalized plan).
    pub applied: u64,
    /// Global indices of machines currently down.
    pub down: BTreeSet<u64>,
}

/// Version byte of the `chaos` snapshot section.
pub const CHAOS_SECTION_VERSION: u8 = 1;

impl Snapshot for ChaosState {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.applied);
        self.down.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ChaosState {
            applied: r.u64()?,
            down: Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new()
            .crash(60.0, 3)
            .recover(120.0, 3)
            .slow_node(30.0, 1, 0.7)
            .correlated(90.0, vec![4, 5, 6])
    }

    #[test]
    fn normalize_is_stable_by_time() {
        let mut plan = sample_plan();
        plan.normalize();
        let times: Vec<f64> = plan.events.iter().map(|e| e.at_s).collect();
        assert_eq!(times, vec![30.0, 60.0, 90.0, 120.0]);
        // Same-time events keep insertion order.
        let mut tie = FaultPlan::new().crash(10.0, 0).recover(10.0, 1);
        tie.normalize();
        assert!(matches!(tie.events[0].kind, FaultKind::MachineCrash { machine: 0 }));
        assert!(matches!(tie.events[1].kind, FaultKind::MachineRecover { machine: 1 }));
    }

    #[test]
    fn validate_rejects_bad_plans() {
        assert!(sample_plan().validate(8).is_ok());
        assert!(sample_plan().validate(5).is_err(), "machine 6 out of range");
        assert!(FaultPlan::new().slow_node(1.0, 0, 0.0).validate(4).is_err());
        assert!(FaultPlan::new().slow_node(1.0, 0, 1.5).validate(4).is_err());
        assert!(FaultPlan::new().correlated(1.0, vec![]).validate(4).is_err());
        assert!(FaultPlan::new().crash(f64::NAN, 0).validate(4).is_err());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = sample_plan();
        let mut b = sample_plan();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.normalize();
        assert_ne!(a.fingerprint(), b.fingerprint(), "order is part of the identity");
        assert_ne!(FaultPlan::new().fingerprint(), a.fingerprint());
    }

    #[test]
    fn snapshot_round_trips_plan_and_state() {
        let plan = sample_plan();
        let mut w = Writer::new();
        plan.encode(&mut w);
        let bytes = w.into_bytes();
        let back: FaultPlan = Snapshot::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, plan);

        let state = ChaosState {
            applied: 2,
            down: [3u64, 5].into_iter().collect(),
        };
        let mut w = Writer::new();
        state.encode(&mut w);
        let bytes = w.into_bytes();
        let back: ChaosState = Snapshot::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, state);
    }
}
