//! The cluster's unit of batch work: one BE job with checkpointed
//! progress.
//!
//! The paper's cluster scheduler (§3.5) treats StopBE as "kill the BE
//! instances and put the jobs back in the queue". What that costs depends
//! on how much of the killed work survives: real batch frameworks
//! checkpoint periodically, so a kill rolls the job back to its last
//! checkpoint rather than to zero. Modelling the checkpoint fraction
//! makes both *completion time* (queue wait + reruns included) and
//! *wasted work* (progress thrown away by kills) measurable outcomes of a
//! placement policy.

// lint:snapshot-state — ClusterJob / JobState are durable snapshot
// state (rule S01: no hash containers or raw-pointer fields).

use rhythm_workloads::BeSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Cluster-wide job identifier (dense, assigned at submission).
pub type JobId = u64;

/// Where a job currently is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the shared queue.
    Queued,
    /// Offered to a machine (global index), not yet admitted by its
    /// controller.
    Offered(usize),
    /// Running as a BE instance on a machine (global index).
    Running(usize),
    /// Finished.
    Done,
}

/// One BE job flowing through the cluster.
#[derive(Clone, Debug)]
pub struct ClusterJob {
    /// Job id.
    pub id: JobId,
    /// The workload this job runs (one instance of `spec` = one job).
    /// Shared: gang members and every offer the dispatcher posts hold
    /// the same allocation, so the per-placement hot path never deep-
    /// clones a spec.
    pub spec: Arc<BeSpec>,
    /// Durable progress in `[0, 1]`: the last checkpoint that survives a
    /// kill.
    pub checkpoint: f64,
    /// Progress thrown away by kills (fractions of one job).
    pub wasted: f64,
    /// Times this job was killed (StopBE) and requeued.
    pub kills: u32,
    /// Submission time in virtual seconds.
    pub submitted_s: f64,
    /// Completion time in virtual seconds (None while unfinished).
    pub completed_s: Option<f64>,
    /// Lifecycle state.
    pub state: JobState,
    /// Priority class (0 = lowest; preemption prefers low classes).
    pub priority: u8,
    /// Completion deadline in virtual seconds (`None` = best effort).
    pub deadline_s: Option<f64>,
    /// Gang id when this job is one instance of a gang-scheduled
    /// multi-instance job (`None` for solitary jobs). All members of a
    /// gang start together and are rolled back together.
    pub gang: Option<u32>,
}

impl ClusterJob {
    /// A fresh solitary best-effort job submitted at `submitted_s`.
    pub fn new(id: JobId, spec: Arc<BeSpec>, submitted_s: f64) -> ClusterJob {
        ClusterJob {
            id,
            spec,
            checkpoint: 0.0,
            wasted: 0.0,
            kills: 0,
            submitted_s,
            completed_s: None,
            state: JobState::Queued,
            priority: 0,
            deadline_s: None,
            gang: None,
        }
    }

    /// True if the job's deadline is missed as of `t_s`: either it
    /// finished late, or it is unfinished with the deadline in the past.
    pub fn deadline_missed_at(&self, t_s: f64) -> bool {
        let Some(deadline) = self.deadline_s else {
            return false;
        };
        match self.completed_s {
            Some(done) => done > deadline,
            None => t_s > deadline,
        }
    }

    /// Total progress if the current incarnation has run `incarnation`
    /// beyond the last checkpoint.
    pub fn total_progress(&self, incarnation: f64) -> f64 {
        self.checkpoint + incarnation
    }

    /// Records a StopBE kill: the incarnation had `incarnation` progress
    /// beyond the checkpoint; everything past the last checkpoint
    /// boundary (multiples of `ckpt_fraction`) is wasted, the rest is
    /// banked. With `ckpt_fraction <= 0` nothing survives a kill beyond
    /// previously banked checkpoints.
    pub fn on_kill(&mut self, incarnation: f64, ckpt_fraction: f64) {
        let total = self.total_progress(incarnation).min(1.0);
        let banked = if ckpt_fraction > 0.0 {
            (total / ckpt_fraction).floor() * ckpt_fraction
        } else {
            self.checkpoint
        };
        let banked = banked.max(self.checkpoint).min(total);
        self.wasted += total - banked;
        self.checkpoint = banked;
        self.kills += 1;
        self.state = JobState::Queued;
    }

    /// Marks the job finished at `t_s`.
    pub fn on_complete(&mut self, t_s: f64) {
        self.completed_s = Some(t_s);
        self.checkpoint = 1.0;
        self.state = JobState::Done;
    }

    /// Queue-to-completion time in virtual seconds (None while
    /// unfinished).
    pub fn completion_time_s(&self) -> Option<f64> {
        self.completed_s.map(|t| t - self.submitted_s)
    }
}

impl rhythm_snapshot::Snapshot for JobState {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        match self {
            JobState::Queued => w.u8(0),
            JobState::Offered(g) => {
                w.u8(1);
                w.u64(*g as u64);
            }
            JobState::Running(g) => {
                w.u8(2);
                w.u64(*g as u64);
            }
            JobState::Done => w.u8(3),
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => JobState::Queued,
            1 => JobState::Offered(r.u64()? as usize),
            2 => JobState::Running(r.u64()? as usize),
            3 => JobState::Done,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown job state tag {t}"
                )))
            }
        })
    }
}

impl rhythm_snapshot::Snapshot for ClusterJob {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.id);
        self.spec.as_ref().encode(w);
        w.f64(self.checkpoint);
        w.f64(self.wasted);
        w.u32(self.kills);
        w.f64(self.submitted_s);
        self.completed_s.encode(w);
        self.state.encode(w);
        w.u8(self.priority);
        self.deadline_s.encode(w);
        self.gang.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let id = r.u64()?;
        let spec = Arc::new(rhythm_snapshot::Snapshot::decode(r)?);
        let checkpoint = r.f64()?;
        let wasted = r.f64()?;
        if !(0.0..=1.0).contains(&checkpoint) || wasted.is_nan() || wasted < 0.0 {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                "job {id} progress out of range: checkpoint {checkpoint}, wasted {wasted}"
            )));
        }
        Ok(ClusterJob {
            id,
            spec,
            checkpoint,
            wasted,
            kills: r.u32()?,
            submitted_s: r.f64()?,
            completed_s: rhythm_snapshot::Snapshot::decode(r)?,
            state: rhythm_snapshot::Snapshot::decode(r)?,
            priority: r.u8()?,
            deadline_s: rhythm_snapshot::Snapshot::decode(r)?,
            gang: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

/// One entry of a cluster's job plan: a BE workload plus its scheduling
/// attributes. A gang size of `k > 1` expands into `k` [`ClusterJob`]s
/// sharing a gang id that start and roll back atomically.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The BE workload.
    pub spec: BeSpec,
    /// Priority class (0 = lowest).
    pub priority: u8,
    /// Completion deadline in virtual seconds (`None` = best effort).
    pub deadline_s: Option<f64>,
    /// Number of instances that must be co-scheduled (1 = solitary).
    pub gang: u32,
}

impl JobSpec {
    /// A solitary best-effort entry for `spec`.
    pub fn solitary(spec: BeSpec) -> JobSpec {
        JobSpec {
            spec,
            priority: 0,
            deadline_s: None,
            gang: 1,
        }
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: u8) -> JobSpec {
        self.priority = priority;
        self
    }

    /// Sets the completion deadline.
    pub fn with_deadline(mut self, deadline_s: f64) -> JobSpec {
        self.deadline_s = Some(deadline_s);
        self
    }

    /// Makes this a gang of `k` co-scheduled instances.
    pub fn with_gang(mut self, k: u32) -> JobSpec {
        self.gang = k.max(1);
        self
    }
}

/// Aggregate job outcomes of one cluster run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    /// Jobs submitted.
    pub submitted: u64,
    /// Jobs that finished within the run.
    pub completed: u64,
    /// StopBE kills across all jobs.
    pub kills: u64,
    /// Mean completion time of finished jobs, in virtual seconds.
    pub completion_mean_s: f64,
    /// 99th-percentile completion time of finished jobs.
    pub completion_p99_s: f64,
    /// Total wasted work in job-fractions (1.0 = one whole job redone).
    pub wasted_jobs: f64,
    /// Total wasted work in solo-machine-seconds (fraction ×
    /// `job_seconds`).
    pub wasted_machine_s: f64,
    /// Jobs that carried a deadline.
    pub deadline_total: u64,
    /// Dated jobs that finished late or ran out of time.
    pub deadline_missed: u64,
    /// `deadline_missed / deadline_total` (0 when no job had a
    /// deadline).
    pub deadline_miss_rate: f64,
}

impl JobStats {
    /// Summarizes a set of jobs without a run horizon: only jobs that
    /// *completed* late count as deadline misses.
    pub fn from_jobs(jobs: &[ClusterJob]) -> JobStats {
        JobStats::from_jobs_at(jobs, f64::NEG_INFINITY)
    }

    /// Summarizes a set of jobs as of `horizon_s` (the end of the run):
    /// a dated job misses if it completed late **or** is still unfinished
    /// past its deadline.
    pub fn from_jobs_at(jobs: &[ClusterJob], horizon_s: f64) -> JobStats {
        let mut times: Vec<f64> = jobs.iter().filter_map(|j| j.completion_time_s()).collect();
        // PANIC: completion times derive from SimTime nanos — always finite.
        times.sort_by(|a, b| a.partial_cmp(b).expect("completion times are finite"));
        let completed = times.len() as u64;
        let mean = if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        };
        let p99 = if times.is_empty() {
            0.0
        } else {
            times[((times.len() as f64 * 0.99).ceil() as usize).min(times.len()) - 1]
        };
        let deadline_total = jobs.iter().filter(|j| j.deadline_s.is_some()).count() as u64;
        let deadline_missed = jobs
            .iter()
            .filter(|j| j.deadline_missed_at(horizon_s))
            .count() as u64;
        JobStats {
            submitted: jobs.len() as u64,
            completed,
            kills: jobs.iter().map(|j| j.kills as u64).sum(),
            completion_mean_s: mean,
            completion_p99_s: p99,
            wasted_jobs: jobs.iter().map(|j| j.wasted).sum(),
            wasted_machine_s: jobs.iter().map(|j| j.wasted * j.spec.job_seconds).sum(),
            deadline_total,
            deadline_missed,
            deadline_miss_rate: if deadline_total > 0 {
                deadline_missed as f64 / deadline_total as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::BeKind;

    fn job() -> ClusterJob {
        ClusterJob::new(0, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0)
    }

    #[test]
    fn kill_rolls_back_to_checkpoint_boundary() {
        let mut j = job();
        // 0.37 done with 10% checkpoints: 0.30 banked, 0.07 wasted.
        j.on_kill(0.37, 0.10);
        assert!((j.checkpoint - 0.30).abs() < 1e-12, "{}", j.checkpoint);
        assert!((j.wasted - 0.07).abs() < 1e-12, "{}", j.wasted);
        assert_eq!(j.kills, 1);
        assert_eq!(j.state, JobState::Queued);
    }

    #[test]
    fn kill_never_loses_banked_progress() {
        let mut j = job();
        j.on_kill(0.37, 0.10);
        // Second incarnation killed almost immediately: checkpoint holds.
        j.on_kill(0.01, 0.10);
        assert!((j.checkpoint - 0.30).abs() < 1e-12);
        assert!((j.wasted - 0.08).abs() < 1e-12, "{}", j.wasted);
    }

    #[test]
    fn zero_fraction_wastes_everything_unbanked() {
        let mut j = job();
        j.on_kill(0.5, 0.0);
        assert_eq!(j.checkpoint, 0.0);
        assert!((j.wasted - 0.5).abs() < 1e-12);
    }

    #[test]
    fn completion_time_measured_from_submission() {
        let mut j = ClusterJob::new(3, Arc::new(BeSpec::of(BeKind::CpuStress)), 10.0);
        j.on_complete(110.0);
        assert_eq!(j.completion_time_s(), Some(100.0));
        assert_eq!(j.state, JobState::Done);
    }

    #[test]
    fn deadline_accounting() {
        let mut on_time = job();
        on_time.deadline_s = Some(100.0);
        on_time.on_complete(80.0);
        let mut late = ClusterJob::new(1, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0);
        late.deadline_s = Some(100.0);
        late.on_complete(120.0);
        let mut unfinished = ClusterJob::new(2, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0);
        unfinished.deadline_s = Some(150.0);
        let undated = ClusterJob::new(3, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0);

        assert!(!on_time.deadline_missed_at(300.0));
        assert!(late.deadline_missed_at(300.0));
        assert!(unfinished.deadline_missed_at(300.0), "out of time");
        assert!(!unfinished.deadline_missed_at(100.0), "still has time");
        assert!(!undated.deadline_missed_at(300.0));

        let jobs = [on_time, late, unfinished, undated];
        let s = JobStats::from_jobs_at(&jobs, 300.0);
        assert_eq!(s.deadline_total, 3);
        assert_eq!(s.deadline_missed, 2);
        assert!((s.deadline_miss_rate - 2.0 / 3.0).abs() < 1e-12);
        // Without a horizon only completed-late counts.
        let s = JobStats::from_jobs(&jobs);
        assert_eq!(s.deadline_missed, 1);
    }

    #[test]
    fn gang_spec_expands_attributes() {
        let js = JobSpec::solitary(BeSpec::of(BeKind::Wordcount))
            .with_priority(2)
            .with_deadline(120.0)
            .with_gang(3);
        assert_eq!(js.priority, 2);
        assert_eq!(js.deadline_s, Some(120.0));
        assert_eq!(js.gang, 3);
        assert_eq!(JobSpec::solitary(BeSpec::of(BeKind::Wordcount)).with_gang(0).gang, 1);
    }

    #[test]
    fn snapshot_round_trips_job_lifecycle() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut j = ClusterJob::new(5, Arc::new(BeSpec::of(BeKind::Lstm)), 12.0);
        j.priority = 2;
        j.deadline_s = Some(90.0);
        j.gang = Some(1);
        j.state = JobState::Running(7);
        j.on_kill(0.34, 0.10);
        let enc = |j: &ClusterJob| {
            let mut w = Writer::new();
            j.encode(&mut w);
            w.into_bytes()
        };
        let bytes = enc(&j);
        let back = ClusterJob::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(enc(&back), bytes);
        assert_eq!(back.id, 5);
        assert_eq!(back.spec.name, j.spec.name);
        assert_eq!(back.state, JobState::Queued, "kill requeued it");
        assert_eq!(back.kills, 1);
        assert!((back.checkpoint - j.checkpoint).abs() < 1e-15);
        // A checkpoint past 1.0 is structurally impossible state.
        let mut w = Writer::new();
        j.encode(&mut w);
        let mut bad = w.into_bytes();
        // Rewind over the fixed-size tail (wasted 8 + kills 4 +
        // submitted 8 + completed-None 1 + state-Queued 1 + priority 1 +
        // deadline-Some 9 + gang-Some 5 = 37) to the checkpoint field.
        let ckpt_at = bad.len() - 37 - 8;
        bad[ckpt_at..ckpt_at + 8].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        let err = ClusterJob::decode(&mut Reader::new(&bad));
        assert!(matches!(err.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn stats_aggregate() {
        let mut a = job();
        a.on_kill(0.25, 0.10);
        a.on_complete(50.0);
        let mut b = ClusterJob::new(1, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0);
        b.on_complete(150.0);
        let c = ClusterJob::new(2, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0);
        let s = JobStats::from_jobs(&[a, b, c]);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.kills, 1);
        assert!((s.completion_mean_s - 100.0).abs() < 1e-9);
        assert!((s.wasted_jobs - 0.05).abs() < 1e-12);
    }
}
