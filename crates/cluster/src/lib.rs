//! Cluster-level BE scheduling above the per-machine controllers.
//!
//! The paper's controllers are strictly per-machine: each one watches its
//! own Servpod and emits AllowBEGrowth / DisallowBEGrowth / StopBE (§3.5,
//! Algorithm 2). What consumes those signals — the component that decides
//! *where* BE jobs go, and what happens to work a StopBE throws away — is
//! left to "the cluster scheduler". This crate is that scheduler:
//!
//! * [`job`] — BE jobs with checkpoint-fraction progress, priority
//!   classes, deadlines and gang membership, so completion time, wasted
//!   work and deadline-miss rate are first-class, measurable outcomes;
//! * [`queue`] — the shared deterministic backlog: priority classes with
//!   EDF inside each class, optional aging, and requeue-to-front for
//!   killed work;
//! * [`placement`] — pluggable policies: round-robin, least-pressure,
//!   interference-score (predicted LC inflation via the calibrated
//!   `rhythm-interference` sensitivities), and hetero-aware
//!   (capacity-normalized with gang straggler penalties);
//! * [`fault`] — deterministic fault injection: a [`FaultPlan`] of
//!   crash / recover / slow-node / correlated-failure events keyed to
//!   virtual time, applied single-threaded at epoch barriers so chaos
//!   runs stay bit-identical for any shard or thread count;
//! * [`state`] — the N-machine cluster as service replicas, global
//!   machine indexing, per-replica seed derivation;
//! * [`runner`] — the parallel epoch-barrier runner: engines advance one
//!   controller period at a time on crossbeam workers, cluster
//!   bookkeeping happens single-threaded at the barrier, and results are
//!   bit-identical for any worker-thread count;
//! * [`metrics`] — merged cluster-wide EMU / utilization plus job
//!   completion-time and wasted-work statistics;
//! * [`snapshot`] — durable cluster state: [`ClusterSnapshot`] captured
//!   at epoch barriers, bit-identical resume via
//!   [`ClusterRunner::resume`], and structural snapshot diffs.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod fault;
pub mod job;
pub mod metrics;
pub mod placement;
pub mod queue;
pub mod runner;
pub mod snapshot;
pub mod state;

/// Snapshot layout contract for this crate's [`rhythm_snapshot::Snapshot`]
/// impls and the [`snapshot::ClusterSnapshot`] container. Bump on any
/// wire-format change: the hash of this string is embedded in every
/// snapshot file and checked on resume, so stale readers fail with
/// [`rhythm_snapshot::SnapshotError::Incompatible`] instead of decoding
/// garbage.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-cluster/v1: \
     SeqSource{next_back:i64,next_front:i64}; \
     JobMeta{priority:u8,deadline_s:Option<f64>,enqueued_s:f64,key:Option<(u8,u64,i64,u64)>}; \
     JobQueue{meta:Vec<JobMeta>,next_back:i64,next_front:i64,requeues:u64,aging_s:Option<f64>}; \
     JobState{tag:u8,machine:u64?}; \
     ClusterJob{id:u64,spec:BeSpec,checkpoint:f64,wasted:f64,kills:u32,submitted_s:f64,\
     completed_s:Option<f64>,state:JobState,priority:u8,deadline_s:Option<f64>,gang:Option<u32>}; \
     GangState{members:Vec<u64>,patience_left:u32,forming:bool}; \
     ShardState{queue:JobQueue,offered:Vec<Option<u64>>,bindings:BTreeMap<(u64,u64),u64>}; \
     SchedulerState{jobs,shards,seq,rr_cursor:u64,gangs,events,steals:u64,fast_path_epochs:u64}; \
     ClusterSnapshot{meta:{epoch:u32,t_ns,machines,pods,replicas,shards,seed,duration_s,\
     controller_period_ms:u64,managed:bool},sections:[meta,scheduler,engines,summaries,tail]}";

pub use fault::{ChaosState, FaultEvent, FaultKind, FaultPlan};
pub use job::{ClusterJob, JobId, JobSpec, JobState, JobStats};
pub use metrics::{
    machine_fingerprints, ClusterMetrics, ClusterOutcome, ClusterTelemetry, ShardingReport,
};
pub use placement::{CandidateMachine, PlacementPolicy, Placer};
pub use queue::{JobQueue, QueueKey, SeqSource};
pub use runner::{compare_cluster, run_cluster, ClusterRun, ClusterRunner};
pub use snapshot::{
    expected_schemas, ChaosSection, ClusterSnapshot, GangState, SchedulerState, ShardState,
    SnapshotDiff,
};
pub use state::{global_index, machine_ref, replica_seed, ClusterConfig, MachineRef, ShardMap};
