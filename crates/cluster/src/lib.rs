//! Cluster-level BE scheduling above the per-machine controllers.
//!
//! The paper's controllers are strictly per-machine: each one watches its
//! own Servpod and emits AllowBEGrowth / DisallowBEGrowth / StopBE (§3.5,
//! Algorithm 2). What consumes those signals — the component that decides
//! *where* BE jobs go, and what happens to work a StopBE throws away — is
//! left to "the cluster scheduler". This crate is that scheduler:
//!
//! * [`job`] — BE jobs with checkpoint-fraction progress, priority
//!   classes, deadlines and gang membership, so completion time, wasted
//!   work and deadline-miss rate are first-class, measurable outcomes;
//! * [`queue`] — the shared deterministic backlog: priority classes with
//!   EDF inside each class, optional aging, and requeue-to-front for
//!   killed work;
//! * [`placement`] — pluggable policies: round-robin, least-pressure,
//!   interference-score (predicted LC inflation via the calibrated
//!   `rhythm-interference` sensitivities), and hetero-aware
//!   (capacity-normalized with gang straggler penalties);
//! * [`state`] — the N-machine cluster as service replicas, global
//!   machine indexing, per-replica seed derivation;
//! * [`runner`] — the parallel epoch-barrier runner: engines advance one
//!   controller period at a time on crossbeam workers, cluster
//!   bookkeeping happens single-threaded at the barrier, and results are
//!   bit-identical for any worker-thread count;
//! * [`metrics`] — merged cluster-wide EMU / utilization plus job
//!   completion-time and wasted-work statistics.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod job;
pub mod metrics;
pub mod placement;
pub mod queue;
pub mod runner;
pub mod state;

pub use job::{ClusterJob, JobId, JobSpec, JobState, JobStats};
pub use metrics::{
    machine_fingerprints, ClusterMetrics, ClusterOutcome, ClusterTelemetry, ShardingReport,
};
pub use placement::{CandidateMachine, PlacementPolicy, Placer};
pub use queue::{JobQueue, QueueKey, SeqSource};
pub use runner::{compare_cluster, run_cluster};
pub use state::{global_index, machine_ref, replica_seed, ClusterConfig, MachineRef, ShardMap};
