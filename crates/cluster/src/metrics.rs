//! Cluster-wide metrics: the per-replica engine outputs merged into one
//! EMU/utilization view plus the job-level outcomes only the cluster
//! layer can observe (completion times, wasted work, requeues).

use crate::job::{ClusterJob, JobStats};
use rhythm_core::metrics::RunMetrics;
use rhythm_core::runtime::EngineOutput;
use rhythm_sim::LatencyHistogram;
use rhythm_telemetry::{ClusterEvent, TailPoint, TelemetryOutput};
use serde::{Deserialize, Serialize};

/// Merged metrics of one cluster run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Machines in the cluster.
    pub machines: usize,
    /// Service replicas (engines).
    pub replicas: usize,
    /// Mean LC throughput across replicas (served / max load).
    pub lc_throughput: f64,
    /// Mean normalized BE throughput across machines.
    pub be_throughput: f64,
    /// `lc_throughput + be_throughput` (the paper's EMU).
    pub emu: f64,
    /// Mean machine CPU utilization.
    pub cpu_util: f64,
    /// Mean machine memory-bandwidth utilization.
    pub membw_util: f64,
    /// Cluster-wide p99 latency in ms (merged histograms).
    pub p99_ms: f64,
    /// The SLA target in ms.
    pub sla_ms: f64,
    /// `p99 / SLA`.
    pub tail_ratio: f64,
    /// Controller periods with slack < 0, summed over machines.
    pub sla_violations: u64,
    /// StopBE kills summed over machines.
    pub be_kills: u64,
    /// Requests completed cluster-wide (post-warmup).
    pub completed_requests: u64,
    /// BE job outcomes.
    pub jobs: JobStats,
    /// Queue requeues (kills + withdrawn offers re-entering the queue).
    pub requeues: u64,
}

impl ClusterMetrics {
    /// Merges per-replica outputs and the job ledger. `horizon_s` is the
    /// run length in virtual seconds: a job whose deadline fell inside
    /// the window but did not finish by it counts as a deadline miss.
    pub fn merge(
        machines: usize,
        outputs: &[EngineOutput],
        per_replica: &[RunMetrics],
        jobs: &[ClusterJob],
        requeues: u64,
        horizon_s: f64,
    ) -> ClusterMetrics {
        let replicas = per_replica.len().max(1) as f64;
        let mean = |f: &dyn Fn(&RunMetrics) -> f64| -> f64 {
            per_replica.iter().map(&f).sum::<f64>() / replicas
        };
        let lc = mean(&|m: &RunMetrics| m.lc_throughput);
        let be = mean(&|m: &RunMetrics| m.be_throughput);
        let mut hist = LatencyHistogram::new();
        for o in outputs {
            hist.merge(&o.latency);
        }
        let p99 = hist.p99();
        let sla_ms = outputs.first().map(|o| o.sla_ms).unwrap_or(f64::INFINITY);
        ClusterMetrics {
            machines,
            replicas: per_replica.len(),
            lc_throughput: lc,
            be_throughput: be,
            emu: lc + be,
            cpu_util: mean(&|m: &RunMetrics| m.cpu_util),
            membw_util: mean(&|m: &RunMetrics| m.membw_util),
            p99_ms: p99,
            sla_ms,
            tail_ratio: if sla_ms.is_finite() && sla_ms > 0.0 {
                p99 / sla_ms
            } else {
                0.0
            },
            sla_violations: per_replica.iter().map(|m| m.sla_violations).sum(),
            be_kills: per_replica.iter().map(|m| m.be_kills).sum(),
            completed_requests: outputs.iter().map(|o| o.completed).sum(),
            jobs: JobStats::from_jobs_at(jobs, horizon_s),
            requeues,
        }
    }
}

/// How the sharded scheduler carved up one run. Kept **outside**
/// [`ClusterMetrics`] on purpose: metrics are bit-identical for any
/// shard count, while these numbers describe the sharding itself (K=1
/// trivially reports zero steals).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ShardingReport {
    /// Scheduler shards the runner used (K).
    pub shards: usize,
    /// Jobs placed on a machine outside their home shard (cross-shard
    /// steals), summed over the run.
    pub steals: u64,
    /// Dispatch passes in which at least one shard was skipped outright
    /// because none of its machines signalled AllowBEGrowth (the
    /// placement fast path).
    pub fast_path_epochs: u64,
}

/// Everything one cluster run produces.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// Merged cluster metrics.
    pub metrics: ClusterMetrics,
    /// Shard layout and steal counters of the scheduler ([`ClusterConfig::shards`]).
    ///
    /// [`ClusterConfig::shards`]: crate::ClusterConfig::shards
    pub sharding: ShardingReport,
    /// Per-replica run metrics (index = replica).
    pub per_replica: Vec<RunMetrics>,
    /// The full job ledger.
    pub jobs: Vec<ClusterJob>,
    /// Per-machine fingerprints (index = global machine index): a hash
    /// of the machine's measured aggregates, for bit-reproducibility
    /// checks across thread counts.
    pub fingerprints: Vec<u64>,
    /// Telemetry collected by every replica plus the merged cluster tail
    /// series (`None` when [`crate::ClusterConfig::telemetry`] was
    /// disabled).
    pub telemetry: Option<ClusterTelemetry>,
}

/// Telemetry of one cluster run: every replica's recorder/audit/tail
/// output plus the cluster-wide tail series merged at the epoch
/// barriers. All exports are byte-identical for any worker-thread count.
#[derive(Clone, Debug, Default)]
pub struct ClusterTelemetry {
    /// Per-replica telemetry, in replica order.
    pub replicas: Vec<TelemetryOutput>,
    /// The cluster-wide tail series: per-engine epoch windows merged in
    /// fixed replica order at each barrier.
    pub cluster_tail: Vec<TailPoint>,
    /// Cluster-scheduler events (gang lifecycle, deadline misses), in
    /// emission order. Empty for homogeneous runs without gangs or
    /// deadlines, keeping their exports byte-identical to older ones.
    pub cluster_events: Vec<ClusterEvent>,
}

impl ClusterTelemetry {
    /// The full JSONL export (meta line, per-replica events/audit/tail,
    /// merged cluster tail, cluster-scheduler events).
    pub fn export_jsonl(&self) -> String {
        rhythm_telemetry::export_jsonl_with_events(
            &self.replicas,
            &self.cluster_tail,
            &self.cluster_events,
        )
    }

    /// The Chrome-trace (`chrome://tracing`) export.
    pub fn chrome_trace(&self) -> String {
        rhythm_telemetry::chrome_trace(&self.replicas)
    }

    /// The human-readable decision report, one line per controller
    /// action, replicas in order.
    pub fn why_report(&self) -> String {
        let mut out = String::new();
        for (r, rep) in self.replicas.iter().enumerate() {
            for rec in &rep.audit {
                out.push_str(&format!("[replica {r}] {}\n", rec.why()));
            }
        }
        out
    }

    /// Total controller decisions in the audit trail.
    pub fn decisions(&self) -> usize {
        self.replicas.iter().map(|r| r.audit.len()).sum()
    }
}

/// FNV-1a over per-machine output aggregates. Two runs that processed
/// identical event sequences produce identical fingerprints; any drift
/// in BE scheduling, progress accrual or latency sampling shows up.
pub fn machine_fingerprints(outputs: &[EngineOutput]) -> Vec<u64> {
    let mut fps = Vec::new();
    for o in outputs {
        for p in &o.pods {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut feed = |v: u64| {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            };
            feed(o.completed);
            feed(p.cpu_util.to_bits());
            feed(p.lc_cpu_util.to_bits());
            feed(p.membw_util.to_bits());
            feed(p.be_throughput.to_bits());
            feed(p.be_instances_avg.to_bits());
            feed(p.sojourn_stats.count());
            fps.push(h);
        }
    }
    fps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ClusterJob;
    use rhythm_workloads::{BeKind, BeSpec};
    use std::sync::Arc;

    #[test]
    fn merge_of_nothing_is_benign() {
        let jobs: Vec<ClusterJob> = vec![ClusterJob::new(0, Arc::new(BeSpec::of(BeKind::Wordcount)), 0.0)];
        let m = ClusterMetrics::merge(4, &[], &[], &jobs, 0, 600.0);
        assert_eq!(m.machines, 4);
        assert_eq!(m.jobs.submitted, 1);
        assert_eq!(m.jobs.completed, 0);
        assert_eq!(m.completed_requests, 0);
    }
}
