//! Placement policies for the BE dispatcher.
//!
//! The dispatcher only ever considers machines whose controller currently
//! signals AllowBEGrowth (§3.5: the cluster scheduler is driven purely by
//! the per-machine signals). Among those, the policy picks where the next
//! queued job goes:
//!
//! * **RoundRobin** — rotate over eligible machines; the baseline any
//!   real scheduler starts from.
//! * **LeastPressure** — place on the machine whose current BE population
//!   exerts the least aggregate resource pressure.
//! * **InterferenceScore** — score each eligible machine by the
//!   service-time inflation its LC component *would* suffer with one
//!   probe instance of the job added, using the calibrated
//!   `rhythm-interference` sensitivities, and pick the minimum (cf. the
//!   scoring mechanism of the related microservice-interference work).
//! * **HeteroAware** — the interference score divided by the machine's
//!   normalized capacity headroom (free cores × max frequency against
//!   the paper testbed), plus a straggler penalty that steers gang
//!   members toward machines of similar capacity — a gang finishes when
//!   its *slowest* member does, so co-placing a member on a much weaker
//!   machine wastes the faster peers.

use rhythm_interference::{InterferenceModel, Pressure};
use rhythm_machine::Machine;
use rhythm_workloads::{BeSpec, ComponentSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which placement policy the dispatcher uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Rotate over eligible machines.
    RoundRobin,
    /// Least aggregate BE pressure first.
    LeastPressure,
    /// Lowest predicted LC inflation first.
    InterferenceScore,
    /// Inflation weighted by capacity headroom plus a gang straggler
    /// penalty (heterogeneous clusters).
    HeteroAware,
}

impl PlacementPolicy {
    /// Short name used in reports and CLI arguments.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::LeastPressure => "least-pressure",
            PlacementPolicy::InterferenceScore => "interference-score",
            PlacementPolicy::HeteroAware => "hetero-aware",
        }
    }

    /// Parses a CLI name (see [`PlacementPolicy::name`]).
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s {
            "round-robin" | "rr" => Some(PlacementPolicy::RoundRobin),
            "least-pressure" | "lp" => Some(PlacementPolicy::LeastPressure),
            "interference-score" | "is" => Some(PlacementPolicy::InterferenceScore),
            "hetero-aware" | "ha" => Some(PlacementPolicy::HeteroAware),
            _ => None,
        }
    }
}

/// One eligible machine as the placer sees it.
pub struct CandidateMachine<'a> {
    /// Global machine index within the cluster.
    pub global: usize,
    /// The machine's current state.
    pub machine: &'a Machine,
    /// The LC component hosted on this machine.
    pub component: &'a ComponentSpec,
}

/// Stateful placer (the round-robin cursor persists across epochs).
#[derive(Clone, Debug)]
pub struct Placer {
    policy: PlacementPolicy,
    model: InterferenceModel,
    cursor: usize,
}

impl Placer {
    /// A placer for `policy` scoring with `model`.
    pub fn new(policy: PlacementPolicy, model: InterferenceModel) -> Placer {
        Placer {
            policy,
            model,
            cursor: 0,
        }
    }

    /// The policy this placer runs.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Picks the machine (global index) for one instance of `job` among
    /// `eligible` (must be sorted by global index; deterministic:
    /// ties break toward the lowest index). Returns `None` when nothing
    /// is eligible.
    pub fn choose(
        &mut self,
        job: &BeSpec,
        eligible: &[CandidateMachine<'_>],
        specs: &BTreeMap<String, BeSpec>,
    ) -> Option<usize> {
        self.choose_with_peers(job, eligible, specs, &[])
    }

    /// [`Placer::choose`] with gang context: `peer_caps` holds the
    /// normalized capacities of machines already selected for sibling
    /// instances of the same gang. Only `HeteroAware` uses it (to avoid
    /// splitting a gang across machines of very different speeds); the
    /// other policies ignore it entirely, so passing `&[]` makes this
    /// identical to `choose`.
    pub fn choose_with_peers(
        &mut self,
        job: &BeSpec,
        eligible: &[CandidateMachine<'_>],
        specs: &BTreeMap<String, BeSpec>,
        peer_caps: &[f64],
    ) -> Option<usize> {
        if eligible.is_empty() {
            return None;
        }
        match self.policy {
            PlacementPolicy::RoundRobin => {
                // First eligible machine at or after the cursor, wrapping.
                let pick = eligible
                    .iter()
                    .find(|c| c.global >= self.cursor)
                    .unwrap_or(&eligible[0]);
                self.cursor = pick.global + 1;
                Some(pick.global)
            }
            PlacementPolicy::LeastPressure => {
                Self::argmin(eligible.iter().map(|c| {
                    (c.global, Self::pressure_score(c.machine, specs))
                }))
            }
            PlacementPolicy::InterferenceScore => {
                Self::argmin(eligible.iter().map(|c| {
                    (c.global, self.score_on(job, c.component, c.machine, specs))
                }))
            }
            PlacementPolicy::HeteroAware => {
                let peer_mean = if peer_caps.is_empty() {
                    None
                } else {
                    Some(peer_caps.iter().sum::<f64>() / peer_caps.len() as f64)
                };
                Self::argmin(eligible.iter().map(|c| {
                    let cap = Self::capacity(c.machine);
                    let mut s = self.hetero_base(job, c.component, c.machine, specs);
                    if let Some(mean) = peer_mean {
                        // A gang finishes with its slowest member: penalise
                        // capacity mismatch against already-placed siblings.
                        // Weighted to rival the inflation term, since a
                        // straggler wastes every sibling's cycles.
                        s += Self::STRAGGLER_WEIGHT * (cap - mean).abs();
                    }
                    (c.global, s)
                }))
            }
        }
    }

    /// How hard gang co-placement pulls toward capacity-matched peers
    /// (per unit of normalized-capacity mismatch).
    pub(crate) const STRAGGLER_WEIGHT: f64 = 2.0;

    /// The round-robin cursor (next global index the rotation tries).
    pub(crate) fn cursor(&self) -> usize {
        self.cursor
    }

    /// Moves the round-robin cursor (the sharded dispatcher keeps its
    /// own rotation state and mirrors it back here).
    pub(crate) fn set_cursor(&mut self, cursor: usize) {
        self.cursor = cursor;
    }

    /// The LeastPressure score of a machine: aggregate pressure of its
    /// current BE population. Job-independent, so the sharded dispatcher
    /// caches one ranking per dispatch pass.
    pub(crate) fn pressure_score(machine: &Machine, specs: &BTreeMap<String, BeSpec>) -> f64 {
        let p = Pressure::from_machine(machine, specs);
        p.cpu + p.llc + p.dram + p.net
    }

    /// The HeteroAware base score (no gang context): predicted inflation
    /// divided by normalized capacity × core headroom. The straggler
    /// penalty is added on top by the caller when peers exist.
    pub(crate) fn hetero_base(
        &self,
        job: &BeSpec,
        component: &ComponentSpec,
        machine: &Machine,
        specs: &BTreeMap<String, BeSpec>,
    ) -> f64 {
        let cap = Self::capacity(machine);
        let total = machine.spec().total_cores().max(1) as f64;
        let headroom = machine.free_core_count() as f64 / total;
        self.score_on(job, component, machine, specs) / (cap * headroom.max(0.05))
    }

    /// A machine's compute capacity normalized to the paper testbed
    /// (40 cores × 2.0 GHz = 1.0).
    pub fn capacity(machine: &Machine) -> f64 {
        let spec = machine.spec();
        spec.total_cores() as f64 * spec.max_freq_mhz as f64 / (40.0 * 2_000.0)
    }

    /// Predicted LC service-time inflation on `machine` (hosting
    /// `component`) with one probe instance of `job` added to its
    /// current BE population.
    pub(crate) fn score_on(
        &self,
        job: &BeSpec,
        component: &ComponentSpec,
        machine: &Machine,
        specs: &BTreeMap<String, BeSpec>,
    ) -> f64 {
        let mut p = Pressure::from_machine(machine, specs);
        // Probe with a couple of cores: a fresh instance starts at one
        // core but the controller grows it, and a 1-core probe barely
        // separates job characters.
        let probe_cores = job.solo_cores.clamp(1, 2) as f64 * machine.be_dvfs.speed_fraction();
        p.cpu += job.cpu_pressure_per_core * probe_cores;
        p.llc += job.llc_pressure_per_core * probe_cores;
        p.dram += job.dram_pressure_per_core * probe_cores;
        p.net += (job.net_demand_mbps / machine.spec().nic_mbps).max(0.0);
        let p = p.clamped();
        self.model.inflation(component, &p, machine)
    }

    /// Deterministic argmin: strictly-smaller wins, so ties keep the
    /// lowest global index (the iterator is index-sorted).
    fn argmin(scores: impl Iterator<Item = (usize, f64)>) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (g, s) in scores {
            match best {
                None => best = Some((g, s)),
                Some((_, bs)) if s < bs => best = Some((g, s)),
                _ => {}
            }
        }
        best.map(|(g, _)| g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_machine::{Allocation, MachineSpec};
    use rhythm_workloads::{apps, BeKind};

    fn machine() -> Machine {
        Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        )
    }

    fn grant(cores: u32) -> Allocation {
        Allocation {
            cores,
            llc_ways: 2,
            mem_mb: 2048,
            net_mbps: 0.0,
            freq_mhz: 2_000,
        }
    }

    fn specs() -> BTreeMap<String, BeSpec> {
        let mut m = BTreeMap::new();
        for k in [BeKind::Wordcount, BeKind::StreamDram { big: true }] {
            let s = BeSpec::of(k);
            m.insert(s.name.clone(), s);
        }
        m
    }

    #[test]
    fn round_robin_rotates() {
        let svc = apps::ecommerce();
        let ms: Vec<Machine> = (0..3).map(|_| machine()).collect();
        let cands: Vec<CandidateMachine<'_>> = ms
            .iter()
            .enumerate()
            .map(|(i, m)| CandidateMachine {
                global: i,
                machine: m,
                component: &svc.nodes[0].component,
            })
            .collect();
        let mut p = Placer::new(PlacementPolicy::RoundRobin, InterferenceModel::calibrated());
        let job = BeSpec::of(BeKind::Wordcount);
        let s = specs();
        let picks: Vec<usize> = (0..5).map(|_| p.choose(&job, &cands, &s).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn least_pressure_avoids_loaded_machine() {
        let svc = apps::ecommerce();
        let mut loaded = machine();
        loaded.admit_be("stream-dram", grant(4)).unwrap();
        let idle = machine();
        let cands = [
            CandidateMachine {
                global: 0,
                machine: &loaded,
                component: &svc.nodes[0].component,
            },
            CandidateMachine {
                global: 1,
                machine: &idle,
                component: &svc.nodes[1].component,
            },
        ];
        let mut p = Placer::new(PlacementPolicy::LeastPressure, InterferenceModel::calibrated());
        let job = BeSpec::of(BeKind::Wordcount);
        assert_eq!(p.choose(&job, &cands, &specs()), Some(1));
    }

    #[test]
    fn interference_score_prefers_tolerant_component() {
        // Same machine state, different components: the job should land
        // on the component least sensitive to its pressure profile.
        let svc = apps::ecommerce();
        let a = machine();
        let b = machine();
        let mut sens: Vec<(usize, f64)> = Vec::new();
        let job = BeSpec::of(BeKind::StreamDram { big: true });
        let model = InterferenceModel::calibrated();
        for (i, m) in [&a, &b].into_iter().enumerate() {
            let c = CandidateMachine {
                global: i,
                machine: m,
                component: &svc.nodes[i].component,
            };
            let placer = Placer::new(PlacementPolicy::InterferenceScore, model);
            sens.push((i, placer.score_on(&job, c.component, c.machine, &specs())));
        }
        let cands = [
            CandidateMachine {
                global: 0,
                machine: &a,
                component: &svc.nodes[0].component,
            },
            CandidateMachine {
                global: 1,
                machine: &b,
                component: &svc.nodes[1].component,
            },
        ];
        let mut p = Placer::new(PlacementPolicy::InterferenceScore, model);
        let expect = if sens[0].1 <= sens[1].1 { 0 } else { 1 };
        assert_eq!(p.choose(&job, &cands, &specs()), Some(expect));
    }

    #[test]
    fn capacity_orders_machine_classes() {
        let of = |s: MachineSpec| {
            Machine::new(
                s,
                Allocation {
                    cores: 8,
                    llc_ways: 0,
                    mem_mb: 16 * 1024,
                    net_mbps: 1_000.0,
                    freq_mhz: s.max_freq_mhz,
                },
            )
        };
        let dense = Placer::capacity(&of(MachineSpec::dense_compute()));
        let paper = Placer::capacity(&of(MachineSpec::paper_testbed()));
        let lean = Placer::capacity(&of(MachineSpec::lean_node()));
        assert!((paper - 1.0).abs() < 1e-12, "testbed normalizes to 1");
        assert!(dense > paper && paper > lean, "{dense} {paper} {lean}");
    }

    #[test]
    fn hetero_aware_prefers_bigger_machine() {
        // Identical load, identical component: the dense node should win
        // purely on capacity headroom.
        let svc = apps::ecommerce();
        let small = Machine::new(
            MachineSpec::lean_node(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 1_800,
            },
        );
        let big = Machine::new(
            MachineSpec::dense_compute(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_600,
            },
        );
        let cands = [
            CandidateMachine {
                global: 0,
                machine: &small,
                component: &svc.nodes[0].component,
            },
            CandidateMachine {
                global: 1,
                machine: &big,
                component: &svc.nodes[0].component,
            },
        ];
        let mut p = Placer::new(PlacementPolicy::HeteroAware, InterferenceModel::calibrated());
        let job = BeSpec::of(BeKind::Wordcount);
        assert_eq!(p.choose(&job, &cands, &specs()), Some(1));
    }

    #[test]
    fn gang_peers_pull_toward_similar_capacity() {
        let svc = apps::ecommerce();
        let mid = Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        );
        let big = Machine::new(
            MachineSpec::dense_compute(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_600,
            },
        );
        let cands = [
            CandidateMachine {
                global: 0,
                machine: &mid,
                component: &svc.nodes[0].component,
            },
            CandidateMachine {
                global: 1,
                machine: &big,
                component: &svc.nodes[0].component,
            },
        ];
        let job = BeSpec::of(BeKind::Wordcount);
        let model = InterferenceModel::calibrated();
        let mut p = Placer::new(PlacementPolicy::HeteroAware, model);
        // Alone, the big machine wins…
        assert_eq!(p.choose_with_peers(&job, &cands, &specs(), &[]), Some(1));
        // …but with siblings already placed on lean nodes the straggler
        // penalty pulls the next member toward the closer-matched machine.
        let lean = Machine::new(
            MachineSpec::lean_node(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 16 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 1_800,
            },
        );
        let lean_cap = Placer::capacity(&lean);
        let with_peers = p.choose_with_peers(&job, &cands, &specs(), &[lean_cap; 4]);
        assert_eq!(with_peers, Some(0), "gang members cluster by capacity");
    }
}
