//! The shared BE job queue.
//!
//! A deterministic FIFO over [`JobId`]s. Fresh submissions join the back;
//! work requeued after a StopBE kill re-enters at the *front* — the job
//! already waited its turn once, and resuming killed work first keeps the
//! wasted-work metric from compounding with extra queueing delay.

use crate::job::JobId;
use std::collections::VecDeque;

/// Deterministic shared queue of jobs awaiting placement.
#[derive(Clone, Debug, Default)]
pub struct JobQueue {
    q: VecDeque<JobId>,
    requeues: u64,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// Submits a fresh job (back of the queue).
    pub fn submit(&mut self, id: JobId) {
        self.q.push_back(id);
    }

    /// Requeues killed or withdrawn work (front of the queue).
    pub fn requeue(&mut self, id: JobId) {
        self.q.push_front(id);
        self.requeues += 1;
    }

    /// Takes the next job to place.
    pub fn pop(&mut self) -> Option<JobId> {
        self.q.pop_front()
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Times `requeue` was called over the run.
    pub fn requeue_count(&self) -> u64 {
        self.requeues
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_requeue_priority() {
        let mut q = JobQueue::new();
        q.submit(1);
        q.submit(2);
        assert_eq!(q.pop(), Some(1));
        q.requeue(1);
        assert_eq!(q.pop(), Some(1), "requeued work goes first");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.requeue_count(), 1);
    }
}
