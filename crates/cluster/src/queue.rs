//! The shared BE job queue: priority classes with EDF inside each class.
//!
//! Pop order is a total order over three keys:
//!
//! 1. **Priority class**, highest first (0 = lowest). With aging enabled,
//!    the *effective* class of a waiting job rises by one for every
//!    `aging_s` seconds spent in the queue, so the lowest class cannot
//!    starve under a continuous stream of high-priority arrivals.
//! 2. **Deadline** (earliest-deadline-first); jobs without a deadline
//!    sort after every dated job of their class.
//! 3. **Submission sequence**. Fresh submissions take increasing
//!    sequence numbers; requeued work (killed or withdrawn offers) takes
//!    *decreasing negative* ones — within a class this reproduces the
//!    classic FIFO-with-requeue-to-front order exactly: the job already
//!    waited its turn once, and resuming killed work first keeps the
//!    wasted-work metric from compounding with extra queueing delay.

// lint:snapshot-state — JobQueue / JobMeta / SeqSource are durable
// snapshot state (rule S01: no hash containers or raw-pointer fields).

use crate::job::JobId;
use std::collections::{BTreeMap, BTreeSet};

/// Sort key of one queued job. Order: lowest tuple pops first. The key
/// is globally comparable: a set of per-shard queues fed from one
/// [`SeqSource`] pops in exactly the order a single shared queue would
/// (the sharded runner's K-way merge relies on this).
pub type QueueKey = (u8, u64, i64, JobId);

/// A shared sequence counter pair for queues that must preserve one
/// global FIFO-with-requeue-to-front order across shards. Fresh
/// submissions draw increasing positive sequences; requeues draw
/// decreasing negative ones — exactly the numbering a single
/// [`JobQueue`] would assign internally, so K shard queues driven from
/// one `SeqSource` are order-equivalent to one global queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct SeqSource {
    next_back: i64,
    next_front: i64,
}

impl SeqSource {
    /// A fresh source (sequences start at 0 / -1).
    pub fn new() -> SeqSource {
        SeqSource::default()
    }

    /// The next back-of-queue (fresh submission) sequence.
    pub fn back(&mut self) -> i64 {
        let s = self.next_back;
        self.next_back += 1;
        s
    }

    /// The next front-of-queue (requeue) sequence.
    pub fn front(&mut self) -> i64 {
        self.next_front -= 1;
        self.next_front
    }
}

/// Per-job bookkeeping that survives pops (requeues reuse it).
#[derive(Clone, Copy, Debug)]
struct JobMeta {
    /// Base priority class (0 = lowest).
    priority: u8,
    /// Deadline in virtual seconds (`None` = best effort only).
    deadline_s: Option<f64>,
    /// First submission time — aging measures from here, so repeated
    /// kills keep accumulating seniority.
    enqueued_s: f64,
    /// Current sort key while queued (`None` after pop).
    key: Option<QueueKey>,
}

/// Deterministic shared queue of jobs awaiting placement.
#[derive(Clone, Debug, Default)]
pub struct JobQueue {
    // lint:allow(S02) -- derived: exactly the Some keys of meta; decode rebuilds it
    order: BTreeSet<QueueKey>,
    meta: BTreeMap<JobId, JobMeta>,
    next_back: i64,
    next_front: i64,
    requeues: u64,
    aging_s: Option<f64>,
}

impl JobQueue {
    /// An empty queue without aging.
    pub fn new() -> JobQueue {
        JobQueue::default()
    }

    /// An empty queue that promotes a waiting job by one priority class
    /// for every `aging_s` seconds spent queued (anti-starvation).
    pub fn with_aging(aging_s: f64) -> JobQueue {
        JobQueue {
            aging_s: (aging_s > 0.0).then_some(aging_s),
            ..JobQueue::default()
        }
    }

    /// Deadlines order by their bits: all deadlines are non-negative
    /// finite floats, whose IEEE-754 bit patterns sort like the values;
    /// `None` sorts after every dated job.
    fn deadline_bits(deadline_s: Option<f64>) -> u64 {
        match deadline_s {
            Some(d) => d.max(0.0).to_bits(),
            None => u64::MAX,
        }
    }

    /// The effective class of a job at `now_s`: base plus one per
    /// `aging_s` seconds waited. The key stores `u8::MAX - class` so the
    /// highest class sorts first.
    fn class_key(&self, m: &JobMeta, now_s: f64) -> u8 {
        let boost = match self.aging_s {
            Some(aging) if now_s > m.enqueued_s => ((now_s - m.enqueued_s) / aging) as u64,
            _ => 0,
        };
        u8::MAX - m.priority.saturating_add(boost.min(u8::MAX as u64) as u8)
    }

    fn insert(&mut self, id: JobId, mut m: JobMeta, seq: i64, now_s: f64) {
        let key = (
            self.class_key(&m, now_s),
            Self::deadline_bits(m.deadline_s),
            seq,
            id,
        );
        m.key = Some(key);
        self.order.insert(key);
        self.meta.insert(id, m);
    }

    /// Submits a fresh best-effort job (lowest class, no deadline) at
    /// t=0.
    pub fn submit(&mut self, id: JobId) {
        self.submit_with(id, 0, None, 0.0);
    }

    /// Submits a fresh job with its priority class and optional deadline
    /// at virtual time `now_s`.
    pub fn submit_with(&mut self, id: JobId, priority: u8, deadline_s: Option<f64>, now_s: f64) {
        let seq = self.next_back;
        self.next_back += 1;
        self.submit_with_seq(id, priority, deadline_s, now_s, seq);
    }

    /// [`JobQueue::submit_with`] with an externally assigned sequence
    /// (from a [`SeqSource`] shared across shard queues).
    pub fn submit_with_seq(
        &mut self,
        id: JobId,
        priority: u8,
        deadline_s: Option<f64>,
        now_s: f64,
        seq: i64,
    ) {
        let m = JobMeta {
            priority,
            deadline_s,
            enqueued_s: now_s,
            key: None,
        };
        self.insert(id, m, seq, now_s);
    }

    /// Registers scheduling attributes for `id` without queueing it, so
    /// a later [`JobQueue::requeue_at`] keeps the right class — e.g. a
    /// gang member promoted to queue representative after the original
    /// leader finished. A no-op when `id` already has metadata.
    pub fn adopt(&mut self, id: JobId, priority: u8, deadline_s: Option<f64>, enqueued_s: f64) {
        self.meta.entry(id).or_insert(JobMeta {
            priority,
            deadline_s,
            enqueued_s,
            key: None,
        });
    }

    /// Requeues killed or withdrawn work at virtual time `now_s`: the job
    /// keeps its class, deadline and original enqueue time (so aging
    /// seniority survives kills) and re-enters at the *front* of its
    /// class.
    pub fn requeue_at(&mut self, id: JobId, now_s: f64) {
        self.next_front -= 1;
        let seq = self.next_front;
        self.requeue_at_seq(id, now_s, seq);
    }

    /// [`JobQueue::requeue_at`] with an externally assigned front
    /// sequence (from a [`SeqSource`] shared across shard queues).
    pub fn requeue_at_seq(&mut self, id: JobId, now_s: f64, seq: i64) {
        let m = self.meta.get(&id).copied().unwrap_or(JobMeta {
            priority: 0,
            deadline_s: None,
            enqueued_s: now_s,
            key: None,
        });
        if let Some(key) = m.key {
            // Already queued (defensive; the runner never double-queues).
            debug_assert!(!self.order.contains(&key), "job {id} requeued while queued");
        }
        self.requeues += 1;
        self.insert(id, m, seq, now_s);
    }

    /// [`JobQueue::requeue_at`] at t=0 (kept for homogeneous callers and
    /// tests).
    pub fn requeue(&mut self, id: JobId) {
        self.requeue_at(id, 0.0);
    }

    /// Re-keys every waiting job against `now_s` so aging promotions take
    /// effect. A no-op without aging. Called once per epoch at the
    /// barrier — single-threaded, fixed iteration order, deterministic.
    pub fn age(&mut self, now_s: f64) {
        if self.aging_s.is_none() {
            return;
        }
        let queued: Vec<(JobId, QueueKey)> = self
            .meta
            .iter()
            .filter_map(|(&id, m)| m.key.map(|k| (id, k)))
            .collect();
        for (id, old_key) in queued {
            let m = self.meta[&id];
            let class = self.class_key(&m, now_s);
            if class != old_key.0 {
                self.order.remove(&old_key);
                let new_key = (class, old_key.1, old_key.2, old_key.3);
                self.order.insert(new_key);
                // PANIC: id came from a key in `order`, and `order` only
                // holds ids present in `meta`.
                self.meta.get_mut(&id).expect("meta exists").key = Some(new_key);
            }
        }
    }

    /// The sort key of the job [`JobQueue::pop`] would return, without
    /// removing it. Keys drawn from one [`SeqSource`] are comparable
    /// *across* queues, so a K-way merge over shard queue heads pops in
    /// exactly global order.
    pub fn peek_key(&self) -> Option<QueueKey> {
        self.order.iter().next().copied()
    }

    /// Takes the next job to place: highest effective class, earliest
    /// deadline within the class, front-of-class for requeued work.
    pub fn pop(&mut self) -> Option<JobId> {
        let key = *self.order.iter().next()?;
        self.order.remove(&key);
        let id = key.3;
        // PANIC: the popped key came from `order`, whose ids mirror `meta`.
        self.meta.get_mut(&id).expect("queued job has meta").key = None;
        Some(id)
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Times `requeue` was called over the run.
    pub fn requeue_count(&self) -> u64 {
        self.requeues
    }

    /// Ids of the waiting jobs, in pop order.
    pub fn queued_ids(&self) -> Vec<JobId> {
        self.order.iter().map(|k| k.3).collect()
    }
}

impl rhythm_snapshot::Snapshot for SeqSource {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.i64(self.next_back);
        w.i64(self.next_front);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let next_back = r.i64()?;
        let next_front = r.i64()?;
        // Backs only ever count up from 0, fronts only down from 0.
        if next_back < 0 || next_front > 0 {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                "sequence source out of range: back {next_back}, front {next_front}"
            )));
        }
        Ok(SeqSource {
            next_back,
            next_front,
        })
    }
}

impl rhythm_snapshot::Snapshot for JobMeta {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(self.priority);
        self.deadline_s.encode(w);
        w.f64(self.enqueued_s);
        self.key.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(JobMeta {
            priority: r.u8()?,
            deadline_s: rhythm_snapshot::Snapshot::decode(r)?,
            enqueued_s: r.f64()?,
            key: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

impl rhythm_snapshot::Snapshot for JobQueue {
    /// The `order` set is derived state (exactly the `Some` keys of
    /// `meta`), so only `meta` and the counters are written; decoding
    /// rebuilds `order`, which makes an inconsistent pair unrepresentable.
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.meta.encode(w);
        w.i64(self.next_back);
        w.i64(self.next_front);
        w.u64(self.requeues);
        self.aging_s.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let meta: BTreeMap<JobId, JobMeta> = rhythm_snapshot::Snapshot::decode(r)?;
        let next_back = r.i64()?;
        let next_front = r.i64()?;
        let requeues = r.u64()?;
        let aging_s: Option<f64> = rhythm_snapshot::Snapshot::decode(r)?;
        if aging_s.is_some_and(|a| !(a.is_finite() && a > 0.0)) {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "queue aging must be a positive finite interval".into(),
            ));
        }
        let mut order = BTreeSet::new();
        for (&id, m) in &meta {
            let Some(key) = m.key else { continue };
            if key.3 != id {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "queue key of job {id} names job {}",
                    key.3
                )));
            }
            order.insert(key);
        }
        Ok(JobQueue {
            order,
            meta,
            next_back,
            next_front,
            requeues,
            aging_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_with_requeue_priority() {
        let mut q = JobQueue::new();
        q.submit(1);
        q.submit(2);
        assert_eq!(q.pop(), Some(1));
        q.requeue(1);
        assert_eq!(q.pop(), Some(1), "requeued work goes first");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.requeue_count(), 1);
    }

    #[test]
    fn higher_class_pops_first() {
        let mut q = JobQueue::new();
        q.submit_with(1, 0, None, 0.0);
        q.submit_with(2, 2, None, 0.0);
        q.submit_with(3, 1, None, 0.0);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn edf_within_class() {
        let mut q = JobQueue::new();
        q.submit_with(1, 1, Some(300.0), 0.0);
        q.submit_with(2, 1, Some(100.0), 0.0);
        q.submit_with(3, 1, None, 0.0);
        q.submit_with(4, 1, Some(200.0), 0.0);
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3), "undated jobs go last in their class");
    }

    #[test]
    fn requeue_keeps_class_and_deadline() {
        let mut q = JobQueue::new();
        q.submit_with(1, 2, Some(50.0), 0.0);
        q.submit_with(2, 0, None, 0.0);
        assert_eq!(q.pop(), Some(1));
        q.requeue_at(1, 10.0);
        // Still outranks the class-0 job after the requeue.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn multiple_requeues_are_lifo_within_class() {
        let mut q = JobQueue::new();
        for id in 1..=3 {
            q.submit(id);
        }
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        q.requeue(a);
        q.requeue(b); // Requeued later -> in front of `a`.
        assert_eq!(q.pop(), Some(b));
        assert_eq!(q.pop(), Some(a));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn aging_promotes_waiting_low_class() {
        let mut q = JobQueue::with_aging(10.0);
        q.submit_with(1, 0, None, 0.0);
        q.submit_with(2, 2, None, 20.0);
        // At t=25 the class-0 job has waited 25 s -> +2 classes, tying
        // the fresh class-2 arrival; the tie breaks on the earlier
        // sequence, so the aged job finally goes.
        q.age(25.0);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn sharded_queues_pop_in_global_order() {
        // Two queues fed from one SeqSource must pop (via K-way merge on
        // peek_key) exactly like one shared queue, requeues included.
        let mut seq_a = SeqSource::new();
        let mut global = JobQueue::new();
        let mut shards = [JobQueue::new(), JobQueue::new()];
        let jobs: [(JobId, u8, Option<f64>); 5] = [
            (0, 0, None),
            (1, 2, Some(50.0)),
            (2, 0, Some(10.0)),
            (3, 1, None),
            (4, 2, Some(20.0)),
        ];
        for &(id, prio, dl) in &jobs {
            global.submit_with(id, prio, dl, 0.0);
            let s = seq_a.back();
            shards[id as usize % 2].submit_with_seq(id, prio, dl, 0.0, s);
        }
        // Requeue one job to the front of its class in both worlds.
        assert_eq!(global.pop(), Some(4));
        global.requeue_at(4, 1.0);
        let merged_pop = |shards: &mut [JobQueue; 2]| -> Option<JobId> {
            let head = (0..2)
                .filter_map(|s| shards[s].peek_key().map(|k| (k, s)))
                .min()?;
            shards[head.1].pop()
        };
        assert_eq!(merged_pop(&mut shards), Some(4));
        shards[0].requeue_at_seq(4, 1.0, seq_a.front());
        let mut expect = Vec::new();
        while let Some(id) = global.pop() {
            expect.push(id);
        }
        let mut got = Vec::new();
        while let Some(id) = merged_pop(&mut shards) {
            got.push(id);
        }
        assert_eq!(expect, got);
        assert_eq!(
            global.requeue_count(),
            shards[0].requeue_count() + shards[1].requeue_count()
        );
    }

    #[test]
    fn snapshot_round_trips_mid_stream_queue() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut q = JobQueue::with_aging(10.0);
        q.submit_with(1, 0, None, 0.0);
        q.submit_with(2, 2, Some(50.0), 0.0);
        q.submit_with(3, 1, None, 5.0);
        assert_eq!(q.pop(), Some(2)); // Popped job keeps meta, no key.
        q.requeue_at(2, 6.0);
        q.age(25.0);
        let enc = |q: &JobQueue| {
            let mut w = Writer::new();
            q.encode(&mut w);
            w.into_bytes()
        };
        let bytes = enc(&q);
        let mut back = JobQueue::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(enc(&back), bytes, "re-encode is canonical");
        assert_eq!(back.len(), q.len());
        assert_eq!(back.requeue_count(), q.requeue_count());
        assert_eq!(back.queued_ids(), q.queued_ids());
        // The restored queue continues identically.
        let mut orig = q;
        loop {
            let (a, b) = (orig.pop(), back.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_key_owner() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut q = JobQueue::new();
        q.submit(1);
        let mut w = Writer::new();
        q.encode(&mut w);
        let mut bytes = w.into_bytes();
        // meta is one entry: id u64 at the front of the map body; flip it
        // so the embedded QueueKey names a different job.
        bytes[8] = 9;
        let err = JobQueue::decode(&mut Reader::new(&bytes));
        assert!(matches!(err.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn seq_source_snapshot_round_trips_and_validates() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut s = SeqSource::new();
        s.back();
        s.back();
        s.front();
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut back = SeqSource::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.back(), 2);
        assert_eq!(back.front(), -2);
        let mut w = Writer::new();
        w.i64(-1); // negative back counter: impossible
        w.i64(0);
        let err = SeqSource::decode(&mut Reader::new(&w.into_bytes()));
        assert!(matches!(err.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn no_aging_without_flag() {
        let mut q = JobQueue::new();
        q.submit_with(1, 0, None, 0.0);
        q.submit_with(2, 1, None, 0.0);
        q.age(1e6);
        assert_eq!(q.pop(), Some(2));
    }
}
