//! The parallel epoch-barrier cluster runner, sharded for warehouse
//! scale.
//!
//! Replicas advance **independently** between controller ticks: nothing
//! couples two engines except the dispatcher, and the dispatcher only
//! acts on controller signals, which are emitted every 2 s of virtual
//! time. So the runner executes all engines up to the next epoch boundary
//! on a pool of crossbeam worker threads, then performs the cluster-level
//! bookkeeping (admission binding, kill/requeue, completion, placement)
//! in a **single-threaded merge in fixed machine order**. Every engine
//! owns independent splitmix-derived RNG streams and the merge never
//! observes scheduling order, so the result is bit-identical for any
//! worker-thread count — determinism is a property of the protocol, not
//! of luck.
//!
//! # Sharding
//!
//! Cluster state is partitioned into K replica-aligned shards
//! ([`ShardMap`]), each owning its slice of the job queue, outstanding
//! offers and instance→job bindings. The per-epoch hot path touches
//! shard-local state: eligibility and placement scores are computed once
//! per shard per dispatch pass (machines do not change state during a
//! pass, so scores are cacheable), a shard with no machine signalling
//! AllowBEGrowth is skipped outright, and shards with nothing queued
//! contribute nothing to the pop loop.
//!
//! Sharding **never changes decisions** — results are bit-identical for
//! any K, including K=1:
//!
//! * All shard queues draw sequence numbers from one shared
//!   [`SeqSource`], so their [`QueueKey`]s are exactly the keys a single
//!   global queue would assign; a K-way merge over the shard heads pops
//!   in exactly global order.
//! * Placement considers every shard's cached ranking and takes the
//!   global argmin with the same tie-break as the unsharded placer
//!   (strictly-smaller score wins, ties keep the lowest global index).
//! * Shards are contiguous and replica-aligned, so the merge's
//!   shard-major iteration *is* the old replica-major iteration.
//!
//! A job whose global argmin lands outside its home shard (`id % K`) is
//! *stolen* by the destination shard: the placement is identical to the
//! unsharded one, the steal is pure bookkeeping ([`ShardingReport`], a
//! `ShardSteal` telemetry event tagged with the destination shard).
//!
//! Epoch protocol (epoch = controller period, paper: 2 s):
//!
//! 1. *Dispatch* — withdraw offers no controller consumed (forming-gang
//!    offers persist), then offer queued jobs to machines signalling
//!    AllowBEGrowth, one per machine, placed by the configured policy. A
//!    gang needs one eligible machine per live member or it goes back to
//!    the queue untouched (all-or-nothing).
//! 2. *Run* — every engine processes events up to the epoch end in
//!    parallel (the controller tick at the boundary is included), then
//!    syncs its own BE progress to the boundary — still inside the
//!    parallel phase, since progress accrual is engine-local.
//! 3. *Merge* — in shard-major (= replica) order bind admissions to
//!    their offered jobs, roll killed jobs back to their checkpoint and
//!    requeue them, and retire jobs whose progress reached 1.0. A gang
//!    lifecycle pass follows: gangs whose members all run are *formed*;
//!    a killed member — or patience running out while forming — aborts
//!    the whole gang, rolling every running member back to its
//!    checkpoint and requeueing the gang.
//!
//! [`QueueKey`]: crate::queue::QueueKey

use crate::fault::{ChaosState, FaultKind, FaultPlan};
use crate::job::{ClusterJob, JobId, JobState};
use crate::metrics::{
    machine_fingerprints, ClusterMetrics, ClusterOutcome, ClusterTelemetry, ShardingReport,
};
use crate::placement::{PlacementPolicy, Placer};
use crate::queue::{JobQueue, SeqSource};
use crate::snapshot::{ClusterSnapshot, GangState, SchedulerState, ShardState};
use crate::state::{global_index, machine_ref, replica_seed, ClusterConfig, ShardMap};
use crossbeam::queue::SegQueue;
use rhythm_controller::BeAction;
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_core::metrics::RunMetrics;
use rhythm_core::runtime::Engine;
use rhythm_machine::machine::BeInstanceId;
use rhythm_sim::{LatencyHistogram, SimDuration, SimTime};
use rhythm_snapshot::{Reader, SnapshotError, Writer};
use rhythm_telemetry::{ClusterEvent, ClusterEventKind, TailPoint};
use rhythm_workloads::BeSpec;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A sense-reversing spin barrier for the epoch boundary.
///
/// Epochs are microseconds of work, so parking workers in the kernel at
/// every boundary (as `std::sync::Barrier` does) costs more than the
/// epoch itself. Arrivals spin briefly and fall back to `yield_now` so
/// an oversubscribed host still makes progress.
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset and release the cohort. Nobody can
            // re-enter `wait` until the generation advances, so the
            // relaxed reset cannot race a new arrival.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 256 {
                    std::hint::spin_loop();
                } else {
                    // Short spin budget: on an oversubscribed (or
                    // single-core) host the peer needs this CPU to make
                    // the progress we are waiting for.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Lifecycle bookkeeping for one gang-scheduled job.
#[derive(Clone, Debug)]
struct GangTracker {
    /// Member job ids, in submission order (the first live member acts
    /// as the gang's representative in the queue).
    members: Vec<JobId>,
    /// Epochs left before a forming gang gives up and requeues.
    patience_left: u32,
    /// Offers are out but not every live member runs yet.
    forming: bool,
}

/// One shard's per-pass placement ranking for one job spec: `(score,
/// global)` ascending, ties ascending by global index — exactly the
/// order the unsharded argmin would visit minima in. Machine state is
/// constant during a dispatch pass (offers apply after the pop loop, a
/// claimed machine is merely excluded), so scores computed once per pass
/// are exact, collapsing the old O(jobs × machines) rescoring to
/// O(specs × machines log machines) per epoch.
struct Ranked {
    order: Vec<(f64, usize)>,
    /// Entries before this are taken; the head is this shard's current
    /// best offer for the spec.
    cursor: usize,
}

/// One scheduler shard: a contiguous replica-aligned slice of the
/// cluster with its own queue, offers, bindings and per-pass placement
/// cache. All mutation happens at the epoch barrier (single-threaded,
/// fixed shard-major order).
struct Shard {
    /// Global machine range this shard owns.
    globals: std::ops::Range<usize>,
    /// This shard's slice of the job backlog (keys drawn from the shared
    /// [`SeqSource`], so heads are comparable across shards).
    queue: JobQueue,
    /// Outstanding offer per machine, indexed by `global - globals.start`.
    offered: Vec<Option<JobId>>,
    /// (global machine, instance) → job currently running there.
    bindings: BTreeMap<(usize, BeInstanceId), JobId>,
    /// Scratch: machines eligible for new work this dispatch pass
    /// (AllowBEGrowth, no outstanding offer), ascending global order.
    eligible: Vec<usize>,
    /// Scratch: per-spec rankings this dispatch pass (key `""` holds the
    /// job-independent LeastPressure ranking).
    ranked: BTreeMap<String, Ranked>,
}

impl Shard {
    fn offer_slot(&mut self, g: usize) -> &mut Option<JobId> {
        &mut self.offered[g - self.globals.start]
    }
}

/// All cluster-level scheduling state: the job ledger, the sharded
/// queues/offers/bindings, the placer and gang trackers. Mutated only at
/// the epoch barrier (single-threaded, fixed iteration order), so every
/// decision is deterministic — and, by construction, identical for any
/// shard count.
struct Scheduler<'c> {
    cfg: &'c ClusterConfig,
    pods: usize,
    map: ShardMap,
    jobs: Vec<ClusterJob>,
    shards: Vec<Shard>,
    /// Shared sequence counter: keeps shard queue keys globally ordered.
    seq: SeqSource,
    placer: Placer,
    catalog: BTreeMap<String, BeSpec>,
    /// Gang id → tracker, for every gang entry of the plan.
    gangs: BTreeMap<u32, GangTracker>,
    /// The normalized fault schedule (empty when no chaos is
    /// configured; never mutated after construction).
    plan: FaultPlan,
    /// Dynamic fault state: plan cursor + the set of down machines.
    chaos: ChaosState,
    /// Scheduler events (gang lifecycle, deadline misses, steals),
    /// emission order. Only populated when telemetry is enabled.
    events: Vec<ClusterEvent>,
    /// Jobs placed outside their home shard.
    steals: u64,
    /// Dispatch passes in which ≥ 1 shard was skipped (no eligible
    /// machines).
    fast_path_epochs: u64,
    /// Normalized machine capacity per global index (pure function of
    /// the machine spec; filled on first dispatch).
    caps: Vec<f64>,
    /// Scratch, reused across passes: machines claimed this pass…
    taken: Vec<bool>,
    /// …and which entries of `taken` to reset next pass.
    touched: Vec<usize>,
    /// Scratch: eligible globals for the round-robin rotation.
    rr: BTreeSet<usize>,
    /// Scratch: (machine, member) assignments of the current pass.
    assignments: Vec<(usize, JobId)>,
    /// Scratch: machines chosen for the current gang.
    chosen: Vec<usize>,
    /// Scratch: capacities of already-chosen gang siblings.
    peer_caps: Vec<f64>,
}

impl<'c> Scheduler<'c> {
    /// Builds the job ledger from the config's effective plan (gang
    /// entries expand to their instance count) and queues the work on
    /// each job's home shard: solitary jobs directly, gangs through
    /// their first member.
    fn new(cfg: &'c ClusterConfig, pods: usize, map: ShardMap, managed: bool) -> Scheduler<'c> {
        let mut jobs: Vec<ClusterJob> = Vec::new();
        let mut gangs = BTreeMap::new();
        for (entry, spec) in cfg.effective_plan().iter().enumerate() {
            let k = spec.gang.max(1);
            let gang_id = (k > 1).then_some(entry as u32);
            let mut members = Vec::with_capacity(k as usize);
            for _ in 0..k {
                let id = jobs.len() as JobId;
                let mut j = ClusterJob::new(id, Arc::new(spec.spec.clone()), 0.0);
                j.priority = spec.priority;
                j.deadline_s = spec.deadline_s;
                j.gang = gang_id;
                members.push(id);
                jobs.push(j);
            }
            if let Some(gid) = gang_id {
                gangs.insert(
                    gid,
                    GangTracker {
                        members,
                        patience_left: cfg.gang_patience_epochs.max(1),
                        forming: false,
                    },
                );
            }
        }
        let mut shards: Vec<Shard> = (0..map.count())
            .map(|s| {
                let globals = map.global_range(s);
                Shard {
                    offered: vec![None; globals.len()],
                    globals,
                    queue: match cfg.queue_aging_s {
                        Some(aging) => JobQueue::with_aging(aging),
                        None => JobQueue::new(),
                    },
                    bindings: BTreeMap::new(),
                    eligible: Vec::new(),
                    ranked: BTreeMap::new(),
                }
            })
            .collect();
        let mut seq = SeqSource::new();
        if managed {
            for j in &jobs {
                let leads_gang = match j.gang {
                    // One queue entry per gang: its first member.
                    Some(gid) => gangs[&gid].members[0] == j.id,
                    None => true,
                };
                if leads_gang {
                    let s = seq.back();
                    shards[map.home_shard(j.id)].queue.submit_with_seq(
                        j.id,
                        j.priority,
                        j.deadline_s,
                        0.0,
                        s,
                    );
                }
            }
        }
        Scheduler {
            cfg,
            pods,
            map,
            taken: vec![false; cfg.machines],
            jobs,
            shards,
            seq,
            placer: Placer::new(
                cfg.policy,
                rhythm_interference::InterferenceModel::calibrated(),
            ),
            catalog: cfg.catalog(),
            gangs,
            plan: {
                let mut plan = cfg.faults.clone();
                plan.normalize();
                plan
            },
            chaos: ChaosState::default(),
            events: Vec::new(),
            steals: 0,
            fast_path_epochs: 0,
            caps: Vec::new(),
            touched: Vec::new(),
            rr: BTreeSet::new(),
            assignments: Vec::new(),
            chosen: Vec::new(),
            peer_caps: Vec::new(),
        }
    }

    /// Member ids of gang `gid` that have not finished.
    fn live_members(&self, gid: u32) -> Vec<JobId> {
        self.gangs[&gid]
            .members
            .iter()
            .copied()
            .filter(|&m| self.jobs[m as usize].state != JobState::Done)
            .collect()
    }

    /// Marks `jid` finished, recording a deadline-miss event if it
    /// completed past its deadline.
    fn complete(&mut self, jid: JobId, now_s: f64) {
        self.jobs[jid as usize].on_complete(now_s);
        let job = &self.jobs[jid as usize];
        if self.cfg.telemetry.enabled && job.deadline_missed_at(now_s) {
            self.events.push(ClusterEvent {
                t_s: now_s,
                kind: ClusterEventKind::DeadlineMiss,
                job: jid,
                gang: job.gang,
                shard: None,
            });
        }
    }

    /// Requeues `jid` at the front of its class on its home shard.
    fn requeue_home(&mut self, jid: JobId, now_s: f64) {
        let seq = self.seq.front();
        self.shards[self.map.home_shard(jid)]
            .queue
            .requeue_at_seq(jid, now_s, seq);
    }

    /// Applies every fault-plan event due at this barrier, in plan
    /// order. Runs single-threaded at the top of the epoch (before
    /// dispatch), so fault application is as deterministic as every
    /// other barrier mutation: same plan + same seed → same outcome
    /// for any shard count and any worker-thread count.
    fn apply_faults(&mut self, engines: &mut [MutexGuard<'_, Engine>], now_s: f64) {
        while (self.chaos.applied as usize) < self.plan.events.len() {
            let ev = &self.plan.events[self.chaos.applied as usize];
            if ev.at_s > now_s {
                break;
            }
            let idx = self.chaos.applied;
            let kind = ev.kind.clone();
            self.chaos.applied += 1;
            if self.cfg.telemetry.enabled {
                self.events.push(ClusterEvent {
                    t_s: now_s,
                    kind: ClusterEventKind::FaultInjected,
                    job: idx,
                    gang: None,
                    shard: None,
                });
            }
            match kind {
                FaultKind::MachineCrash { machine } => {
                    self.crash_machine(machine as usize, engines, now_s);
                }
                FaultKind::MachineRecover { machine } => {
                    self.recover_machine(machine as usize, engines, now_s);
                }
                FaultKind::SlowNode { machine, factor } => {
                    let r = machine_ref(machine as usize, self.pods);
                    let target = (factor * engines[r.replica].lc_max_mhz(r.pod) as f64) as u32;
                    engines[r.replica].set_lc_frequency(r.pod, target);
                }
                FaultKind::CorrelatedFailure { group } => {
                    for m in group {
                        self.crash_machine(m as usize, engines, now_s);
                    }
                }
            }
        }
    }

    /// Takes machine `g` out of the cluster: withdraws its outstanding
    /// offer, kills every bound BE instance through the ordinary
    /// checkpoint-rollback-requeue path (a killed gang member aborts
    /// its gang atomically) and adds the machine to the down set, which
    /// blocks dispatch eligibility until recovery. The LC service is
    /// modeled as failing over invisibly — the cost of a crash is lost
    /// batch work plus redistribution pressure on the survivors.
    fn crash_machine(&mut self, g: usize, engines: &mut [MutexGuard<'_, Engine>], now_s: f64) {
        if !self.chaos.down.insert(g as u64) {
            return; // already down
        }
        let si = self.map.shard_of_global(g);
        let r = machine_ref(g, self.pods);
        if let Some(jid) = self.shards[si].offer_slot(g).take() {
            engines[r.replica].set_be_offer(r.pod, None);
            self.jobs[jid as usize].state = JobState::Queued;
            // A solitary job goes straight back to its queue; a forming
            // gang keeps waiting on its patience budget and the gang
            // pass aborts (and requeues) it when that runs out.
            if self.jobs[jid as usize].gang.is_none() {
                self.requeue_home(jid, now_s);
            }
        }
        let range = (g, BeInstanceId::MIN)..(g + 1, BeInstanceId::MIN);
        let bound: Vec<(BeInstanceId, JobId)> = self.shards[si]
            .bindings
            .range(range)
            .map(|(&(_, inst), &jid)| (inst, jid))
            .collect();
        let mut dirty_gangs: BTreeSet<u32> = BTreeSet::new();
        for (inst, jid) in bound {
            // Progress was synced to the boundary before the barrier,
            // so the rollback banks exactly what ran.
            let progress = engines[r.replica].be_progress(r.pod, inst).unwrap_or(0.0);
            engines[r.replica].remove_be(r.pod, inst);
            self.shards[si].bindings.remove(&(g, inst));
            if self.jobs[jid as usize].total_progress(progress) >= 1.0 {
                self.complete(jid, now_s);
            } else {
                let job = &mut self.jobs[jid as usize];
                job.on_kill(progress, self.cfg.checkpoint_fraction);
                match job.gang {
                    Some(gid) => {
                        dirty_gangs.insert(gid);
                    }
                    None => self.requeue_home(jid, now_s),
                }
            }
        }
        for gid in dirty_gangs {
            self.abort_gang(gid, engines, now_s);
        }
        if self.cfg.telemetry.enabled {
            self.events.push(ClusterEvent {
                t_s: now_s,
                kind: ClusterEventKind::MachineDown,
                job: g as u64,
                gang: None,
                shard: Some(si as u32),
            });
        }
    }

    /// Brings machine `g` back: removes it from the down set and
    /// restores its LC frequency to the ceiling (clearing straggler
    /// state), making it eligible for offers at this same barrier.
    fn recover_machine(&mut self, g: usize, engines: &mut [MutexGuard<'_, Engine>], now_s: f64) {
        self.chaos.down.remove(&(g as u64));
        let r = machine_ref(g, self.pods);
        let max = engines[r.replica].lc_max_mhz(r.pod);
        engines[r.replica].set_lc_frequency(r.pod, max);
        if self.cfg.telemetry.enabled {
            self.events.push(ClusterEvent {
                t_s: now_s,
                kind: ClusterEventKind::MachineUp,
                job: g as u64,
                gang: None,
                shard: Some(self.map.shard_of_global(g) as u32),
            });
        }
    }

    /// Epoch step 1: withdraw unconsumed solitary offers, then place
    /// queued jobs on machines signalling AllowBEGrowth (one offer per
    /// machine per epoch; a gang claims one machine per live member,
    /// all-or-nothing).
    ///
    /// Runs on the main thread while the workers are parked at the epoch
    /// barrier, so the engine locks are uncontended.
    fn dispatch(&mut self, engines: &mut [MutexGuard<'_, Engine>], now_s: f64) {
        for sh in &mut self.shards {
            sh.queue.age(now_s);
        }
        // Withdraw offers the controllers did not consume last epoch, in
        // reverse global order so the requeue-to-front restores the
        // original relative order. Offers of forming gangs stay out —
        // their patience counter bounds the wait instead.
        for si in (0..self.shards.len()).rev() {
            let lo = self.shards[si].globals.start;
            for slot in (0..self.shards[si].offered.len()).rev() {
                let Some(jid) = self.shards[si].offered[slot] else {
                    continue;
                };
                if self.jobs[jid as usize].gang.is_some() {
                    continue;
                }
                self.shards[si].offered[slot] = None;
                let r = machine_ref(lo + slot, self.pods);
                engines[r.replica].set_be_offer(r.pod, None);
                self.jobs[jid as usize].state = JobState::Queued;
                self.requeue_home(jid, now_s);
            }
        }
        // Capacity is a pure function of the machine spec: fill the
        // cache once and never touch `Machine` for it again.
        if self.caps.is_empty() {
            self.caps = (0..self.cfg.machines)
                .map(|g| {
                    let r = machine_ref(g, self.pods);
                    Placer::capacity(engines[r.replica].machine(r.pod))
                })
                .collect();
        }
        // Eligibility, once per pass per shard. Offers and controller
        // signals do not change inside a pass, so this — and every score
        // derived from it — stays valid until the pass ends. A shard
        // with nothing eligible is skipped by every lookup below.
        let mut any_skipped = false;
        for sh in &mut self.shards {
            sh.eligible.clear();
            sh.ranked.clear();
            for g in sh.globals.clone() {
                if sh.offered[g - sh.globals.start].is_none()
                    && (self.chaos.down.is_empty() || !self.chaos.down.contains(&(g as u64)))
                    && allows_growth(engines, g, self.pods)
                {
                    sh.eligible.push(g);
                }
            }
            any_skipped |= sh.eligible.is_empty();
        }
        if any_skipped {
            self.fast_path_epochs += 1;
        }
        let rr_policy = self.placer.policy() == PlacementPolicy::RoundRobin;
        self.rr.clear();
        if rr_policy {
            for sh in &self.shards {
                self.rr.extend(sh.eligible.iter().copied());
            }
        }
        let mut rr_cursor = self.placer.cursor();
        for &g in &self.touched {
            self.taken[g] = false;
        }
        self.touched.clear();
        let mut assignments = std::mem::take(&mut self.assignments);
        let mut chosen = std::mem::take(&mut self.chosen);
        let mut peer_caps = std::mem::take(&mut self.peer_caps);
        assignments.clear();
        // Pop queued work in global key order (K-way merge over the
        // shard heads) while eligible machines remain.
        while let Some(home) = (0..self.shards.len())
            .filter_map(|s| self.shards[s].queue.peek_key().map(|k| (k, s)))
            .min()
            .map(|(_, s)| s)
        {
            // PANIC: `home` was selected because its peek returned Some,
            // and nothing popped between the peek and here.
            let jid = self.shards[home].queue.pop().expect("peeked head pops");
            let members: Vec<JobId> = match self.jobs[jid as usize].gang {
                Some(gid) => self.live_members(gid),
                None => vec![jid],
            };
            let spec = Arc::clone(&self.jobs[jid as usize].spec);
            chosen.clear();
            peer_caps.clear();
            for _ in 0..members.len() {
                let pick = if rr_policy {
                    // First eligible machine at or after the cursor,
                    // wrapping — the unsharded rotation exactly.
                    let p = self
                        .rr
                        .range(rr_cursor..)
                        .next()
                        .copied()
                        .or_else(|| self.rr.iter().next().copied());
                    if let Some(g) = p {
                        self.rr.remove(&g);
                        rr_cursor = g + 1;
                    }
                    p
                } else {
                    pick_scored(
                        &mut self.shards,
                        &self.placer,
                        &spec,
                        &peer_caps,
                        &self.taken,
                        &self.caps,
                        &self.catalog,
                        engines,
                        self.pods,
                    )
                };
                match pick {
                    Some(g) => {
                        self.taken[g] = true;
                        self.touched.push(g);
                        peer_caps.push(self.caps[g]);
                        chosen.push(g);
                    }
                    None => break,
                }
            }
            if chosen.len() < members.len() {
                // Not enough eligible machines this epoch (for a gang:
                // all-or-nothing); release any partial claim and put the
                // job back at the front of its class.
                for &g in &chosen {
                    self.taken[g] = false;
                }
                self.requeue_home(jid, now_s);
                break;
            }
            for (&g, &m) in chosen.iter().zip(&members) {
                assignments.push((g, m));
            }
            if let Some(gid) = self.jobs[jid as usize].gang {
                // PANIC: every gang id is registered in `gangs` at submission.
                let tracker = self.gangs.get_mut(&gid).expect("gang tracked");
                tracker.forming = true;
                tracker.patience_left = self.cfg.gang_patience_epochs.max(1);
            }
        }
        self.placer.set_cursor(rr_cursor);
        for &(g, jid) in &assignments {
            let dest = self.map.shard_of_global(g);
            *self.shards[dest].offer_slot(g) = Some(jid);
            self.jobs[jid as usize].state = JobState::Offered(g);
            let spec = Arc::clone(&self.jobs[jid as usize].spec);
            let priority = self.jobs[jid as usize].priority;
            let r = machine_ref(g, self.pods);
            engines[r.replica].set_be_offer_prio(r.pod, Some((spec, priority)));
            if dest != self.map.home_shard(jid) {
                // Placed outside its home shard: identical decision to
                // the unsharded argmin, recorded as a steal.
                self.steals += 1;
                if self.cfg.telemetry.enabled {
                    self.events.push(ClusterEvent {
                        t_s: now_s,
                        kind: ClusterEventKind::ShardSteal,
                        job: jid,
                        gang: self.jobs[jid as usize].gang,
                        shard: Some(dest as u32),
                    });
                }
            }
        }
        self.assignments = assignments;
        self.chosen = chosen;
        self.peer_caps = peer_caps;
    }

    /// Epoch step 3: the deterministic merge at the barrier. Every
    /// engine's BE progress was already synced to the boundary by the
    /// worker that ran it (engine-local work), so reading or mutating BE
    /// state — including the cross-replica gang rollback — cannot
    /// mis-attribute any fraction of the tick.
    fn merge(&mut self, engines: &mut [MutexGuard<'_, Engine>], now: SimTime) {
        let now_s = now.as_secs_f64();
        let mut dirty_gangs: BTreeSet<u32> = BTreeSet::new();
        // Shard-major, replicas ascending within each shard — shards are
        // contiguous and replica-aligned, so this is exactly the old
        // replica-major order.
        for si in 0..self.shards.len() {
            for r in self.map.replica_range(si) {
                let engine = &mut engines[r];
                // Admissions: bind each new instance to the job offered
                // to its machine.
                for adm in engine.take_be_admissions() {
                    let g = global_index(r, adm.machine, self.pods);
                    if let Some(jid) = self.shards[si].offer_slot(g).take() {
                        self.shards[si].bindings.insert((g, adm.instance), jid);
                        self.jobs[jid as usize].state = JobState::Running(g);
                        engine.set_be_offer(adm.machine, None);
                    }
                }
                // Kills: roll back to the checkpoint and requeue — unless
                // the instance had in fact already finished the job by
                // kill time. A killed gang member marks its gang for the
                // abort pass.
                for kill in engine.take_be_kills() {
                    let g = global_index(r, kill.machine, self.pods);
                    if let Some(jid) = self.shards[si].bindings.remove(&(g, kill.instance)) {
                        if self.jobs[jid as usize].total_progress(kill.progress) >= 1.0 {
                            self.complete(jid, now_s);
                        } else {
                            let job = &mut self.jobs[jid as usize];
                            job.on_kill(kill.progress, self.cfg.checkpoint_fraction);
                            match job.gang {
                                Some(gid) => {
                                    dirty_gangs.insert(gid);
                                }
                                None => self.requeue_home(jid, now_s),
                            }
                        }
                    }
                }
                // Completions: retire bound instances whose job reached
                // 1.0.
                let lo = (global_index(r, 0, self.pods), BeInstanceId::MIN);
                let hi = (global_index(r + 1, 0, self.pods), BeInstanceId::MIN);
                let bound: Vec<(usize, BeInstanceId, JobId)> = self.shards[si]
                    .bindings
                    .range(lo..hi)
                    .map(|(&(g, inst), &jid)| (g, inst, jid))
                    .collect();
                for (g, inst, jid) in bound {
                    let pod = machine_ref(g, self.pods).pod;
                    let done = engine.be_progress(pod, inst).unwrap_or(0.0);
                    if self.jobs[jid as usize].total_progress(done) >= 1.0 {
                        engine.remove_be(pod, inst);
                        self.complete(jid, now_s);
                        self.shards[si].bindings.remove(&(g, inst));
                    }
                }
            }
        }
        self.gang_pass(engines, &dirty_gangs, now_s);
    }

    /// The gang lifecycle pass, in gang-id order: aborts gangs with a
    /// killed member, marks gangs whose live members all run as formed,
    /// and counts down (then aborts) the patience of still-forming ones.
    fn gang_pass(
        &mut self,
        engines: &mut [MutexGuard<'_, Engine>],
        dirty: &BTreeSet<u32>,
        now_s: f64,
    ) {
        let gids: Vec<u32> = self.gangs.keys().copied().collect();
        for gid in gids {
            if dirty.contains(&gid) {
                self.abort_gang(gid, engines, now_s);
                continue;
            }
            if !self.gangs[&gid].forming {
                continue;
            }
            let live = self.live_members(gid);
            if live
                .iter()
                .all(|&m| matches!(self.jobs[m as usize].state, JobState::Running(_)))
            {
                // PANIC: every gang id is registered in `gangs` at submission.
                self.gangs.get_mut(&gid).expect("gang tracked").forming = false;
                if self.cfg.telemetry.enabled {
                    self.events.push(ClusterEvent {
                        t_s: now_s,
                        kind: ClusterEventKind::GangFormed,
                        job: live.first().copied().unwrap_or_default(),
                        gang: Some(gid),
                        shard: None,
                    });
                }
            } else {
                // PANIC: every gang id is registered in `gangs` at submission.
                let tracker = self.gangs.get_mut(&gid).expect("gang tracked");
                tracker.patience_left = tracker.patience_left.saturating_sub(1);
                if tracker.patience_left == 0 {
                    self.abort_gang(gid, engines, now_s);
                }
            }
        }
    }

    /// Atomically rolls gang `gid` back: withdraws its outstanding
    /// offers, kills its running members (progress rolls back to the
    /// last checkpoint; the loss counts as wasted work) and requeues the
    /// gang through its first live member.
    fn abort_gang(&mut self, gid: u32, engines: &mut [MutexGuard<'_, Engine>], now_s: f64) {
        let live = self.live_members(gid);
        for &m in &live {
            match self.jobs[m as usize].state {
                JobState::Offered(g) => {
                    let si = self.map.shard_of_global(g);
                    *self.shards[si].offer_slot(g) = None;
                    let r = machine_ref(g, self.pods);
                    engines[r.replica].set_be_offer(r.pod, None);
                    self.jobs[m as usize].state = JobState::Queued;
                }
                JobState::Running(g) => {
                    let si = self.map.shard_of_global(g);
                    let range = (g, BeInstanceId::MIN)..(g + 1, BeInstanceId::MIN);
                    let inst = self.shards[si]
                        .bindings
                        .range(range)
                        .find(|&(_, &jid)| jid == m)
                        .map(|(&(_, inst), _)| inst);
                    if let Some(inst) = inst {
                        let r = machine_ref(g, self.pods);
                        // Progress was synced for all engines before the
                        // merge, so the rollback banks exactly what ran.
                        let progress = engines[r.replica].be_progress(r.pod, inst).unwrap_or(0.0);
                        engines[r.replica].remove_be(r.pod, inst);
                        self.shards[si].bindings.remove(&(g, inst));
                        self.jobs[m as usize].on_kill(progress, self.cfg.checkpoint_fraction);
                    }
                }
                JobState::Queued | JobState::Done => {}
            }
        }
        // PANIC: every gang id is registered in `gangs` at submission.
        let tracker = self.gangs.get_mut(&gid).expect("gang tracked");
        tracker.forming = false;
        tracker.patience_left = self.cfg.gang_patience_epochs.max(1);
        if let Some(&leader) = live.first() {
            // The original leader may have finished; make sure the new
            // representative carries the gang's class and deadline into
            // the queue.
            let job = &self.jobs[leader as usize];
            let (priority, deadline_s, submitted_s) = (job.priority, job.deadline_s, job.submitted_s);
            self.shards[self.map.home_shard(leader)]
                .queue
                .adopt(leader, priority, deadline_s, submitted_s);
            self.requeue_home(leader, now_s);
            if self.cfg.telemetry.enabled {
                self.events.push(ClusterEvent {
                    t_s: now_s,
                    kind: ClusterEventKind::GangAborted,
                    job: leader,
                    gang: Some(gid),
                    shard: None,
                });
            }
        }
    }

    /// Queue requeues summed over shards (one shared [`SeqSource`], so
    /// the sum equals the single-queue count).
    fn requeues(&self) -> u64 {
        self.shards.iter().map(|s| s.queue.requeue_count()).sum()
    }

    /// Exports the scheduler's dynamic state. Caches (`caps`, rankings,
    /// pass scratch) are excluded: they are pure functions of machine
    /// state and are rebuilt at the start of the next dispatch pass.
    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            jobs: self.jobs.clone(),
            shards: self
                .shards
                .iter()
                .map(|sh| ShardState {
                    queue: sh.queue.clone(),
                    offered: sh.offered.clone(),
                    bindings: sh
                        .bindings
                        .iter()
                        .map(|(&(g, inst), &jid)| ((g as u64, inst), jid))
                        .collect(),
                })
                .collect(),
            seq: self.seq,
            rr_cursor: self.placer.cursor() as u64,
            gangs: self
                .gangs
                .iter()
                .map(|(&gid, t)| {
                    let gs = GangState {
                        members: t.members.clone(),
                        patience_left: t.patience_left,
                        forming: t.forming,
                    };
                    (gid, gs)
                })
                .collect(),
            events: self.events.clone(),
            steals: self.steals,
            fast_path_epochs: self.fast_path_epochs,
        }
    }

    /// Replays captured dynamic state into a freshly built scheduler.
    /// The plan-derived structure (job ledger shape, shard layout, gang
    /// roster) must match what `Scheduler::new` built from the config;
    /// state that contradicts it is refused rather than applied.
    fn restore_state(&mut self, st: &SchedulerState) -> Result<(), SnapshotError> {
        if st.jobs.len() != self.jobs.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot ledgers {} jobs, the config's plan produces {}",
                st.jobs.len(),
                self.jobs.len()
            )));
        }
        for (snap, plan) in st.jobs.iter().zip(&self.jobs) {
            if snap.spec.name != plan.spec.name || snap.gang != plan.gang {
                return Err(SnapshotError::Corrupt(format!(
                    "job {} is {:?} (gang {:?}) in the snapshot but {:?} (gang {:?}) in the plan",
                    plan.id, snap.spec.name, snap.gang, plan.spec.name, plan.gang
                )));
            }
        }
        if st.shards.len() != self.shards.len() {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot carries {} shard states, the runner built {}",
                st.shards.len(),
                self.shards.len()
            )));
        }
        let gangs_match = st.gangs.len() == self.gangs.len()
            && st
                .gangs
                .iter()
                .zip(&self.gangs)
                .all(|((ga, a), (gb, b))| ga == gb && a.members == b.members);
        if !gangs_match {
            return Err(SnapshotError::Corrupt(
                "snapshot gang roster differs from the config's job plan".into(),
            ));
        }
        for (si, (sh, shs)) in self.shards.iter_mut().zip(&st.shards).enumerate() {
            if shs.offered.len() != sh.offered.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "shard {si} offers cover {} machines, its layout has {}",
                    shs.offered.len(),
                    sh.offered.len()
                )));
            }
            for &(g, _inst) in shs.bindings.keys() {
                if !sh.globals.contains(&(g as usize)) {
                    return Err(SnapshotError::Corrupt(format!(
                        "shard {si} binds machine {g}, outside its global range"
                    )));
                }
            }
        }
        for (sh, shs) in self.shards.iter_mut().zip(&st.shards) {
            sh.queue = shs.queue.clone();
            sh.offered = shs.offered.clone();
            sh.bindings = shs
                .bindings
                .iter()
                .map(|(&(g, inst), &jid)| ((g as usize, inst), jid))
                .collect();
        }
        self.jobs = st.jobs.clone();
        self.seq = st.seq;
        self.placer.set_cursor(st.rr_cursor as usize);
        for (gid, gs) in &st.gangs {
            // PANIC: restore_state validated st.gangs against the roster.
            let t = self.gangs.get_mut(gid).expect("gang roster verified above");
            t.patience_left = gs.patience_left;
            t.forming = gs.forming;
        }
        self.events = st.events.clone();
        self.steals = st.steals;
        self.fast_path_epochs = st.fast_path_epochs;
        Ok(())
    }

    /// Captures a full cluster snapshot at the epoch barrier: `epoch`
    /// epochs are complete, every engine is quiescent at virtual time
    /// `now` (the merge has run and all guards are held), and the next
    /// dispatch pass has not started.
    fn capture(
        &self,
        engines: &[MutexGuard<'_, Engine>],
        epoch: u32,
        now: SimTime,
        cluster_tail: &[TailPoint],
        managed: bool,
    ) -> ClusterSnapshot {
        ClusterSnapshot {
            epoch,
            t_ns: now.as_nanos(),
            machines: self.cfg.machines as u64,
            pods: self.pods as u64,
            replicas: engines.len() as u64,
            shards: self.map.count() as u64,
            seed: self.cfg.seed,
            duration_s: self.cfg.duration_s,
            controller_period_ms: self.cfg.controller_period_ms,
            managed,
            scheduler: self.export_state(),
            engines: engines
                .iter()
                .map(|e| {
                    let mut w = Writer::new();
                    e.snapshot_encode(&mut w);
                    w.into_bytes()
                })
                .collect(),
            summaries: engines.iter().map(|e| e.snapshot_summary()).collect(),
            cluster_tail: cluster_tail.to_vec(),
            chaos: (!self.plan.is_empty()).then(|| crate::snapshot::ChaosSection {
                plan_fp: self.plan.fingerprint(),
                state: self.chaos.clone(),
            }),
        }
    }
}

/// The global argmin over every shard's cached ranking for `spec`, with
/// the unsharded tie-break (strictly-smaller score wins; equal scores
/// keep the lowest global index). Rankings are built lazily, once per
/// shard per spec per pass; shards with no eligible machine cost
/// nothing.
#[allow(clippy::too_many_arguments)]
fn pick_scored(
    shards: &mut [Shard],
    placer: &Placer,
    spec: &BeSpec,
    peer_caps: &[f64],
    taken: &[bool],
    caps: &[f64],
    catalog: &BTreeMap<String, BeSpec>,
    engines: &[MutexGuard<'_, Engine>],
    pods: usize,
) -> Option<usize> {
    let policy = placer.policy();
    // LeastPressure ignores the job entirely: one shared ranking.
    let key: &str = if policy == PlacementPolicy::LeastPressure {
        ""
    } else {
        &spec.name
    };
    let peered = policy == PlacementPolicy::HeteroAware && !peer_caps.is_empty();
    let peer_mean = peer_caps.iter().sum::<f64>() / peer_caps.len().max(1) as f64;
    let mut best: Option<(f64, usize)> = None;
    let better = |best: &mut Option<(f64, usize)>, s: f64, g: usize| match *best {
        None => *best = Some((s, g)),
        Some((bs, bg)) if s < bs || (s == bs && g < bg) => *best = Some((s, g)),
        _ => {}
    };
    for sh in shards.iter_mut() {
        if sh.eligible.is_empty() {
            continue;
        }
        if !sh.ranked.contains_key(key) {
            let mut order: Vec<(f64, usize)> = Vec::with_capacity(sh.eligible.len());
            for &g in &sh.eligible {
                let r = machine_ref(g, pods);
                let machine = engines[r.replica].machine(r.pod);
                let component = &engines[r.replica].service().nodes[r.pod].component;
                let s = match policy {
                    PlacementPolicy::LeastPressure => Placer::pressure_score(machine, catalog),
                    PlacementPolicy::InterferenceScore => {
                        placer.score_on(spec, component, machine, catalog)
                    }
                    PlacementPolicy::HeteroAware => {
                        placer.hetero_base(spec, component, machine, catalog)
                    }
                    PlacementPolicy::RoundRobin => unreachable!("RR uses the rotation set"),
                };
                order.push((s, g));
            }
            // Scores are finite and non-negative (pressures, inflations
            // and capacities all are), so total_cmp is the plain `<`
            // order here; ties keep ascending global.
            order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            sh.ranked.insert(key.to_string(), Ranked { order, cursor: 0 });
        }
        // PANIC: the branch above inserted this key when it was absent.
        let ranked = sh.ranked.get_mut(key).expect("ranking just built");
        if peered {
            // Gang context shifts every machine's score by its own
            // capacity-mismatch penalty, which reorders arbitrarily:
            // scan the cached bases (skipping claimed machines). The
            // explicit (score, global) tie-break makes the scan order
            // irrelevant.
            for &(base, g) in &ranked.order {
                if taken[g] {
                    continue;
                }
                let s = base + Placer::STRAGGLER_WEIGHT * (caps[g] - peer_mean).abs();
                better(&mut best, s, g);
            }
        } else {
            // Head of the ranking, skipping machines claimed earlier in
            // the pass (claims never revert mid-pass, so the cursor only
            // moves forward).
            while ranked.cursor < ranked.order.len() && taken[ranked.order[ranked.cursor].1] {
                ranked.cursor += 1;
            }
            if let Some(&(s, g)) = ranked.order.get(ranked.cursor) {
                better(&mut best, s, g);
            }
        }
    }
    best.map(|(_, g)| g)
}

/// One [`ClusterRunner`] run: the experiment outcome plus every
/// snapshot captured at the epoch barriers requested via
/// [`ClusterRunner::snapshot_at`].
pub struct ClusterRun {
    /// The experiment result, identical to what [`run_cluster`] returns.
    pub outcome: ClusterOutcome,
    /// Captured `(epoch, snapshot)` pairs in ascending epoch order.
    pub snapshots: Vec<(u32, ClusterSnapshot)>,
}

/// State rebuilt from a [`ClusterSnapshot`] by [`ClusterRunner::resume`],
/// validated eagerly so [`ClusterRunner::run`] stays infallible.
struct ResumeState {
    epoch: u32,
    t_ns: u64,
    engines: Vec<Engine>,
    scheduler: SchedulerState,
    cluster_tail: Vec<TailPoint>,
    chaos: Option<ChaosState>,
}

/// A configurable cluster run: [`run_cluster`] plus snapshot capture at
/// chosen epoch barriers and resume from a captured snapshot.
///
/// Captures happen at the single-threaded epoch barrier — after the
/// merge, before the next dispatch — where every engine is quiescent, so
/// the snapshot is exact, not racy. Resuming a snapshot continues the
/// run **bit-identically** to one that never stopped, for any shard
/// count and any worker-thread count.
pub struct ClusterRunner<'a> {
    ctx: &'a ServiceContext,
    choice: &'a ControllerChoice,
    cfg: &'a ClusterConfig,
    capture_at: BTreeSet<u32>,
    resume: Option<ResumeState>,
}

impl<'a> ClusterRunner<'a> {
    /// Prepares a fresh run of `cfg.machines` machines under `choice`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.machines` is not a positive multiple of the
    /// service's Servpod count, or if `cfg.machine_specs` is non-empty
    /// but does not hold exactly one spec per machine.
    pub fn new(
        ctx: &'a ServiceContext,
        choice: &'a ControllerChoice,
        cfg: &'a ClusterConfig,
    ) -> ClusterRunner<'a> {
        let pods = ctx.service.len();
        assert!(
            cfg.machines >= pods && cfg.machines.is_multiple_of(pods),
            "cluster size {} must be a positive multiple of the service's {pods} Servpods",
            cfg.machines
        );
        assert!(
            cfg.machine_specs.is_empty() || cfg.machine_specs.len() == cfg.machines,
            "machine_specs holds {} specs for {} machines",
            cfg.machine_specs.len(),
            cfg.machines
        );
        if let Err(why) = cfg.faults.validate(cfg.machines) {
            // PANIC: constructor contract — an invalid fault plan is a
            // configuration bug, not a runtime condition.
            panic!("invalid fault plan: {why}");
        }
        ClusterRunner {
            ctx,
            choice,
            cfg,
            capture_at: BTreeSet::new(),
            resume: None,
        }
    }

    /// Requests a snapshot at the barrier where `epoch` epochs have
    /// completed (virtual time `epoch × controller period`). Epoch 0 is
    /// the initial state and is not a barrier; requests past the end of
    /// the run never fire. May be called repeatedly for multiple capture
    /// points.
    pub fn snapshot_at(mut self, epoch: u32) -> ClusterRunner<'a> {
        if epoch > 0 {
            self.capture_at.insert(epoch);
        }
        self
    }

    /// Prepares a run that continues `snapshot` to the end of the
    /// horizon. `ctx`, `choice` and `cfg` must describe the same
    /// experiment that produced the snapshot — everything that shapes
    /// state (machines, seed, horizon, epoch length, job plan) is
    /// checked, and a mismatch is refused with
    /// [`SnapshotError::Incompatible`]. `cfg.threads` is free to differ:
    /// determinism does not depend on the worker count.
    ///
    /// All decoding and validation happens here, so the returned
    /// runner's [`run`](ClusterRunner::run) cannot fail.
    pub fn resume(
        snapshot: &ClusterSnapshot,
        ctx: &'a ServiceContext,
        choice: &'a ControllerChoice,
        cfg: &'a ClusterConfig,
    ) -> Result<ClusterRunner<'a>, SnapshotError> {
        let runner = ClusterRunner::new(ctx, choice, cfg);
        let pods = ctx.service.len();
        let replicas = cfg.machines / pods;
        let managed = !matches!(choice, ControllerChoice::Solo);
        let map = ShardMap::new(replicas, pods, cfg.shards);
        let expect = [
            ("machines", cfg.machines as u64, snapshot.machines),
            ("pods", pods as u64, snapshot.pods),
            ("replicas", replicas as u64, snapshot.replicas),
            ("shards", map.count() as u64, snapshot.shards),
            ("seed", cfg.seed, snapshot.seed),
            ("duration_s", cfg.duration_s, snapshot.duration_s),
            (
                "controller_period_ms",
                cfg.controller_period_ms,
                snapshot.controller_period_ms,
            ),
            ("managed", u64::from(managed), u64::from(snapshot.managed)),
        ];
        for (name, want, got) in expect {
            if want != got {
                return Err(SnapshotError::Incompatible {
                    expected: format!("{name}={want}"),
                    found: format!("{name}={got}"),
                });
            }
        }
        // The fault plan shapes every decision after its first event, so
        // a resumed run must carry exactly the plan the snapshot ran
        // under — present/absent and fingerprint both checked.
        let plan_fp = {
            let mut plan = cfg.faults.clone();
            plan.normalize();
            (!plan.is_empty()).then(|| plan.fingerprint())
        };
        let snap_fp = snapshot.chaos.as_ref().map(|c| c.plan_fp);
        if plan_fp != snap_fp {
            let word = |fp: Option<u64>| match fp {
                Some(fp) => format!("fault plan {fp:#018x}"),
                None => "no fault plan".to_string(),
            };
            return Err(SnapshotError::Incompatible {
                expected: word(plan_fp),
                found: word(snap_fp),
            });
        }
        let horizon_epochs = {
            let epoch_ms = cfg.controller_period_ms.max(100);
            cfg.duration_s * 1000 / epoch_ms
        };
        if u64::from(snapshot.epoch) > horizon_epochs {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot taken at epoch {} but the horizon only holds {horizon_epochs}",
                snapshot.epoch
            )));
        }
        let engines = runner.build_engines(Some(snapshot))?;
        // Validate the scheduler state against the plan-derived shape by
        // restoring it into a throwaway scheduler now; `run` re-applies
        // it knowing it cannot fail.
        Scheduler::new(cfg, pods, map, managed).restore_state(&snapshot.scheduler)?;
        Ok(ClusterRunner {
            resume: Some(ResumeState {
                epoch: snapshot.epoch,
                t_ns: snapshot.t_ns,
                engines,
                scheduler: snapshot.scheduler.clone(),
                cluster_tail: snapshot.cluster_tail.clone(),
                chaos: snapshot.chaos.as_ref().map(|c| c.state.clone()),
            }),
            ..runner
        })
    }

    /// Builds one engine per replica — fresh when `from` is `None`,
    /// restored from the snapshot's byte streams otherwise. The engine
    /// config is derived from `cfg` exactly as a fresh run derives it,
    /// so a restored engine validates against the same deployment.
    fn build_engines(&self, from: Option<&ClusterSnapshot>) -> Result<Vec<Engine>, SnapshotError> {
        let ctx = self.ctx;
        let cfg = self.cfg;
        let pods = ctx.service.len();
        let replicas = cfg.machines / pods;
        let managed = !matches!(self.choice, ControllerChoice::Solo);
        if let Some(s) = from {
            if s.engines.len() != replicas {
                return Err(SnapshotError::Corrupt(format!(
                    "snapshot holds {} engine streams for {replicas} replicas",
                    s.engines.len()
                )));
            }
        }
        let expt = ExperimentConfig {
            bes: cfg.be_mix.clone(),
            load: cfg.load.clone(),
            duration_s: cfg.duration_s,
            seed: cfg.seed,
            record_timeline: false,
            controller_period_ms: cfg.controller_period_ms,
        };
        (0..replicas)
            .map(|r| {
                let mut ec = ctx.engine_config(self.choice, &expt);
                ec.seed = replica_seed(cfg.seed, r);
                ec.external_be = managed;
                ec.telemetry = cfg.telemetry;
                ec.growth.priority_preemption = cfg.priority_preemption;
                if !cfg.machine_specs.is_empty() {
                    // This replica's slice of the per-machine hardware.
                    ec.machine_specs = cfg.machine_specs[r * pods..(r + 1) * pods].to_vec();
                }
                match from {
                    None => Ok(Engine::new(Arc::clone(&ctx.service), ec)),
                    Some(s) => {
                        let mut rd = Reader::new(&s.engines[r]);
                        let e = Engine::snapshot_restore(Arc::clone(&ctx.service), ec, &mut rd)?;
                        if !rd.is_empty() {
                            return Err(SnapshotError::Corrupt(format!(
                                "replica {r} engine stream has {} trailing bytes",
                                rd.remaining()
                            )));
                        }
                        Ok(e)
                    }
                }
            })
            .collect()
    }

    /// Runs the experiment (fresh or resumed) to the end of the horizon.
    pub fn run(mut self) -> ClusterRun {
        let ctx = self.ctx;
        let cfg = self.cfg;
        let pods = ctx.service.len();
        let replicas = cfg.machines / pods;
        let managed = !matches!(self.choice, ControllerChoice::Solo);

        let (engines, start_epoch, start_t, tail0, resume_sched, resume_chaos) =
            match self.resume.take() {
                Some(rs) => (
                    rs.engines,
                    rs.epoch,
                    SimTime::from_nanos(rs.t_ns),
                    rs.cluster_tail,
                    Some(rs.scheduler),
                    rs.chaos,
                ),
                None => (
                    self.build_engines(None)
                        // PANIC: with no resume sections there is nothing
                        // to validate, so construction cannot fail.
                        .expect("fresh engine construction is infallible"),
                    0,
                    SimTime::ZERO,
                    Vec::new(),
                    None,
                    None,
                ),
            };

        let map = ShardMap::new(replicas, pods, cfg.shards);
        let mut sched = Scheduler::new(cfg, pods, map, managed);
        if let Some(st) = &resume_sched {
            sched
                // PANIC: resume() already validated this state against
                // the same config before handing it over.
                .restore_state(st)
                .expect("scheduler state validated by resume()");
        }
        if let Some(chaos) = resume_chaos {
            sched.chaos = chaos;
        }

        let epoch = SimDuration::from_millis(cfg.controller_period_ms.max(100));
        let end = SimTime::ZERO + SimDuration::from_secs(cfg.duration_s);
        let capture_at = &self.capture_at;
        let mut snapshots: Vec<(u32, ClusterSnapshot)> = Vec::new();

        // The worker pool persists across the whole run: an epoch is only
        // microseconds of engine work, so spawning threads per epoch (or
        // parking them in the kernel at each boundary) would dominate the
        // run. Workers wait at a spin barrier; the main thread opens each
        // epoch by publishing the target time and filling the task queue,
        // helps drain it, and does the single-threaded merge while the
        // workers spin at the next barrier. Whoever ran an engine also
        // syncs its BE progress to the boundary — engine-local work that
        // used to serialize inside the merge.
        let workers = cfg.threads.max(1).min(engines.len());
        let mut cluster_tail: Vec<TailPoint> = tail0;
        let slots: Vec<Mutex<Engine>> = engines.into_iter().map(Mutex::new).collect();
        let barrier = SpinBarrier::new(workers);
        let tasks: SegQueue<usize> = SegQueue::new();
        let until = AtomicU64::new(0);
        let done = AtomicBool::new(false);

        let advance = |i: usize, target: SimTime| {
            // PANIC: a poisoned lock means a worker already panicked —
            // propagating the abort is the only sound option.
            let mut engine = slots[i].lock().expect("engine slot poisoned");
            engine.run_until(target);
            if target != SimTime::MAX {
                // The final drain has no merge after it: nothing reads BE
                // progress past `end`, so only epoch boundaries sync.
                engine.sync_be_progress(target);
                // The barrier is a utilization read point: settle the
                // batched worker-busy integrals engine-locally, in the
                // parallel phase (pure settlement — bit-identical for
                // any thread count, like the progress sync above).
                engine.flush_busy_integrals(target);
            }
        };

        crossbeam::scope(|s| {
            for _ in 1..workers {
                s.spawn(|_| loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let target = SimTime::from_nanos(until.load(Ordering::Acquire));
                    while let Some(i) = tasks.pop() {
                        advance(i, target);
                    }
                    barrier.wait();
                });
            }

            // Advances every engine to `target` on the pool. Each engine
            // is popped by exactly one worker and engines share no state,
            // so pop order cannot affect results.
            let run_to = |target: SimTime| {
                until.store(target.as_nanos(), Ordering::Release);
                for i in 0..slots.len() {
                    tasks.push(i);
                }
                barrier.wait();
                while let Some(i) = tasks.pop() {
                    advance(i, target);
                }
                barrier.wait();
            };

            let mut t = start_t;
            let mut epoch_idx: u32 = start_epoch;
            let have_faults = !sched.plan.is_empty();
            while t < end {
                if managed || have_faults {
                    // PANIC: poisoned lock = a worker already panicked.
                    let mut guards: Vec<MutexGuard<'_, Engine>> =
                        slots.iter().map(|m| m.lock().expect("engine slot poisoned")).collect();
                    // Faults first: a machine crashing at this barrier
                    // must not receive an offer in the same pass.
                    if have_faults {
                        sched.apply_faults(&mut guards, t.as_secs_f64());
                    }
                    if managed {
                        sched.dispatch(&mut guards, t.as_secs_f64());
                    }
                }
                let next = (t + epoch).min(end);
                run_to(next);
                // PANIC: poisoned lock = a worker already panicked.
                let mut guards: Vec<MutexGuard<'_, Engine>> =
                    slots.iter().map(|m| m.lock().expect("engine slot poisoned")).collect();
                sched.merge(&mut guards, next);
                // Telemetry at the barrier, always single-threaded and in
                // fixed replica order: mark the epoch in every recorder,
                // then merge the per-engine tail windows the controller
                // tick just closed into one cluster-wide point.
                // Independent of worker scheduling, so exports are
                // bit-identical for any `threads`.
                if cfg.telemetry.enabled {
                    for g in guards.iter_mut() {
                        g.note_epoch(epoch_idx, next);
                    }
                    // The engines' control tick does not fire at the very
                    // end of the run (`next == end`): no new window closed
                    // there.
                    if cfg.telemetry.tail && next < end {
                        let mut merged = LatencyHistogram::new();
                        for g in guards.iter() {
                            merged.merge(g.telemetry().tail.last_window());
                        }
                        cluster_tail.push(TailPoint::from_window(
                            &merged,
                            next.as_secs_f64(),
                            ctx.sla_ms,
                        ));
                    }
                }
                // Snapshot at the barrier: `epoch_idx + 1` epochs are now
                // complete, the merge and telemetry splice have run, and
                // all engine guards are held — the exact state a resumed
                // run re-enters the loop with.
                if capture_at.contains(&(epoch_idx + 1)) {
                    snapshots.push((
                        epoch_idx + 1,
                        sched.capture(&guards, epoch_idx + 1, next, &cluster_tail, managed),
                    ));
                }
                drop(guards);
                epoch_idx += 1;
                t = next;
            }
            // Drain in-flight requests past the end of the run.
            run_to(SimTime::MAX);
            done.store(true, Ordering::Release);
            barrier.wait();
        })
        // PANIC: re-raise a worker thread's panic on the coordinator.
        .expect("cluster worker panicked");

        let mut outputs: Vec<_> = slots
            .into_iter()
            // PANIC: poisoned lock = a worker already panicked.
            .map(|m| m.into_inner().expect("engine slot poisoned"))
            .map(Engine::finish_run)
            .collect();
        let per_replica: Vec<RunMetrics> = outputs.iter().map(RunMetrics::from_output).collect();
        let fingerprints = machine_fingerprints(&outputs);
        let metrics = ClusterMetrics::merge(
            cfg.machines,
            &outputs,
            &per_replica,
            &sched.jobs,
            sched.requeues(),
            cfg.duration_s as f64,
        );
        let telemetry = cfg.telemetry.enabled.then(|| ClusterTelemetry {
            replicas: outputs
                .iter_mut()
                .map(|o| o.telemetry.take().unwrap_or_default())
                .collect(),
            cluster_tail,
            cluster_events: std::mem::take(&mut sched.events),
        });
        let outcome = ClusterOutcome {
            metrics,
            sharding: ShardingReport {
                shards: map.count(),
                steals: sched.steals,
                fast_path_epochs: sched.fast_path_epochs,
            },
            per_replica,
            jobs: sched.jobs,
            fingerprints,
            telemetry,
        };
        ClusterRun { outcome, snapshots }
    }
}

/// Runs one cluster experiment: `cfg.machines` machines under `choice`,
/// with the shared BE backlog dispatched by `cfg.policy` across
/// [`ClusterConfig::shards`] scheduler shards. Equivalent to
/// [`ClusterRunner::new`]`(..).run()` with no snapshots requested.
///
/// # Panics
///
/// Panics if `cfg.machines` is not a positive multiple of the service's
/// Servpod count, or if `cfg.machine_specs` is non-empty but does not
/// hold exactly one spec per machine.
pub fn run_cluster(
    ctx: &ServiceContext,
    choice: &ControllerChoice,
    cfg: &ClusterConfig,
) -> ClusterOutcome {
    ClusterRunner::new(ctx, choice, cfg).run().outcome
}

/// Runs Rhythm and Heracles on the same cluster (same seeds, same
/// backlog) and returns both outcomes.
pub fn compare_cluster(ctx: &ServiceContext, cfg: &ClusterConfig) -> (ClusterOutcome, ClusterOutcome) {
    (
        run_cluster(ctx, &ControllerChoice::Rhythm, cfg),
        run_cluster(ctx, &ControllerChoice::Heracles, cfg),
    )
}

/// A machine is eligible for new BE work when its controller currently
/// allows growth (or has not ticked yet — the run just started).
fn allows_growth(engines: &[MutexGuard<'_, Engine>], global: usize, pods: usize) -> bool {
    let r = machine_ref(global, pods);
    match engines[r.replica].last_action(r.pod) {
        None | Some(BeAction::AllowBeGrowth) => true,
        Some(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;
    use crate::placement::PlacementPolicy;
    use rhythm_machine::MachineSpec;
    use rhythm_workloads::{apps, BeKind};

    fn ctx() -> ServiceContext {
        ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11)
    }

    fn small_cfg() -> ClusterConfig {
        // Tiny jobs: with ~0.2-0.3 solo rate per instance, a 12-24 s
        // (solo) job finishes well inside the 90 s window.
        let mut c = ClusterConfig::new(2).with_scaled_jobs(0.02);
        c.duration_s = 90;
        c.jobs_per_machine = 3;
        c.load = rhythm_workloads::LoadGen::constant(0.5);
        c.policy = PlacementPolicy::RoundRobin;
        c.threads = 1;
        c
    }

    #[test]
    fn cluster_completes_jobs_and_requests() {
        let ctx = ctx();
        let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &small_cfg());
        assert_eq!(out.metrics.machines, 2);
        assert_eq!(out.metrics.replicas, 1);
        assert!(out.metrics.completed_requests > 0);
        assert_eq!(out.metrics.jobs.submitted, 6);
        assert!(
            out.metrics.jobs.completed > 0,
            "scaled jobs finish inside the window: {:?}",
            out.metrics.jobs
        );
        assert_eq!(out.fingerprints.len(), 2);
        assert_eq!(out.sharding.shards, 1, "one replica cannot shard further");
        assert_eq!(out.sharding.steals, 0, "K=1 never steals");
    }

    #[test]
    fn solo_cluster_runs_no_jobs() {
        let ctx = ctx();
        let out = run_cluster(&ctx, &ControllerChoice::Solo, &small_cfg());
        assert_eq!(out.metrics.jobs.completed, 0);
        assert_eq!(out.metrics.be_throughput, 0.0);
        assert!(out.metrics.completed_requests > 0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn odd_cluster_size_rejected() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 3; // solr has 2 Servpods
        run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
    }

    #[test]
    #[should_panic(expected = "machine_specs")]
    fn wrong_spec_count_rejected() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.machine_specs = vec![MachineSpec::paper_testbed()]; // 2 machines
        run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
    }

    #[test]
    fn hetero_gang_cluster_completes() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.machine_specs = vec![MachineSpec::dense_compute(), MachineSpec::lean_node()];
        c.policy = PlacementPolicy::HeteroAware;
        c.priority_preemption = true;
        c.queue_aging_s = Some(30.0);
        let spec = c.be_mix[0].clone();
        c.job_plan = vec![
            JobSpec::solitary(spec.clone()).with_priority(1).with_deadline(60.0),
            JobSpec::solitary(spec.clone()).with_gang(2),
            JobSpec::solitary(spec),
        ];
        let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
        assert_eq!(out.metrics.jobs.submitted, 4, "gang counts both members");
        assert_eq!(out.metrics.jobs.deadline_total, 1);
        assert!(
            out.metrics.jobs.completed > 0,
            "hetero cluster still completes work: {:?}",
            out.metrics.jobs
        );
        // Gang members either both finished or neither did (atomicity).
        let members: Vec<&ClusterJob> =
            out.jobs.iter().filter(|j| j.gang.is_some()).collect();
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn gang_members_never_run_alone_for_long() {
        // With only 2 machines and patience 1, a gang of 2 either forms
        // or aborts within an epoch — its members must never end the run
        // split (one done, one never started) without the abort pass
        // having rolled the runner back.
        let ctx = ctx();
        let mut c = small_cfg();
        c.gang_patience_epochs = 1;
        let spec = c.be_mix[0].clone();
        c.job_plan = vec![JobSpec::solitary(spec).with_gang(2)];
        let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
        assert_eq!(out.metrics.jobs.submitted, 2);
        for j in &out.jobs {
            assert_eq!(j.gang, Some(0));
        }
    }

    #[test]
    fn sharded_run_matches_unsharded() {
        // The linchpin invariant, in miniature: the same 8-machine run
        // at K=1 and K=4 must produce identical fingerprints, metrics
        // and job outcomes (sharding changes cost, never decisions).
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 8;
        c.duration_s = 60;
        c.policy = PlacementPolicy::InterferenceScore;
        let run = |shards: usize| {
            let mut c = c.clone();
            c.shards = shards;
            run_cluster(&ctx, &ControllerChoice::Rhythm, &c)
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(b.sharding.shards, 4);
        assert_eq!(a.fingerprints, b.fingerprints);
        assert_eq!(a.metrics.requeues, b.metrics.requeues);
        assert_eq!(a.metrics.completed_requests, b.metrics.completed_requests);
        assert_eq!(a.metrics.jobs, b.metrics.jobs);
        assert_eq!(a.sharding.steals, 0, "K=1 cannot steal");
    }

    /// Every observable the outcome carries, compared bit-for-bit.
    fn assert_outcomes_identical(a: &ClusterOutcome, b: &ClusterOutcome, what: &str) {
        assert_eq!(a.fingerprints, b.fingerprints, "{what}: fingerprints");
        assert_eq!(a.metrics.jobs, b.metrics.jobs, "{what}: job stats");
        assert_eq!(a.metrics.requeues, b.metrics.requeues, "{what}: requeues");
        assert_eq!(
            a.metrics.completed_requests, b.metrics.completed_requests,
            "{what}: completed requests"
        );
        assert_eq!(a.sharding.steals, b.sharding.steals, "{what}: steals");
        match (&a.telemetry, &b.telemetry) {
            (None, None) => {}
            (Some(ta), Some(tb)) => {
                assert_eq!(ta.export_jsonl(), tb.export_jsonl(), "{what}: jsonl export");
                assert_eq!(ta.chrome_trace(), tb.chrome_trace(), "{what}: chrome trace");
                assert_eq!(ta.why_report(), tb.why_report(), "{what}: why report");
            }
            _ => panic!("{what}: telemetry presence differs"),
        }
    }

    #[test]
    fn resume_is_bit_identical_to_straight_run() {
        // The tentpole invariant in miniature: run 8 machines straight
        // through with full telemetry, then snapshot the same experiment
        // at epoch 10 and resume it — on a different worker count — and
        // every observable (fingerprints, metrics, telemetry exports,
        // spliced tail series) must match bit-for-bit.
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 8;
        c.duration_s = 60;
        c.telemetry = rhythm_telemetry::TelemetryConfig::full();
        let straight = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);

        let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &c)
            .snapshot_at(10)
            .run();
        assert_outcomes_identical(&straight, &run.outcome, "capturing run");
        assert_eq!(run.snapshots.len(), 1);
        let (epoch, snap) = &run.snapshots[0];
        assert_eq!(*epoch, 10);

        // Round-trip the container through bytes before resuming, so the
        // test covers the codec, not just the in-memory structures.
        let bytes = snap.to_bytes();
        let snap = ClusterSnapshot::from_bytes(&bytes).expect("snapshot bytes parse");
        assert_eq!(snap.to_bytes(), bytes, "re-encode is byte-identical");
        assert!(snap.diff(&snap).is_empty(), "self-diff reports no differences");

        let mut c4 = c.clone();
        c4.threads = 4;
        let resumed = ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &c4)
            .expect("snapshot matches its own config")
            .run();
        assert_outcomes_identical(&straight, &resumed.outcome, "resumed run");
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let ctx = ctx();
        let c = small_cfg();
        let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &c)
            .snapshot_at(5)
            .run();
        let snap = &run.snapshots[0].1;

        let mut wrong_seed = c.clone();
        wrong_seed.seed ^= 1;
        assert!(matches!(
            ClusterRunner::resume(snap, &ctx, &ControllerChoice::Rhythm, &wrong_seed).err(),
            Some(SnapshotError::Incompatible { .. })
        ));

        let mut wrong_horizon = c.clone();
        wrong_horizon.duration_s += 30;
        assert!(matches!(
            ClusterRunner::resume(snap, &ctx, &ControllerChoice::Rhythm, &wrong_horizon).err(),
            Some(SnapshotError::Incompatible { .. })
        ));

        // Solo disables cluster management entirely — a managed snapshot
        // cannot continue under it.
        assert!(matches!(
            ClusterRunner::resume(snap, &ctx, &ControllerChoice::Solo, &c).err(),
            Some(SnapshotError::Incompatible { .. })
        ));
    }

    #[test]
    fn faults_emit_events_and_apply_in_order() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 8;
        c.duration_s = 60;
        c.telemetry = rhythm_telemetry::TelemetryConfig::full();
        c.faults = FaultPlan::new()
            .crash(10.0, 2)
            .slow_node(10.0, 5, 0.6)
            .recover(30.0, 2)
            .correlated(40.0, vec![6, 7]);
        let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
        let t = out.telemetry.as_ref().expect("telemetry enabled");
        let count = |kind: ClusterEventKind| {
            t.cluster_events.iter().filter(|e| e.kind == kind).count()
        };
        assert_eq!(count(ClusterEventKind::FaultInjected), 4, "every plan event fired");
        assert_eq!(count(ClusterEventKind::MachineDown), 3, "crash + 2 correlated");
        assert_eq!(count(ClusterEventKind::MachineUp), 1);
        let down: Vec<u64> = t
            .cluster_events
            .iter()
            .filter(|e| e.kind == ClusterEventKind::MachineDown)
            .map(|e| e.job)
            .collect();
        assert_eq!(down, vec![2, 6, 7], "machine index rides in the job field");
        assert!(out.metrics.completed_requests > 0, "cluster survives the chaos");
    }

    #[test]
    fn invalid_fault_plans_are_refused() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.faults = FaultPlan::new().crash(10.0, 99);
        let result = std::panic::catch_unwind(|| {
            run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
        });
        assert!(result.is_err(), "out-of-range machine index panics at construction");
    }

    #[test]
    fn chaos_resume_is_bit_identical_and_plan_checked() {
        // Crash at 16 s, snapshot at epoch 10 (20 s) — while machine 3
        // is down — recover at 36 s: the resumed run must replay the
        // recovery and end bit-identical to the uninterrupted one.
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 8;
        c.duration_s = 60;
        c.telemetry = rhythm_telemetry::TelemetryConfig::full();
        c.faults = FaultPlan::new().crash(16.0, 3).recover(36.0, 3);
        let straight = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);

        let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &c)
            .snapshot_at(10)
            .run();
        assert_outcomes_identical(&straight, &run.outcome, "capturing chaos run");
        let (_, snap) = &run.snapshots[0];
        let chaos = snap.chaos.as_ref().expect("chaos section present");
        assert_eq!(chaos.state.applied, 1, "crash applied, recovery pending");
        assert!(chaos.state.down.contains(&3));

        let bytes = snap.to_bytes();
        let snap = ClusterSnapshot::from_bytes(&bytes).expect("chaos snapshot parses");
        assert_eq!(snap.to_bytes(), bytes, "re-encode is byte-identical");

        let mut c4 = c.clone();
        c4.threads = 4;
        let resumed = ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &c4)
            .expect("matching plan resumes")
            .run();
        assert_outcomes_identical(&straight, &resumed.outcome, "resumed chaos run");

        // A different plan — or no plan at all — is refused.
        let mut other = c.clone();
        other.faults = FaultPlan::new().crash(16.0, 4).recover(36.0, 4);
        assert!(matches!(
            ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &other).err(),
            Some(SnapshotError::Incompatible { .. })
        ));
        let mut none = c.clone();
        none.faults = FaultPlan::new();
        assert!(matches!(
            ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &none).err(),
            Some(SnapshotError::Incompatible { .. })
        ));
    }

    #[test]
    fn snapshot_requests_past_the_horizon_never_fire() {
        let ctx = ctx();
        let c = small_cfg(); // 90 s at 2 s epochs = 45 barriers
        let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &c)
            .snapshot_at(0)
            .snapshot_at(1000)
            .run();
        assert!(run.snapshots.is_empty());
        let straight = run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
        assert_outcomes_identical(&straight, &run.outcome, "no-op capture run");
    }
}
