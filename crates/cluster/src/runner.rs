//! The parallel epoch-barrier cluster runner.
//!
//! Replicas advance **independently** between controller ticks: nothing
//! couples two engines except the dispatcher, and the dispatcher only
//! acts on controller signals, which are emitted every 2 s of virtual
//! time. So the runner executes all engines up to the next epoch boundary
//! on a pool of crossbeam worker threads, then performs the cluster-level
//! bookkeeping (progress sync, admission binding, kill/requeue,
//! completion, placement) in a **single-threaded merge in fixed machine
//! order**. Every engine owns independent splitmix-derived RNG streams
//! and the merge never observes scheduling order, so the result is
//! bit-identical for any worker-thread count — determinism is a property
//! of the protocol, not of luck.
//!
//! Epoch protocol (epoch = controller period, paper: 2 s):
//!
//! 1. *Dispatch* — withdraw offers no controller consumed, then offer
//!    queued jobs to machines signalling AllowBEGrowth, one per machine,
//!    placed by the configured policy.
//! 2. *Run* — every engine processes events up to the epoch end in
//!    parallel (the controller tick at the boundary is included).
//! 3. *Merge* — in replica order: sync BE progress to the boundary, bind
//!    admissions to their offered jobs, roll killed jobs back to their
//!    checkpoint and requeue them, and retire jobs whose progress
//!    reached 1.0.

use crate::job::{ClusterJob, JobState};
use crate::metrics::{machine_fingerprints, ClusterMetrics, ClusterOutcome, ClusterTelemetry};
use crate::placement::{CandidateMachine, Placer};
use crate::queue::JobQueue;
use crate::state::{global_index, machine_ref, replica_seed, ClusterConfig};
use crossbeam::queue::SegQueue;
use rhythm_controller::BeAction;
use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm_core::metrics::RunMetrics;
use rhythm_core::runtime::Engine;
use rhythm_machine::machine::BeInstanceId;
use rhythm_sim::{LatencyHistogram, SimDuration, SimTime};
use rhythm_telemetry::TailPoint;
use rhythm_workloads::BeSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// A sense-reversing spin barrier for the epoch boundary.
///
/// Epochs are microseconds of work, so parking workers in the kernel at
/// every boundary (as `std::sync::Barrier` does) costs more than the
/// epoch itself. Arrivals spin briefly and fall back to `yield_now` so
/// an oversubscribed host still makes progress.
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        if self.total == 1 {
            return;
        }
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arriver: reset and release the cohort. Nobody can
            // re-enter `wait` until the generation advances, so the
            // relaxed reset cannot race a new arrival.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 256 {
                    std::hint::spin_loop();
                } else {
                    // Short spin budget: on an oversubscribed (or
                    // single-core) host the peer needs this CPU to make
                    // the progress we are waiting for.
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Runs one cluster experiment: `cfg.machines` machines under `choice`,
/// with the shared BE backlog dispatched by `cfg.policy`.
///
/// # Panics
///
/// Panics if `cfg.machines` is not a positive multiple of the service's
/// Servpod count.
pub fn run_cluster(
    ctx: &ServiceContext,
    choice: &ControllerChoice,
    cfg: &ClusterConfig,
) -> ClusterOutcome {
    let pods = ctx.service.len();
    assert!(
        cfg.machines >= pods && cfg.machines.is_multiple_of(pods),
        "cluster size {} must be a positive multiple of the service's {pods} Servpods",
        cfg.machines
    );
    let replicas = cfg.machines / pods;
    let managed = !matches!(choice, ControllerChoice::Solo);

    let expt = ExperimentConfig {
        bes: cfg.be_mix.clone(),
        load: cfg.load.clone(),
        duration_s: cfg.duration_s,
        seed: cfg.seed,
        record_timeline: false,
        controller_period_ms: cfg.controller_period_ms,
    };
    let engines: Vec<Engine> = (0..replicas)
        .map(|r| {
            let mut ec = ctx.engine_config(choice, &expt);
            ec.seed = replica_seed(cfg.seed, r);
            ec.external_be = managed;
            ec.telemetry = cfg.telemetry;
            Engine::new(std::sync::Arc::clone(&ctx.service), ec)
        })
        .collect();

    let mut jobs: Vec<ClusterJob> = (0..cfg.total_jobs())
        .map(|i| {
            ClusterJob::new(
                i as u64,
                cfg.be_mix[i % cfg.be_mix.len()].clone(),
                0.0,
            )
        })
        .collect();
    let mut queue = JobQueue::new();
    if managed {
        for j in &jobs {
            queue.submit(j.id);
        }
    }
    let catalog = cfg.catalog();
    let mut placer = Placer::new(cfg.policy, rhythm_interference::InterferenceModel::calibrated());
    // Per-machine offered job and instance → job bindings.
    let mut offered: Vec<Option<u64>> = vec![None; cfg.machines];
    let mut bindings: BTreeMap<(usize, BeInstanceId), u64> = BTreeMap::new();

    let epoch = SimDuration::from_millis(cfg.controller_period_ms.max(100));
    let end = SimTime::ZERO + SimDuration::from_secs(cfg.duration_s);

    // The worker pool persists across the whole run: an epoch is only
    // microseconds of engine work, so spawning threads per epoch (or
    // parking them in the kernel at each boundary) would dominate the
    // run. Workers wait at a spin barrier; the main thread opens each
    // epoch by publishing the target time and filling the task queue,
    // helps drain it, and does the single-threaded merge while the
    // workers spin at the next barrier.
    let workers = cfg.threads.max(1).min(engines.len());
    let mut cluster_tail: Vec<TailPoint> = Vec::new();
    let slots: Vec<Mutex<Engine>> = engines.into_iter().map(Mutex::new).collect();
    let barrier = SpinBarrier::new(workers);
    let tasks: SegQueue<usize> = SegQueue::new();
    let until = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    crossbeam::scope(|s| {
        for _ in 1..workers {
            s.spawn(|_| loop {
                barrier.wait();
                if done.load(Ordering::Acquire) {
                    break;
                }
                let target = SimTime::from_nanos(until.load(Ordering::Acquire));
                while let Some(i) = tasks.pop() {
                    slots[i].lock().expect("engine slot poisoned").run_until(target);
                }
                barrier.wait();
            });
        }

        // Advances every engine to `target` on the pool. Each engine is
        // popped by exactly one worker and engines share no state, so
        // pop order cannot affect results.
        let run_to = |target: SimTime| {
            until.store(target.as_nanos(), Ordering::Release);
            for i in 0..slots.len() {
                tasks.push(i);
            }
            barrier.wait();
            while let Some(i) = tasks.pop() {
                slots[i].lock().expect("engine slot poisoned").run_until(target);
            }
            barrier.wait();
        };

        let mut t = SimTime::ZERO;
        let mut epoch_idx: u32 = 0;
        while t < end {
            if managed {
                let mut guards: Vec<MutexGuard<'_, Engine>> =
                    slots.iter().map(|m| m.lock().expect("engine slot poisoned")).collect();
                dispatch(
                    &mut guards, &mut jobs, &mut queue, &mut placer, &mut offered, &catalog, pods,
                    cfg.machines,
                );
            }
            let next = (t + epoch).min(end);
            run_to(next);
            let mut guards: Vec<MutexGuard<'_, Engine>> =
                slots.iter().map(|m| m.lock().expect("engine slot poisoned")).collect();
            merge(
                &mut guards,
                &mut jobs,
                &mut queue,
                &mut bindings,
                &mut offered,
                next,
                pods,
                cfg.checkpoint_fraction,
            );
            // Telemetry at the barrier, always single-threaded and in
            // fixed replica order: mark the epoch in every recorder, then
            // merge the per-engine tail windows the controller tick just
            // closed into one cluster-wide point. Independent of worker
            // scheduling, so exports are bit-identical for any `threads`.
            if cfg.telemetry.enabled {
                for g in guards.iter_mut() {
                    g.note_epoch(epoch_idx, next);
                }
                // The engines' control tick does not fire at the very end
                // of the run (`next == end`): no new window closed there.
                if cfg.telemetry.tail && next < end {
                    let mut merged = LatencyHistogram::new();
                    for g in guards.iter() {
                        merged.merge(g.telemetry().tail.last_window());
                    }
                    cluster_tail.push(TailPoint::from_window(
                        &merged,
                        next.as_secs_f64(),
                        ctx.sla_ms,
                    ));
                }
            }
            drop(guards);
            epoch_idx += 1;
            t = next;
        }
        // Drain in-flight requests past the end of the run.
        run_to(SimTime::MAX);
        done.store(true, Ordering::Release);
        barrier.wait();
    })
    .expect("cluster worker panicked");

    let mut outputs: Vec<_> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("engine slot poisoned"))
        .map(Engine::finish_run)
        .collect();
    let per_replica: Vec<RunMetrics> = outputs.iter().map(RunMetrics::from_output).collect();
    let fingerprints = machine_fingerprints(&outputs);
    let metrics = ClusterMetrics::merge(
        cfg.machines,
        &outputs,
        &per_replica,
        &jobs,
        queue.requeue_count(),
    );
    let telemetry = cfg.telemetry.enabled.then(|| ClusterTelemetry {
        replicas: outputs
            .iter_mut()
            .map(|o| o.telemetry.take().unwrap_or_default())
            .collect(),
        cluster_tail,
    });
    ClusterOutcome {
        metrics,
        per_replica,
        jobs,
        fingerprints,
        telemetry,
    }
}

/// Runs Rhythm and Heracles on the same cluster (same seeds, same
/// backlog) and returns both outcomes.
pub fn compare_cluster(ctx: &ServiceContext, cfg: &ClusterConfig) -> (ClusterOutcome, ClusterOutcome) {
    (
        run_cluster(ctx, &ControllerChoice::Rhythm, cfg),
        run_cluster(ctx, &ControllerChoice::Heracles, cfg),
    )
}

/// Epoch step 1: withdraw unconsumed offers, then place queued jobs on
/// machines signalling AllowBEGrowth (one offer per machine per epoch).
///
/// Runs on the main thread while the workers are parked at the epoch
/// barrier, so the engine locks are uncontended.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    engines: &mut [MutexGuard<'_, Engine>],
    jobs: &mut [ClusterJob],
    queue: &mut JobQueue,
    placer: &mut Placer,
    offered: &mut [Option<u64>],
    catalog: &BTreeMap<String, BeSpec>,
    pods: usize,
    machines: usize,
) {
    // Withdraw offers the controllers did not consume last epoch, in
    // reverse global order so the requeue-to-front restores the original
    // relative order.
    for g in (0..machines).rev() {
        if let Some(jid) = offered[g].take() {
            let r = machine_ref(g, pods);
            engines[r.replica].set_be_offer(r.pod, None);
            jobs[jid as usize].state = JobState::Queued;
            queue.requeue(jid);
        }
    }
    // Offer queued jobs while eligible machines remain.
    let mut taken = vec![false; machines];
    let mut assignments: Vec<(usize, u64)> = Vec::new();
    while let Some(jid) = queue.pop() {
        let spec = jobs[jid as usize].spec.clone();
        let pick = {
            let candidates: Vec<CandidateMachine<'_>> = (0..machines)
                .filter(|&g| !taken[g] && allows_growth(engines, g, pods))
                .map(|g| {
                    let r = machine_ref(g, pods);
                    CandidateMachine {
                        global: g,
                        machine: engines[r.replica].machine(r.pod),
                        component: &engines[r.replica].service().nodes[r.pod].component,
                    }
                })
                .collect();
            placer.choose(&spec, &candidates, catalog)
        };
        match pick {
            Some(g) => {
                taken[g] = true;
                assignments.push((g, jid));
            }
            None => {
                // No eligible machine left this epoch; put the job back.
                queue.requeue(jid);
                break;
            }
        }
    }
    for (g, jid) in assignments {
        let r = machine_ref(g, pods);
        offered[g] = Some(jid);
        jobs[jid as usize].state = JobState::Offered(g);
        let spec = jobs[jid as usize].spec.clone();
        engines[r.replica].set_be_offer(r.pod, Some(spec));
    }
}

/// A machine is eligible for new BE work when its controller currently
/// allows growth (or has not ticked yet — the run just started).
fn allows_growth(engines: &[MutexGuard<'_, Engine>], global: usize, pods: usize) -> bool {
    let r = machine_ref(global, pods);
    match engines[r.replica].last_action(r.pod) {
        None | Some(BeAction::AllowBeGrowth) => true,
        Some(_) => false,
    }
}

/// Epoch step 3: the deterministic merge at the barrier.
#[allow(clippy::too_many_arguments)]
fn merge(
    engines: &mut [MutexGuard<'_, Engine>],
    jobs: &mut [ClusterJob],
    queue: &mut JobQueue,
    bindings: &mut BTreeMap<(usize, BeInstanceId), u64>,
    offered: &mut [Option<u64>],
    now: SimTime,
    pods: usize,
    ckpt_fraction: f64,
) {
    let now_s = now.as_secs_f64();
    for (r, engine) in engines.iter_mut().enumerate() {
        // Progress through the end of the epoch, with the allocations
        // that were actually in force — after this, reading or mutating
        // BE state cannot mis-attribute any fraction of the tick.
        engine.sync_be_progress(now);
        // Admissions: bind each new instance to the job offered to its
        // machine.
        for adm in engine.take_be_admissions() {
            let g = global_index(r, adm.machine, pods);
            if let Some(jid) = offered[g].take() {
                bindings.insert((g, adm.instance), jid);
                jobs[jid as usize].state = JobState::Running(g);
                engine.set_be_offer(adm.machine, None);
            }
        }
        // Kills: roll back to the checkpoint and requeue — unless the
        // instance had in fact already finished the job by kill time.
        for kill in engine.take_be_kills() {
            let g = global_index(r, kill.machine, pods);
            if let Some(jid) = bindings.remove(&(g, kill.instance)) {
                let job = &mut jobs[jid as usize];
                if job.total_progress(kill.progress) >= 1.0 {
                    job.on_complete(now_s);
                } else {
                    job.on_kill(kill.progress, ckpt_fraction);
                    queue.requeue(jid);
                }
            }
        }
        // Completions: retire bound instances whose job reached 1.0.
        let lo = (global_index(r, 0, pods), BeInstanceId::MIN);
        let hi = (global_index(r + 1, 0, pods), BeInstanceId::MIN);
        let bound: Vec<(usize, BeInstanceId, u64)> = bindings
            .range(lo..hi)
            .map(|(&(g, inst), &jid)| (g, inst, jid))
            .collect();
        for (g, inst, jid) in bound {
            let pod = machine_ref(g, pods).pod;
            let done = engine.be_progress(pod, inst).unwrap_or(0.0);
            if jobs[jid as usize].total_progress(done) >= 1.0 {
                engine.remove_be(pod, inst);
                jobs[jid as usize].on_complete(now_s);
                bindings.remove(&(g, inst));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;
    use rhythm_workloads::{apps, BeKind};

    fn ctx() -> ServiceContext {
        ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11)
    }

    fn small_cfg() -> ClusterConfig {
        // Tiny jobs: with ~0.2-0.3 solo rate per instance, a 12-24 s
        // (solo) job finishes well inside the 90 s window.
        let mut c = ClusterConfig::new(2).with_scaled_jobs(0.02);
        c.duration_s = 90;
        c.jobs_per_machine = 3;
        c.load = rhythm_workloads::LoadGen::constant(0.5);
        c.policy = PlacementPolicy::RoundRobin;
        c.threads = 1;
        c
    }

    #[test]
    fn cluster_completes_jobs_and_requests() {
        let ctx = ctx();
        let out = run_cluster(&ctx, &ControllerChoice::Rhythm, &small_cfg());
        assert_eq!(out.metrics.machines, 2);
        assert_eq!(out.metrics.replicas, 1);
        assert!(out.metrics.completed_requests > 0);
        assert_eq!(out.metrics.jobs.submitted, 6);
        assert!(
            out.metrics.jobs.completed > 0,
            "scaled jobs finish inside the window: {:?}",
            out.metrics.jobs
        );
        assert_eq!(out.fingerprints.len(), 2);
    }

    #[test]
    fn solo_cluster_runs_no_jobs() {
        let ctx = ctx();
        let out = run_cluster(&ctx, &ControllerChoice::Solo, &small_cfg());
        assert_eq!(out.metrics.jobs.completed, 0);
        assert_eq!(out.metrics.be_throughput, 0.0);
        assert!(out.metrics.completed_requests > 0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn odd_cluster_size_rejected() {
        let ctx = ctx();
        let mut c = small_cfg();
        c.machines = 3; // solr has 2 Servpods
        run_cluster(&ctx, &ControllerChoice::Rhythm, &c);
    }
}
