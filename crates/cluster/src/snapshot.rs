//! Durable cluster state: the epoch-barrier snapshot container.
//!
//! A [`ClusterSnapshot`] is everything the runner needs to continue a run
//! **bit-identically** from an epoch barrier: the scheduler's dynamic
//! state ([`SchedulerState`] — job ledger, per-shard queues/offers/
//! bindings, shared sequence counters, gang trackers, event stream), one
//! opaque byte stream per replica engine (captured by
//! [`Engine::snapshot_encode`]), a structural [`EngineSummary`] digest
//! per replica (so [`ClusterSnapshot::diff`] can render a post-mortem
//! without the service spec), and the cluster tail series collected so
//! far (resume splices the remainder onto it without duplication).
//!
//! On disk the snapshot is an `RSNP` container ([`SnapshotFile`]): magic,
//! format version, the schema hash of **every** state-contributing crate,
//! then named sections. [`ClusterSnapshot::from_bytes`] refuses a file
//! whose version or schema hashes differ
//! ([`SnapshotError::Incompatible`]) and validates the cross-section
//! invariants (engine count = replicas, machines = replicas × pods), so a
//! foreign or stale file fails loudly instead of misdecoding.
//!
//! [`Engine::snapshot_encode`]: rhythm_core::runtime::Engine::snapshot_encode

use crate::fault::{ChaosState, CHAOS_SECTION_VERSION};
use crate::job::{ClusterJob, JobId, JobState};
use crate::queue::{JobQueue, SeqSource};
use rhythm_core::runtime::EngineSummary;
use rhythm_snapshot::{
    fnv1a, schema_hash, Reader, Snapshot, SnapshotBuilder, SnapshotError, SnapshotFile, Writer,
};
use rhythm_telemetry::{ClusterEvent, TailPoint};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The expected schema table: every crate whose types appear in a
/// cluster snapshot, with the hash of its layout description.
pub fn expected_schemas() -> [(&'static str, u64); 7] {
    [
        ("rhythm-sim", schema_hash(rhythm_sim::SNAPSHOT_SCHEMA)),
        ("rhythm-machine", schema_hash(rhythm_machine::SNAPSHOT_SCHEMA)),
        ("rhythm-workloads", schema_hash(rhythm_workloads::SNAPSHOT_SCHEMA)),
        ("rhythm-controller", schema_hash(rhythm_controller::SNAPSHOT_SCHEMA)),
        ("rhythm-telemetry", schema_hash(rhythm_telemetry::SNAPSHOT_SCHEMA)),
        ("rhythm-core", schema_hash(rhythm_core::SNAPSHOT_SCHEMA)),
        ("rhythm-cluster", schema_hash(crate::SNAPSHOT_SCHEMA)),
    ]
}

/// Lifecycle bookkeeping of one gang, as captured at the barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GangState {
    /// Member job ids in submission order.
    pub members: Vec<JobId>,
    /// Epochs left before a forming gang aborts.
    pub patience_left: u32,
    /// Offers are out but not every live member runs yet.
    pub forming: bool,
}

impl Snapshot for GangState {
    fn encode(&self, w: &mut Writer) {
        self.members.encode(w);
        w.u32(self.patience_left);
        w.bool(self.forming);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(GangState {
            members: Snapshot::decode(r)?,
            patience_left: r.u32()?,
            forming: r.bool()?,
        })
    }
}

/// One scheduler shard's durable state: its queue slice, outstanding
/// offers (indexed by `global - range.start`) and instance bindings
/// (`(global machine, instance) → job`).
#[derive(Clone, Debug)]
pub struct ShardState {
    /// The shard's slice of the backlog.
    pub queue: JobQueue,
    /// Outstanding offer per machine of the shard.
    pub offered: Vec<Option<JobId>>,
    /// `(global machine, BE instance) → job` for running work.
    pub bindings: BTreeMap<(u64, u64), JobId>,
}

impl Snapshot for ShardState {
    fn encode(&self, w: &mut Writer) {
        self.queue.encode(w);
        self.offered.encode(w);
        self.bindings.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(ShardState {
            queue: Snapshot::decode(r)?,
            offered: Snapshot::decode(r)?,
            bindings: Snapshot::decode(r)?,
        })
    }
}

/// The cluster scheduler's full dynamic state at an epoch barrier. The
/// runner exports this at capture and replays it on resume; everything
/// else in the scheduler (placement caches, per-pass scratch, machine
/// capacities) is derived state rebuilt on the next dispatch pass.
#[derive(Clone, Debug)]
pub struct SchedulerState {
    /// The job ledger, indexed by job id.
    pub jobs: Vec<ClusterJob>,
    /// Per-shard queues, offers and bindings, in shard order.
    pub shards: Vec<ShardState>,
    /// The shared sequence counter pair.
    pub seq: SeqSource,
    /// The round-robin placement cursor.
    pub rr_cursor: u64,
    /// Gang id → tracker.
    pub gangs: BTreeMap<u32, GangState>,
    /// Cluster-scheduler events emitted so far (resume continues the
    /// stream without duplication).
    pub events: Vec<ClusterEvent>,
    /// Jobs placed outside their home shard so far.
    pub steals: u64,
    /// Dispatch passes that skipped ≥ 1 shard so far.
    pub fast_path_epochs: u64,
}

impl Snapshot for SchedulerState {
    fn encode(&self, w: &mut Writer) {
        self.jobs.encode(w);
        self.shards.encode(w);
        self.seq.encode(w);
        w.u64(self.rr_cursor);
        self.gangs.encode(w);
        self.events.encode(w);
        w.u64(self.steals);
        w.u64(self.fast_path_epochs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let state = SchedulerState {
            jobs: Snapshot::decode(r)?,
            shards: Snapshot::decode(r)?,
            seq: Snapshot::decode(r)?,
            rr_cursor: r.u64()?,
            gangs: Snapshot::decode(r)?,
            events: Snapshot::decode(r)?,
            steals: r.u64()?,
            fast_path_epochs: r.u64()?,
        };
        let n = state.jobs.len() as u64;
        for (i, j) in state.jobs.iter().enumerate() {
            if j.id != i as u64 {
                return Err(SnapshotError::Corrupt(format!(
                    "job ledger entry {i} carries id {}",
                    j.id
                )));
            }
        }
        let in_range = |jid: JobId| jid < n;
        for (si, sh) in state.shards.iter().enumerate() {
            if let Some(bad) = sh.queue.queued_ids().into_iter().find(|&j| !in_range(j)) {
                return Err(SnapshotError::Corrupt(format!(
                    "shard {si} queues unknown job {bad}"
                )));
            }
            if let Some(bad) = sh.offered.iter().flatten().find(|&&j| !in_range(j)) {
                return Err(SnapshotError::Corrupt(format!(
                    "shard {si} offers unknown job {bad}"
                )));
            }
            if let Some(bad) = sh.bindings.values().find(|&&j| !in_range(j)) {
                return Err(SnapshotError::Corrupt(format!(
                    "shard {si} binds unknown job {bad}"
                )));
            }
        }
        for (gid, g) in &state.gangs {
            if let Some(bad) = g.members.iter().find(|&&m| !in_range(m)) {
                return Err(SnapshotError::Corrupt(format!(
                    "gang {gid} lists unknown member {bad}"
                )));
            }
        }
        Ok(state)
    }
}

/// Fault-injection state carried in the snapshot's **optional**
/// `chaos` section: the fingerprint of the configured [`FaultPlan`]
/// (so resume refuses a different plan) plus the runner's dynamic
/// [`ChaosState`]. Present only when the run was configured with a
/// non-empty plan — a chaos-free run's container is byte-identical to
/// the pre-chaos format, which keeps the golden container fixture and
/// every archived snapshot valid.
///
/// [`FaultPlan`]: crate::fault::FaultPlan
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSection {
    /// FNV-1a fingerprint of the **normalized** fault plan.
    pub plan_fp: u64,
    /// Plan cursor + down set at the capturing barrier.
    pub state: ChaosState,
}

/// A resumable image of one cluster run at an epoch barrier.
#[derive(Clone, Debug)]
pub struct ClusterSnapshot {
    /// Epochs completed when the snapshot was captured.
    pub epoch: u32,
    /// Virtual time of the capturing barrier, in nanoseconds.
    pub t_ns: u64,
    /// Machines in the cluster.
    pub machines: u64,
    /// Servpods per replica.
    pub pods: u64,
    /// Service replicas (engines).
    pub replicas: u64,
    /// Scheduler shards (effective K).
    pub shards: u64,
    /// Base seed of the run.
    pub seed: u64,
    /// Configured run length in virtual seconds.
    pub duration_s: u64,
    /// Controller period (= epoch length) in milliseconds.
    pub controller_period_ms: u64,
    /// Whether a managed controller drives BE work (false for Solo).
    pub managed: bool,
    /// The scheduler's dynamic state.
    pub scheduler: SchedulerState,
    /// One opaque engine stream per replica
    /// ([`Engine::snapshot_encode`](rhythm_core::runtime::Engine::snapshot_encode)).
    pub engines: Vec<Vec<u8>>,
    /// Structural digest of each engine, for diffs and post-mortems.
    pub summaries: Vec<EngineSummary>,
    /// The merged cluster tail series collected so far.
    pub cluster_tail: Vec<TailPoint>,
    /// Fault-injection state (`None` when the run has no fault plan;
    /// see [`ChaosSection`]).
    pub chaos: Option<ChaosSection>,
}

impl ClusterSnapshot {
    /// Serializes the snapshot as an `RSNP` container. Deterministic:
    /// identical state yields identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        for (name, hash) in expected_schemas() {
            b.schema(name, hash);
        }
        let mut meta = Writer::new();
        meta.u32(self.epoch);
        meta.u64(self.t_ns);
        meta.u64(self.machines);
        meta.u64(self.pods);
        meta.u64(self.replicas);
        meta.u64(self.shards);
        meta.u64(self.seed);
        meta.u64(self.duration_s);
        meta.u64(self.controller_period_ms);
        meta.bool(self.managed);
        b.section("meta", meta);
        let mut sched = Writer::new();
        self.scheduler.encode(&mut sched);
        b.section("scheduler", sched);
        let mut engines = Writer::new();
        self.engines.encode(&mut engines);
        b.section("engines", engines);
        let mut summaries = Writer::new();
        self.summaries.encode(&mut summaries);
        b.section("summaries", summaries);
        let mut tail = Writer::new();
        self.cluster_tail.encode(&mut tail);
        b.section("tail", tail);
        if let Some(chaos) = &self.chaos {
            // Optional trailing section: absent for chaos-free runs, so
            // their container bytes match the pre-chaos format exactly.
            // The leading version byte lets the chaos wire format evolve
            // independently of the v1 container layout.
            let mut w = Writer::new();
            w.u8(CHAOS_SECTION_VERSION);
            w.u64(chaos.plan_fp);
            chaos.state.encode(&mut w);
            b.section("chaos", w);
        }
        b.finish()
    }

    /// Parses and validates a snapshot container: magic, format version
    /// and every crate schema hash must match the running code
    /// ([`SnapshotError::Incompatible`] otherwise), each section must
    /// decode exactly, and the cross-section invariants must hold.
    pub fn from_bytes(bytes: &[u8]) -> Result<ClusterSnapshot, SnapshotError> {
        let file = SnapshotFile::parse(bytes)?;
        file.verify_schemas(&expected_schemas())?;
        let read = |name: &str, f: &mut dyn FnMut(&mut Reader<'_>) -> Result<(), SnapshotError>|
         -> Result<(), SnapshotError> {
            let mut r = file.section(name)?;
            f(&mut r)?;
            if !r.is_empty() {
                return Err(SnapshotError::Corrupt(format!(
                    "section `{name}` has {} trailing bytes",
                    r.remaining()
                )));
            }
            Ok(())
        };
        let mut r = file.section("meta")?;
        let epoch = r.u32()?;
        let t_ns = r.u64()?;
        let machines = r.u64()?;
        let pods = r.u64()?;
        let replicas = r.u64()?;
        let shards = r.u64()?;
        let seed = r.u64()?;
        let duration_s = r.u64()?;
        let controller_period_ms = r.u64()?;
        let managed = r.bool()?;
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt("section `meta` has trailing bytes".into()));
        }
        let mut scheduler: Option<SchedulerState> = None;
        read("scheduler", &mut |r| {
            scheduler = Some(Snapshot::decode(r)?);
            Ok(())
        })?;
        let mut engines: Vec<Vec<u8>> = Vec::new();
        read("engines", &mut |r| {
            engines = Snapshot::decode(r)?;
            Ok(())
        })?;
        let mut summaries: Vec<EngineSummary> = Vec::new();
        read("summaries", &mut |r| {
            summaries = Snapshot::decode(r)?;
            Ok(())
        })?;
        let mut cluster_tail: Vec<TailPoint> = Vec::new();
        read("tail", &mut |r| {
            cluster_tail = Snapshot::decode(r)?;
            Ok(())
        })?;
        let mut chaos: Option<ChaosSection> = None;
        if file.section_names().any(|n| n == "chaos") {
            read("chaos", &mut |r| {
                let version = r.u8()?;
                if version != CHAOS_SECTION_VERSION {
                    return Err(SnapshotError::Incompatible {
                        expected: format!("chaos section v{CHAOS_SECTION_VERSION}"),
                        found: format!("chaos section v{version}"),
                    });
                }
                chaos = Some(ChaosSection {
                    plan_fp: r.u64()?,
                    state: Snapshot::decode(r)?,
                });
                Ok(())
            })?;
        }
        // PANIC: read("scheduler") either filled it or returned Missing.
        let scheduler = scheduler.expect("scheduler section read");
        if pods == 0 || replicas == 0 || machines != replicas * pods {
            return Err(SnapshotError::Corrupt(format!(
                "cluster shape is inconsistent: {machines} machines, {replicas} replicas × {pods} pods"
            )));
        }
        if engines.len() as u64 != replicas || summaries.len() as u64 != replicas {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot holds {} engine streams and {} summaries for {replicas} replicas",
                engines.len(),
                summaries.len()
            )));
        }
        if scheduler.shards.len() as u64 != shards {
            return Err(SnapshotError::Corrupt(format!(
                "scheduler has {} shard states, meta declares {shards}",
                scheduler.shards.len()
            )));
        }
        if let Some(c) = &chaos {
            if let Some(&bad) = c.state.down.iter().find(|&&m| m >= machines) {
                return Err(SnapshotError::Corrupt(format!(
                    "chaos down set lists machine {bad}, cluster has {machines}"
                )));
            }
        }
        Ok(ClusterSnapshot {
            epoch,
            t_ns,
            machines,
            pods,
            replicas,
            shards,
            seed,
            duration_s,
            controller_period_ms,
            managed,
            scheduler,
            engines,
            summaries,
            cluster_tail,
            chaos,
        })
    }

    /// FNV-1a over the serialized container — the byte fingerprint used
    /// by goldens and the resume-equality tests.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }

    /// Structural comparison of two snapshots: queues, offers, bindings,
    /// the job ledger, per-machine engine state and metrics deltas.
    pub fn diff(&self, other: &ClusterSnapshot) -> SnapshotDiff {
        let mut d = SnapshotDiff::default();
        let mut meta = |name: &str, a: String, b: String| {
            if a != b {
                d.push(format!("meta: {name} {a} vs {b}"));
            }
        };
        meta("epoch", self.epoch.to_string(), other.epoch.to_string());
        meta("t_ns", self.t_ns.to_string(), other.t_ns.to_string());
        meta("machines", self.machines.to_string(), other.machines.to_string());
        meta("pods", self.pods.to_string(), other.pods.to_string());
        meta("replicas", self.replicas.to_string(), other.replicas.to_string());
        meta("shards", self.shards.to_string(), other.shards.to_string());
        meta("seed", self.seed.to_string(), other.seed.to_string());
        meta("duration_s", self.duration_s.to_string(), other.duration_s.to_string());
        meta(
            "controller_period_ms",
            self.controller_period_ms.to_string(),
            other.controller_period_ms.to_string(),
        );
        meta("managed", self.managed.to_string(), other.managed.to_string());
        match (&self.chaos, &other.chaos) {
            (Some(a), Some(b)) => {
                if a.plan_fp != b.plan_fp {
                    d.push(format!(
                        "chaos: plan fingerprint {:#018x} vs {:#018x}",
                        a.plan_fp, b.plan_fp
                    ));
                }
                if a.state.applied != b.state.applied {
                    d.push(format!(
                        "chaos: {} vs {} fault events applied",
                        a.state.applied, b.state.applied
                    ));
                }
                if a.state.down != b.state.down {
                    d.push(format!(
                        "chaos: down set {:?} vs {:?}",
                        a.state.down, b.state.down
                    ));
                }
            }
            (None, None) => {}
            _ => d.push("chaos: fault state present on one side only".to_string()),
        }
        self.diff_scheduler(other, &mut d);
        self.diff_engines(other, &mut d);
        if self.cluster_tail.len() != other.cluster_tail.len() {
            d.push(format!(
                "tail: {} vs {} cluster tail points",
                self.cluster_tail.len(),
                other.cluster_tail.len()
            ));
        } else {
            let changed = self
                .cluster_tail
                .iter()
                .zip(&other.cluster_tail)
                .filter(|(a, b)| {
                    a.t_s.to_bits() != b.t_s.to_bits() || a.p99_ms.to_bits() != b.p99_ms.to_bits()
                })
                .count();
            if changed > 0 {
                d.push(format!("tail: {changed} cluster tail points differ"));
            }
        }
        d
    }

    fn diff_scheduler(&self, other: &ClusterSnapshot, d: &mut SnapshotDiff) {
        let (a, b) = (&self.scheduler, &other.scheduler);
        if a.jobs.len() != b.jobs.len() {
            d.push(format!("jobs: ledger sizes {} vs {}", a.jobs.len(), b.jobs.len()));
        }
        let state_word = |s: &JobState| match s {
            JobState::Queued => "queued".to_string(),
            JobState::Offered(g) => format!("offered@{g}"),
            JobState::Running(g) => format!("running@{g}"),
            JobState::Done => "done".to_string(),
        };
        let mut job_diffs = 0usize;
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            let mut changes: Vec<String> = Vec::new();
            if ja.state != jb.state {
                changes.push(format!("{} vs {}", state_word(&ja.state), state_word(&jb.state)));
            }
            if ja.checkpoint.to_bits() != jb.checkpoint.to_bits() {
                changes.push(format!("checkpoint {:.3} vs {:.3}", ja.checkpoint, jb.checkpoint));
            }
            if ja.kills != jb.kills {
                changes.push(format!("kills {} vs {}", ja.kills, jb.kills));
            }
            if ja.completed_s.map(f64::to_bits) != jb.completed_s.map(f64::to_bits) {
                changes.push(format!("completed {:?} vs {:?}", ja.completed_s, jb.completed_s));
            }
            if !changes.is_empty() {
                job_diffs += 1;
                if job_diffs <= MAX_LISTED {
                    d.push(format!("job {} ({}): {}", ja.id, ja.spec.name, changes.join(", ")));
                }
            }
        }
        if job_diffs > MAX_LISTED {
            d.push(format!("jobs: … and {} more differing jobs", job_diffs - MAX_LISTED));
        }
        let shards = a.shards.len().max(b.shards.len());
        for si in 0..shards {
            match (a.shards.get(si), b.shards.get(si)) {
                (Some(sa), Some(sb)) => {
                    let (qa, qb) = (sa.queue.queued_ids(), sb.queue.queued_ids());
                    if qa != qb {
                        d.push(format!("shard {si}: queue {qa:?} vs {qb:?}"));
                    }
                    if sa.queue.requeue_count() != sb.queue.requeue_count() {
                        d.push(format!(
                            "shard {si}: requeues {} vs {}",
                            sa.queue.requeue_count(),
                            sb.queue.requeue_count()
                        ));
                    }
                    if sa.offered != sb.offered {
                        d.push(format!("shard {si}: offers {:?} vs {:?}", sa.offered, sb.offered));
                    }
                    if sa.bindings != sb.bindings {
                        d.push(format!(
                            "shard {si}: bindings {:?} vs {:?}",
                            sa.bindings, sb.bindings
                        ));
                    }
                }
                _ => d.push(format!("shard {si}: present on one side only")),
            }
        }
        if a.steals != b.steals {
            d.push(format!("scheduler: steals {} vs {}", a.steals, b.steals));
        }
        if a.fast_path_epochs != b.fast_path_epochs {
            d.push(format!(
                "scheduler: fast-path epochs {} vs {}",
                a.fast_path_epochs, b.fast_path_epochs
            ));
        }
        if a.events.len() != b.events.len() {
            d.push(format!("scheduler: {} vs {} events", a.events.len(), b.events.len()));
        }
        if a.rr_cursor != b.rr_cursor {
            d.push(format!("scheduler: rr cursor {} vs {}", a.rr_cursor, b.rr_cursor));
        }
    }

    fn diff_engines(&self, other: &ClusterSnapshot, d: &mut SnapshotDiff) {
        let replicas = self.summaries.len().max(other.summaries.len());
        for r in 0..replicas {
            let (sa, sb) = match (self.summaries.get(r), other.summaries.get(r)) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    d.push(format!("replica {r}: present on one side only"));
                    continue;
                }
            };
            if sa.completed_total != sb.completed_total {
                d.push(format!(
                    "replica {r}: completed {} vs {} (Δ {})",
                    sa.completed_total,
                    sb.completed_total,
                    sb.completed_total as i64 - sa.completed_total as i64
                ));
            }
            if sa.inflight != sb.inflight {
                d.push(format!("replica {r}: in-flight {} vs {}", sa.inflight, sb.inflight));
            }
            if sa.pending_events != sb.pending_events {
                d.push(format!(
                    "replica {r}: pending events {} vs {}",
                    sa.pending_events, sb.pending_events
                ));
            }
            for (m, (ma, mb)) in sa.machines.iter().zip(&sb.machines).enumerate() {
                let mut changes: Vec<String> = Vec::new();
                if ma.be_instances != mb.be_instances || ma.be_running != mb.be_running {
                    changes.push(format!(
                        "BE {}/{} vs {}/{}",
                        ma.be_running, ma.be_instances, mb.be_running, mb.be_instances
                    ));
                }
                if ma.be_cores != mb.be_cores {
                    changes.push(format!("cores {} vs {}", ma.be_cores, mb.be_cores));
                }
                if ma.be_llc_ways != mb.be_llc_ways {
                    changes.push(format!("llc ways {} vs {}", ma.be_llc_ways, mb.be_llc_ways));
                }
                if ma.lc_freq_mhz != mb.lc_freq_mhz || ma.be_freq_mhz != mb.be_freq_mhz {
                    changes.push(format!(
                        "freq lc/be {}/{} vs {}/{}",
                        ma.lc_freq_mhz, ma.be_freq_mhz, mb.lc_freq_mhz, mb.be_freq_mhz
                    ));
                }
                if ma.be_started != mb.be_started || ma.be_killed != mb.be_killed {
                    changes.push(format!(
                        "started/killed {}/{} vs {}/{}",
                        ma.be_started, ma.be_killed, mb.be_started, mb.be_killed
                    ));
                }
                if !changes.is_empty() {
                    d.push(format!(
                        "replica {r} machine {m} ({}): {}",
                        ma.pod,
                        changes.join(", ")
                    ));
                }
            }
            // Summaries equal but raw streams differ: surface it rather
            // than report a false "identical".
            if let (Some(ea), Some(eb)) = (self.engines.get(r), other.engines.get(r)) {
                if ea != eb && !d.differences.iter().any(|l| l.starts_with(&format!("replica {r}"))) {
                    d.push(format!(
                        "replica {r}: engine streams differ ({} vs {} bytes, fp {:#018x} vs {:#018x})",
                        ea.len(),
                        eb.len(),
                        fnv1a(ea),
                        fnv1a(eb)
                    ));
                }
            }
        }
    }
}

/// How many per-job difference lines [`ClusterSnapshot::diff`] lists
/// before collapsing the rest into a count.
const MAX_LISTED: usize = 50;

/// The result of [`ClusterSnapshot::diff`]: one line per structural
/// difference (empty for identical snapshots).
#[derive(Clone, Debug, Default)]
pub struct SnapshotDiff {
    /// Human-readable difference lines, in section order.
    pub differences: Vec<String>,
}

impl SnapshotDiff {
    fn push(&mut self, line: String) {
        self.differences.push(line);
    }

    /// True when the snapshots are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.differences.is_empty()
    }

    /// Number of difference lines.
    pub fn len(&self) -> usize {
        self.differences.len()
    }

    /// Renders the post-mortem report.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "0 differences: snapshots are structurally identical\n".to_string();
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} difference(s):", self.differences.len());
        for line in &self.differences {
            let _ = writeln!(out, "  {line}");
        }
        out
    }
}
