//! Cluster state model: N machines as replicas of the service.
//!
//! The paper deploys one Servpod per machine (§3.1), so an N-machine
//! cluster hosts `N / service.len()` replicas of the LC service — the
//! 4-machine testbed is exactly one e-commerce deployment. Each replica
//! runs in its own engine (with its own load generator, controllers and
//! RNG streams); the cluster layer addresses machines by a **global
//! index** `replica * pods + pod`.

use crate::job::JobSpec;
use crate::placement::PlacementPolicy;
use rhythm_machine::MachineSpec;
use rhythm_telemetry::TelemetryConfig;
use rhythm_workloads::{BeKind, BeSpec, LoadGen};
use std::collections::BTreeMap;

/// A global machine index resolved to its replica and Servpod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineRef {
    /// Which service replica (engine) the machine belongs to.
    pub replica: usize,
    /// Which Servpod (machine index within the engine).
    pub pod: usize,
}

/// Resolves a global machine index (`pods` = Servpods per replica).
pub fn machine_ref(global: usize, pods: usize) -> MachineRef {
    MachineRef {
        replica: global / pods,
        pod: global % pods,
    }
}

/// The global index of `(replica, pod)`.
pub fn global_index(replica: usize, pod: usize, pods: usize) -> usize {
    replica * pods + pod
}

/// An independent seed for one replica's engine (splitmix64 over the
/// base seed, so replicas never share RNG streams and adding replicas
/// never perturbs existing ones).
pub fn replica_seed(base: u64, replica: usize) -> u64 {
    let mut z = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replica as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Total machines; must be a multiple of the service's Servpod count.
    pub machines: usize,
    /// Worker threads for the parallel runner (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
    /// Placement policy of the BE dispatcher.
    pub policy: PlacementPolicy,
    /// Backlog size: jobs submitted at t=0 per machine.
    pub jobs_per_machine: u32,
    /// Checkpoint granularity: a killed job rolls back to the last
    /// multiple of this fraction (0.1 = checkpoints every 10%).
    pub checkpoint_fraction: f64,
    /// Run length in virtual seconds.
    pub duration_s: u64,
    /// Offered load on every replica.
    pub load: LoadGen,
    /// Base seed.
    pub seed: u64,
    /// Controller period in ms — also the cluster epoch (paper: 2000).
    pub controller_period_ms: u64,
    /// BE workload mix the backlog cycles through.
    pub be_mix: Vec<BeSpec>,
    /// Telemetry collection in every replica engine (plus the merged
    /// cluster tail series). Disabled by default.
    pub telemetry: TelemetryConfig,
    /// Per-machine hardware overrides, indexed by **global machine
    /// index**. Empty (the default) keeps every machine on the engines'
    /// uniform spec; non-empty must hold one spec per machine.
    pub machine_specs: Vec<MachineSpec>,
    /// Explicit job plan. Empty (the default) derives the classic
    /// backlog: `jobs_per_machine × machines` solitary best-effort jobs
    /// cycling through `be_mix`. Non-empty replaces it with the listed
    /// entries (gang entries expand to their instance count).
    pub job_plan: Vec<JobSpec>,
    /// Priority-aware preemption in the per-machine controllers: StopBE
    /// kills only the lowest-priority class and CutBE shrinks only the
    /// lowest class. Off by default (paper behaviour).
    pub priority_preemption: bool,
    /// Queue aging: a waiting job rises one priority class per this many
    /// virtual seconds (anti-starvation). `None` disables aging.
    pub queue_aging_s: Option<f64>,
    /// Epochs a forming gang may wait for all of its instances to be
    /// admitted before the dispatcher aborts and requeues it.
    pub gang_patience_epochs: u32,
}

impl ClusterConfig {
    /// A sensible default cluster of `machines` machines: 85% load (the
    /// regime where Rhythm and Heracles diverge), a 10-minute run, the
    /// paper's three real BE workloads, and 10% checkpoints.
    pub fn new(machines: usize) -> ClusterConfig {
        ClusterConfig {
            machines,
            threads: 4,
            policy: PlacementPolicy::InterferenceScore,
            jobs_per_machine: 4,
            checkpoint_fraction: 0.1,
            duration_s: 600,
            load: LoadGen::constant(0.85),
            seed: 42,
            controller_period_ms: 2_000,
            be_mix: vec![
                BeSpec::of(BeKind::Wordcount),
                BeSpec::of(BeKind::ImageClassify),
                BeSpec::of(BeKind::Lstm),
            ],
            telemetry: TelemetryConfig::disabled(),
            machine_specs: Vec::new(),
            job_plan: Vec::new(),
            priority_preemption: false,
            queue_aging_s: None,
            gang_patience_epochs: 4,
        }
    }

    /// Scales every job in the mix (and any explicit plan) to `factor`
    /// of its solo runtime (pressure characteristics unchanged). Short
    /// runs use this so completion-time distributions are observable
    /// inside the window.
    pub fn with_scaled_jobs(mut self, factor: f64) -> ClusterConfig {
        for spec in &mut self.be_mix {
            spec.job_seconds = (spec.job_seconds * factor).max(1.0);
        }
        for entry in &mut self.job_plan {
            entry.spec.job_seconds = (entry.spec.job_seconds * factor).max(1.0);
        }
        self
    }

    /// The workload catalog (by name) the engines and the placer share.
    pub fn catalog(&self) -> BTreeMap<String, BeSpec> {
        self.be_mix
            .iter()
            .chain(self.job_plan.iter().map(|e| &e.spec))
            .map(|s| (s.name.clone(), s.clone()))
            .collect()
    }

    /// The effective job plan: the explicit `job_plan` when set,
    /// otherwise the classic derived backlog (`jobs_per_machine ×
    /// machines` solitary best-effort jobs cycling through `be_mix`).
    pub fn effective_plan(&self) -> Vec<JobSpec> {
        if !self.job_plan.is_empty() {
            return self.job_plan.clone();
        }
        (0..self.jobs_per_machine as usize * self.machines)
            .map(|i| JobSpec::solitary(self.be_mix[i % self.be_mix.len()].clone()))
            .collect()
    }

    /// Total jobs in the backlog (gang entries count every instance).
    pub fn total_jobs(&self) -> usize {
        if self.job_plan.is_empty() {
            self.jobs_per_machine as usize * self.machines
        } else {
            self.job_plan.iter().map(|e| e.gang.max(1) as usize).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_index_round_trips() {
        for pods in [1usize, 2, 4] {
            for g in 0..16 {
                let r = machine_ref(g, pods);
                assert_eq!(global_index(r.replica, r.pod, pods), g);
                assert!(r.pod < pods);
            }
        }
    }

    #[test]
    fn replica_seeds_differ() {
        let seeds: Vec<u64> = (0..16).map(|r| replica_seed(7, r)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn explicit_plan_overrides_backlog() {
        let mut c = ClusterConfig::new(4);
        assert_eq!(c.total_jobs(), 16);
        assert_eq!(c.effective_plan().len(), 16);
        c.job_plan = vec![
            JobSpec::solitary(BeSpec::of(BeKind::Wordcount)).with_priority(1),
            JobSpec::solitary(BeSpec::of(BeKind::Lstm)).with_gang(3),
        ];
        assert_eq!(c.total_jobs(), 4, "gang counts every instance");
        assert_eq!(c.effective_plan().len(), 2);
        assert!(c.catalog().contains_key("wordcount"));
    }

    #[test]
    fn scaling_touches_plan_entries() {
        let mut c = ClusterConfig::new(4);
        c.job_plan = vec![JobSpec::solitary(BeSpec::of(BeKind::Wordcount))];
        let solo = c.job_plan[0].spec.job_seconds;
        let c = c.with_scaled_jobs(0.1);
        assert!((c.job_plan[0].spec.job_seconds - (solo * 0.1).max(1.0)).abs() < 1e-12);
    }

    #[test]
    fn scaled_jobs_shrink() {
        let c = ClusterConfig::new(4).with_scaled_jobs(0.1);
        for s in &c.be_mix {
            assert!(s.job_seconds <= 120.0, "{} {}", s.name, s.job_seconds);
        }
    }
}
