//! Cluster state model: N machines as replicas of the service.
//!
//! The paper deploys one Servpod per machine (§3.1), so an N-machine
//! cluster hosts `N / service.len()` replicas of the LC service — the
//! 4-machine testbed is exactly one e-commerce deployment. Each replica
//! runs in its own engine (with its own load generator, controllers and
//! RNG streams); the cluster layer addresses machines by a **global
//! index** `replica * pods + pod`.

use crate::fault::FaultPlan;
use crate::job::JobSpec;
use crate::placement::PlacementPolicy;
use rhythm_machine::MachineSpec;
use rhythm_telemetry::TelemetryConfig;
use rhythm_workloads::{BeKind, BeSpec, LoadGen};
use std::collections::BTreeMap;

/// A global machine index resolved to its replica and Servpod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineRef {
    /// Which service replica (engine) the machine belongs to.
    pub replica: usize,
    /// Which Servpod (machine index within the engine).
    pub pod: usize,
}

/// Resolves a global machine index (`pods` = Servpods per replica).
pub fn machine_ref(global: usize, pods: usize) -> MachineRef {
    MachineRef {
        replica: global / pods,
        pod: global % pods,
    }
}

/// The global index of `(replica, pod)`.
pub fn global_index(replica: usize, pod: usize, pods: usize) -> usize {
    replica * pods + pod
}

/// The partition of a cluster into K scheduler shards.
///
/// Shards are **contiguous, replica-aligned** blocks of machines: shard
/// `s` owns a run of whole replicas (the first `replicas % K` shards get
/// one extra), so every engine — and therefore every admission, kill and
/// completion it reports — belongs to exactly one shard. The partition
/// is a pure function of `(replicas, pods, K)`: no thread schedule, no
/// iteration order, nothing run-time dependent.
///
/// Jobs have a **home shard** (`id % K`) holding their queue entry; the
/// dispatcher may place a job on another shard's machine (a *steal*,
/// see the runner), but its queue residency never moves.
#[derive(Clone, Copy, Debug)]
pub struct ShardMap {
    pods: usize,
    replicas: usize,
    k: usize,
    /// Replicas per shard (the first `extra` shards own `base + 1`).
    base: usize,
    extra: usize,
}

impl ShardMap {
    /// Partitions `replicas` replicas of `pods` Servpods into
    /// `requested` shards; `requested == 0` picks automatically (one
    /// shard per 8 replicas, capped at 64). The shard count is always
    /// clamped to `[1, replicas]`.
    pub fn new(replicas: usize, pods: usize, requested: usize) -> ShardMap {
        let replicas = replicas.max(1);
        let want = if requested == 0 {
            (replicas / 8).clamp(1, 64)
        } else {
            requested
        };
        let k = want.clamp(1, replicas);
        ShardMap {
            pods: pods.max(1),
            replicas,
            k,
            base: replicas / k,
            extra: replicas % k,
        }
    }

    /// Number of shards (K).
    pub fn count(&self) -> usize {
        self.k
    }

    /// The replica range shard `s` owns.
    pub fn replica_range(&self, s: usize) -> std::ops::Range<usize> {
        debug_assert!(s < self.k);
        let lo = s * self.base + s.min(self.extra);
        let len = self.base + usize::from(s < self.extra);
        lo..lo + len
    }

    /// The global machine range shard `s` owns.
    pub fn global_range(&self, s: usize) -> std::ops::Range<usize> {
        let r = self.replica_range(s);
        r.start * self.pods..r.end * self.pods
    }

    /// The shard owning replica `r`.
    pub fn shard_of_replica(&self, r: usize) -> usize {
        debug_assert!(r < self.replicas);
        let fat = (self.base + 1) * self.extra;
        if r < fat {
            r / (self.base + 1)
        } else {
            self.extra + (r - fat) / self.base
        }
    }

    /// The shard owning global machine `g`.
    pub fn shard_of_global(&self, g: usize) -> usize {
        self.shard_of_replica(g / self.pods)
    }

    /// The home shard of job `id` (round-robin over shards, so every
    /// shard's queue sees an equal slice of the backlog).
    pub fn home_shard(&self, id: u64) -> usize {
        (id % self.k as u64) as usize
    }
}

/// An independent seed for one replica's engine (splitmix64 over the
/// base seed, so replicas never share RNG streams and adding replicas
/// never perturbs existing ones).
pub fn replica_seed(base: u64, replica: usize) -> u64 {
    let mut z = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replica as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Total machines; must be a multiple of the service's Servpod count.
    pub machines: usize,
    /// Worker threads for the parallel runner (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
    /// Scheduler shards (K): the runner partitions machines into K
    /// replica-aligned shards, each with its own BE queue, placement
    /// state and bindings. Results are **bit-identical for any K** —
    /// sharding changes data layout and per-epoch cost, never decisions.
    /// `0` (the default) picks automatically from the cluster size.
    pub shards: usize,
    /// Placement policy of the BE dispatcher.
    pub policy: PlacementPolicy,
    /// Backlog size: jobs submitted at t=0 per machine.
    pub jobs_per_machine: u32,
    /// Checkpoint granularity: a killed job rolls back to the last
    /// multiple of this fraction (0.1 = checkpoints every 10%).
    pub checkpoint_fraction: f64,
    /// Run length in virtual seconds.
    pub duration_s: u64,
    /// Offered load on every replica.
    pub load: LoadGen,
    /// Base seed.
    pub seed: u64,
    /// Controller period in ms — also the cluster epoch (paper: 2000).
    pub controller_period_ms: u64,
    /// BE workload mix the backlog cycles through.
    pub be_mix: Vec<BeSpec>,
    /// Telemetry collection in every replica engine (plus the merged
    /// cluster tail series). Disabled by default.
    pub telemetry: TelemetryConfig,
    /// Per-machine hardware overrides, indexed by **global machine
    /// index**. Empty (the default) keeps every machine on the engines'
    /// uniform spec; non-empty must hold one spec per machine.
    pub machine_specs: Vec<MachineSpec>,
    /// Explicit job plan. Empty (the default) derives the classic
    /// backlog: `jobs_per_machine × machines` solitary best-effort jobs
    /// cycling through `be_mix`. Non-empty replaces it with the listed
    /// entries (gang entries expand to their instance count).
    pub job_plan: Vec<JobSpec>,
    /// Priority-aware preemption in the per-machine controllers: StopBE
    /// kills only the lowest-priority class and CutBE shrinks only the
    /// lowest class. Off by default (paper behaviour).
    pub priority_preemption: bool,
    /// Queue aging: a waiting job rises one priority class per this many
    /// virtual seconds (anti-starvation). `None` disables aging.
    pub queue_aging_s: Option<f64>,
    /// Epochs a forming gang may wait for all of its instances to be
    /// admitted before the dispatcher aborts and requeues it.
    pub gang_patience_epochs: u32,
    /// Deterministic fault-injection schedule, applied at epoch
    /// barriers. Empty (the default) injects nothing and leaves the
    /// run — including its snapshot bytes — identical to a
    /// pre-chaos build.
    pub faults: FaultPlan,
}

impl ClusterConfig {
    /// A sensible default cluster of `machines` machines: 85% load (the
    /// regime where Rhythm and Heracles diverge), a 10-minute run, the
    /// paper's three real BE workloads, and 10% checkpoints.
    pub fn new(machines: usize) -> ClusterConfig {
        ClusterConfig {
            machines,
            threads: 4,
            shards: 0,
            policy: PlacementPolicy::InterferenceScore,
            jobs_per_machine: 4,
            checkpoint_fraction: 0.1,
            duration_s: 600,
            load: LoadGen::constant(0.85),
            seed: 42,
            controller_period_ms: 2_000,
            be_mix: vec![
                BeSpec::of(BeKind::Wordcount),
                BeSpec::of(BeKind::ImageClassify),
                BeSpec::of(BeKind::Lstm),
            ],
            telemetry: TelemetryConfig::disabled(),
            machine_specs: Vec::new(),
            job_plan: Vec::new(),
            priority_preemption: false,
            queue_aging_s: None,
            gang_patience_epochs: 4,
            faults: FaultPlan::new(),
        }
    }

    /// Scales every job in the mix (and any explicit plan) to `factor`
    /// of its solo runtime (pressure characteristics unchanged). Short
    /// runs use this so completion-time distributions are observable
    /// inside the window.
    pub fn with_scaled_jobs(mut self, factor: f64) -> ClusterConfig {
        for spec in &mut self.be_mix {
            spec.job_seconds = (spec.job_seconds * factor).max(1.0);
        }
        for entry in &mut self.job_plan {
            entry.spec.job_seconds = (entry.spec.job_seconds * factor).max(1.0);
        }
        self
    }

    /// The workload catalog (by name) the engines and the placer share.
    pub fn catalog(&self) -> BTreeMap<String, BeSpec> {
        self.be_mix
            .iter()
            .chain(self.job_plan.iter().map(|e| &e.spec))
            .map(|s| (s.name.clone(), s.clone()))
            .collect()
    }

    /// The effective job plan: the explicit `job_plan` when set,
    /// otherwise the classic derived backlog (`jobs_per_machine ×
    /// machines` solitary best-effort jobs cycling through `be_mix`).
    pub fn effective_plan(&self) -> Vec<JobSpec> {
        if !self.job_plan.is_empty() {
            return self.job_plan.clone();
        }
        (0..self.jobs_per_machine as usize * self.machines)
            .map(|i| JobSpec::solitary(self.be_mix[i % self.be_mix.len()].clone()))
            .collect()
    }

    /// Total jobs in the backlog (gang entries count every instance).
    pub fn total_jobs(&self) -> usize {
        if self.job_plan.is_empty() {
            self.jobs_per_machine as usize * self.machines
        } else {
            self.job_plan.iter().map(|e| e.gang.max(1) as usize).sum()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_index_round_trips() {
        for pods in [1usize, 2, 4] {
            for g in 0..16 {
                let r = machine_ref(g, pods);
                assert_eq!(global_index(r.replica, r.pod, pods), g);
                assert!(r.pod < pods);
            }
        }
    }

    #[test]
    fn shard_map_partitions_exactly() {
        for replicas in [1usize, 2, 7, 8, 32, 100] {
            for pods in [1usize, 2, 4] {
                for k in [0usize, 1, 3, 8, 16, 1000] {
                    let map = ShardMap::new(replicas, pods, k);
                    assert!(map.count() >= 1 && map.count() <= replicas);
                    // Replica ranges tile [0, replicas) in order.
                    let mut next = 0;
                    for s in 0..map.count() {
                        let r = map.replica_range(s);
                        assert_eq!(r.start, next, "gapless");
                        assert!(!r.is_empty(), "no empty shard");
                        for rep in r.clone() {
                            assert_eq!(map.shard_of_replica(rep), s);
                        }
                        next = r.end;
                    }
                    assert_eq!(next, replicas, "full coverage");
                    // Balanced: sizes differ by at most one.
                    let sizes: Vec<usize> =
                        (0..map.count()).map(|s| map.replica_range(s).len()).collect();
                    let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                    assert!(hi - lo <= 1, "{sizes:?}");
                    // Global indexing agrees with replica indexing.
                    for g in 0..replicas * pods {
                        let s = map.shard_of_global(g);
                        assert!(map.global_range(s).contains(&g));
                    }
                }
            }
        }
    }

    #[test]
    fn home_shards_cover_all_shards() {
        let map = ShardMap::new(16, 2, 4);
        let homes: std::collections::BTreeSet<usize> =
            (0u64..16).map(|id| map.home_shard(id)).collect();
        assert_eq!(homes.len(), 4, "round-robin reaches every shard");
    }

    #[test]
    fn replica_seeds_differ() {
        let seeds: Vec<u64> = (0..16).map(|r| replica_seed(7, r)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn explicit_plan_overrides_backlog() {
        let mut c = ClusterConfig::new(4);
        assert_eq!(c.total_jobs(), 16);
        assert_eq!(c.effective_plan().len(), 16);
        c.job_plan = vec![
            JobSpec::solitary(BeSpec::of(BeKind::Wordcount)).with_priority(1),
            JobSpec::solitary(BeSpec::of(BeKind::Lstm)).with_gang(3),
        ];
        assert_eq!(c.total_jobs(), 4, "gang counts every instance");
        assert_eq!(c.effective_plan().len(), 2);
        assert!(c.catalog().contains_key("wordcount"));
    }

    #[test]
    fn scaling_touches_plan_entries() {
        let mut c = ClusterConfig::new(4);
        c.job_plan = vec![JobSpec::solitary(BeSpec::of(BeKind::Wordcount))];
        let solo = c.job_plan[0].spec.job_seconds;
        let c = c.with_scaled_jobs(0.1);
        assert!((c.job_plan[0].spec.job_seconds - (solo * 0.1).max(1.0)).abs() < 1e-12);
    }

    #[test]
    fn scaled_jobs_shrink() {
        let c = ClusterConfig::new(4).with_scaled_jobs(0.1);
        for s in &c.be_mix {
            assert!(s.job_seconds <= 120.0, "{} {}", s.name, s.job_seconds);
        }
    }
}
