//! Cluster state model: N machines as replicas of the service.
//!
//! The paper deploys one Servpod per machine (§3.1), so an N-machine
//! cluster hosts `N / service.len()` replicas of the LC service — the
//! 4-machine testbed is exactly one e-commerce deployment. Each replica
//! runs in its own engine (with its own load generator, controllers and
//! RNG streams); the cluster layer addresses machines by a **global
//! index** `replica * pods + pod`.

use crate::placement::PlacementPolicy;
use rhythm_telemetry::TelemetryConfig;
use rhythm_workloads::{BeKind, BeSpec, LoadGen};
use std::collections::BTreeMap;

/// A global machine index resolved to its replica and Servpod.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineRef {
    /// Which service replica (engine) the machine belongs to.
    pub replica: usize,
    /// Which Servpod (machine index within the engine).
    pub pod: usize,
}

/// Resolves a global machine index (`pods` = Servpods per replica).
pub fn machine_ref(global: usize, pods: usize) -> MachineRef {
    MachineRef {
        replica: global / pods,
        pod: global % pods,
    }
}

/// The global index of `(replica, pod)`.
pub fn global_index(replica: usize, pod: usize, pods: usize) -> usize {
    replica * pods + pod
}

/// An independent seed for one replica's engine (splitmix64 over the
/// base seed, so replicas never share RNG streams and adding replicas
/// never perturbs existing ones).
pub fn replica_seed(base: u64, replica: usize) -> u64 {
    let mut z = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(replica as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Total machines; must be a multiple of the service's Servpod count.
    pub machines: usize,
    /// Worker threads for the parallel runner (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
    /// Placement policy of the BE dispatcher.
    pub policy: PlacementPolicy,
    /// Backlog size: jobs submitted at t=0 per machine.
    pub jobs_per_machine: u32,
    /// Checkpoint granularity: a killed job rolls back to the last
    /// multiple of this fraction (0.1 = checkpoints every 10%).
    pub checkpoint_fraction: f64,
    /// Run length in virtual seconds.
    pub duration_s: u64,
    /// Offered load on every replica.
    pub load: LoadGen,
    /// Base seed.
    pub seed: u64,
    /// Controller period in ms — also the cluster epoch (paper: 2000).
    pub controller_period_ms: u64,
    /// BE workload mix the backlog cycles through.
    pub be_mix: Vec<BeSpec>,
    /// Telemetry collection in every replica engine (plus the merged
    /// cluster tail series). Disabled by default.
    pub telemetry: TelemetryConfig,
}

impl ClusterConfig {
    /// A sensible default cluster of `machines` machines: 85% load (the
    /// regime where Rhythm and Heracles diverge), a 10-minute run, the
    /// paper's three real BE workloads, and 10% checkpoints.
    pub fn new(machines: usize) -> ClusterConfig {
        ClusterConfig {
            machines,
            threads: 4,
            policy: PlacementPolicy::InterferenceScore,
            jobs_per_machine: 4,
            checkpoint_fraction: 0.1,
            duration_s: 600,
            load: LoadGen::constant(0.85),
            seed: 42,
            controller_period_ms: 2_000,
            be_mix: vec![
                BeSpec::of(BeKind::Wordcount),
                BeSpec::of(BeKind::ImageClassify),
                BeSpec::of(BeKind::Lstm),
            ],
            telemetry: TelemetryConfig::disabled(),
        }
    }

    /// Scales every job in the mix to `factor` of its solo runtime
    /// (pressure characteristics unchanged). Short runs use this so
    /// completion-time distributions are observable inside the window.
    pub fn with_scaled_jobs(mut self, factor: f64) -> ClusterConfig {
        for spec in &mut self.be_mix {
            spec.job_seconds = (spec.job_seconds * factor).max(1.0);
        }
        self
    }

    /// The workload catalog (by name) the engines and the placer share.
    pub fn catalog(&self) -> BTreeMap<String, BeSpec> {
        self.be_mix
            .iter()
            .map(|s| (s.name.clone(), s.clone()))
            .collect()
    }

    /// Total jobs in the backlog.
    pub fn total_jobs(&self) -> usize {
        self.jobs_per_machine as usize * self.machines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_index_round_trips() {
        for pods in [1usize, 2, 4] {
            for g in 0..16 {
                let r = machine_ref(g, pods);
                assert_eq!(global_index(r.replica, r.pod, pods), g);
                assert!(r.pod < pods);
            }
        }
    }

    #[test]
    fn replica_seeds_differ() {
        let seeds: Vec<u64> = (0..16).map(|r| replica_seed(7, r)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j]);
            }
        }
    }

    #[test]
    fn scaled_jobs_shrink() {
        let c = ClusterConfig::new(4).with_scaled_jobs(0.1);
        for s in &c.be_mix {
            assert!(s.job_seconds <= 120.0, "{} {}", s.name, s.job_seconds);
        }
    }
}
