//! The five BE control actions (paper §3.5.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Decision of the top-level controller for one period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeAction {
    /// Kill all running BE jobs and release all their resources
    /// (the SLA is already violated).
    StopBe,
    /// Pause all running BE jobs; they keep their memory
    /// (the request load exceeds the loadlimit).
    SuspendBe,
    /// Keep BE jobs running but reduce part of their resources
    /// (slack below half the slacklimit).
    CutBe,
    /// Freeze the BE population: no new jobs, no new resources
    /// (slack between half the slacklimit and the slacklimit).
    DisallowBeGrowth,
    /// Allow subcontrollers to add BE jobs and grow their resources
    /// (comfortable slack).
    AllowBeGrowth,
}

impl BeAction {
    /// True for the two actions that take resources away from BE jobs.
    pub fn is_restrictive(&self) -> bool {
        matches!(self, BeAction::StopBe | BeAction::SuspendBe | BeAction::CutBe)
    }

    /// Severity order: higher means more restrictive (useful for
    /// hysteresis and reporting).
    pub fn severity(&self) -> u8 {
        match self {
            BeAction::AllowBeGrowth => 0,
            BeAction::DisallowBeGrowth => 1,
            BeAction::CutBe => 2,
            BeAction::SuspendBe => 3,
            BeAction::StopBe => 4,
        }
    }
}

impl rhythm_snapshot::Snapshot for BeAction {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(self.severity());
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => BeAction::AllowBeGrowth,
            1 => BeAction::DisallowBeGrowth,
            2 => BeAction::CutBe,
            3 => BeAction::SuspendBe,
            4 => BeAction::StopBe,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown BeAction severity {t}"
                )))
            }
        })
    }
}

impl fmt::Display for BeAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BeAction::StopBe => "StopBE",
            BeAction::SuspendBe => "SuspendBE",
            BeAction::CutBe => "CutBE",
            BeAction::DisallowBeGrowth => "DisallowBEGrowth",
            BeAction::AllowBeGrowth => "AllowBEGrowth",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_strictly_ordered() {
        let order = [
            BeAction::AllowBeGrowth,
            BeAction::DisallowBeGrowth,
            BeAction::CutBe,
            BeAction::SuspendBe,
            BeAction::StopBe,
        ];
        for w in order.windows(2) {
            assert!(w[0].severity() < w[1].severity());
        }
    }

    #[test]
    fn restrictive_classification() {
        assert!(BeAction::StopBe.is_restrictive());
        assert!(BeAction::SuspendBe.is_restrictive());
        assert!(BeAction::CutBe.is_restrictive());
        assert!(!BeAction::DisallowBeGrowth.is_restrictive());
        assert!(!BeAction::AllowBeGrowth.is_restrictive());
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(BeAction::StopBe.to_string(), "StopBE");
        assert_eq!(BeAction::AllowBeGrowth.to_string(), "AllowBEGrowth");
    }
}
