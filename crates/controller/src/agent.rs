//! The per-machine controller agent.
//!
//! One agent runs on every machine hosting an LC Servpod. Each period
//! (2 s in the paper) it reads the monitored load and tail latency,
//! lets the policy pick an action (Algorithm 2), and drives the four
//! subcontrollers to implement it.

use crate::action::BeAction;
use crate::policy::ThresholdPolicy;
use crate::subcontrollers::{
    cut_step, cut_step_prio, frequency_step, grow_step_prio, network_step, GrowthConfig,
};
use rhythm_machine::Machine;
use rhythm_sim::SimTime;
use rhythm_telemetry::{
    per_mille_i16, per_mille_u16, ActionCode, AdjustKind, BeSnapshot, EventKind, FlightRecorder,
};
use rhythm_workloads::BeSpec;
use serde::{Deserialize, Serialize};

/// Captures a machine's BE population and resource envelope for the
/// telemetry audit trail.
pub fn be_snapshot(machine: &Machine) -> BeSnapshot {
    let alloc = machine.be_total_alloc();
    BeSnapshot {
        instances: machine.be_count() as u32,
        running: machine.running_be_count() as u32,
        cores: alloc.cores,
        llc_ways: alloc.llc_ways,
        freq_mhz: machine.be_dvfs.current_mhz(),
        net_mbps: machine.qdisc.be_limit_mbps() as u32,
    }
}

/// Monitoring inputs for one control period.
#[derive(Clone, Copy, Debug)]
pub struct AgentInputs {
    /// Measured request load as a fraction of max load.
    pub load_fraction: f64,
    /// Measured tail latency over the monitoring window, in ms.
    pub tail_ms: f64,
    /// The SLA target in ms.
    pub sla_ms: f64,
    /// LC network usage in Mbit/s (for the network subcontroller).
    pub lc_net_mbps: f64,
    /// LC CPU utilization in `[0,1]` (for the power model).
    pub lc_cpu_util: f64,
    /// BE CPU utilization in `[0,1]`.
    pub be_cpu_util: f64,
    /// True if the scheduler has BE jobs waiting for this machine.
    pub be_jobs_pending: bool,
    /// Priority class of the BE job currently offered to this machine
    /// (0 = lowest; only meaningful while `be_jobs_pending`).
    pub be_priority: u8,
}

/// Cumulative agent statistics (reported in Table 2 / Figure 17).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AgentStats {
    /// Control periods executed.
    pub ticks: u64,
    /// Periods that observed an SLA violation (slack < 0).
    pub sla_violations: u64,
    /// BE jobs killed by StopBE.
    pub be_kills: u64,
    /// Count of each action taken, indexed by
    /// [`BeAction::severity`].
    pub action_counts: [u64; 5],
}

impl rhythm_snapshot::Snapshot for AgentStats {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.ticks);
        w.u64(self.sla_violations);
        w.u64(self.be_kills);
        for &c in &self.action_counts {
            w.u64(c);
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let ticks = r.u64()?;
        let sla_violations = r.u64()?;
        let be_kills = r.u64()?;
        let mut action_counts = [0u64; 5];
        for c in &mut action_counts {
            *c = r.u64()?;
        }
        Ok(AgentStats {
            ticks,
            sla_violations,
            be_kills,
            action_counts,
        })
    }
}

/// The per-machine agent.
#[derive(Clone, Debug)]
pub struct ControllerAgent {
    policy: ThresholdPolicy,
    growth: GrowthConfig,
    stats: AgentStats,
    last_action: Option<BeAction>,
}

impl ControllerAgent {
    /// Creates an agent with the given policy and growth configuration.
    pub fn new(policy: ThresholdPolicy, growth: GrowthConfig) -> Self {
        ControllerAgent {
            policy,
            growth,
            stats: AgentStats::default(),
            last_action: None,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ThresholdPolicy {
        &self.policy
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> AgentStats {
        self.stats
    }

    /// The most recent action (None before the first tick).
    pub fn last_action(&self) -> Option<BeAction> {
        self.last_action
    }

    /// Reinstates the agent's mutable state from a snapshot. The policy
    /// and growth configuration are *not* part of the snapshot — they are
    /// pure functions of the experiment config and the caller rebuilds
    /// the agent with [`ControllerAgent::new`] before restoring.
    pub fn restore_state(&mut self, stats: AgentStats, last_action: Option<BeAction>) {
        self.stats = stats;
        self.last_action = last_action;
    }

    /// Executes one control period: decide, then actuate.
    ///
    /// Returns the action taken.
    pub fn tick(&mut self, machine: &mut Machine, be: &BeSpec, inputs: &AgentInputs) -> BeAction {
        let mut rec = FlightRecorder::disabled();
        self.tick_traced(machine, be, inputs, &mut rec, SimTime::ZERO, 0).0
    }

    /// [`ControllerAgent::tick`] with flight-recorder instrumentation:
    /// records the decision (with per-mille load/slack) and one `Adjust`
    /// event per resource dimension the subcontrollers moved.
    ///
    /// Returns the action plus the BE snapshots before and after
    /// actuation (both zeroed when `rec` is disabled, so the untraced
    /// path does no extra work).
    pub fn tick_traced(
        &mut self,
        machine: &mut Machine,
        be: &BeSpec,
        inputs: &AgentInputs,
        rec: &mut FlightRecorder,
        now: SimTime,
        machine_idx: u16,
    ) -> (BeAction, BeSnapshot, BeSnapshot) {
        let traced = rec.is_enabled();
        let before = if traced {
            be_snapshot(machine)
        } else {
            BeSnapshot::default()
        };
        let slack = ThresholdPolicy::slack(inputs.tail_ms, inputs.sla_ms);
        let action = self.policy.decide(inputs.load_fraction, slack);
        self.stats.ticks += 1;
        if slack < 0.0 {
            self.stats.sla_violations += 1;
        }
        self.stats.action_counts[action.severity() as usize] += 1;
        match action {
            BeAction::StopBe => {
                if self.growth.priority_preemption && machine.be_count() > 0 {
                    // Victim selection: kill only the lowest-priority
                    // class; suspend the survivors so the LC service
                    // still reclaims the whole machine this period.
                    self.stats.be_kills += machine.kill_min_priority_be() as u64;
                    machine.suspend_all_be();
                } else {
                    self.stats.be_kills += machine.be_count() as u64;
                    machine.kill_all_be();
                }
                machine.qdisc.zero_be();
            }
            BeAction::SuspendBe => {
                machine.suspend_all_be();
                machine.qdisc.zero_be();
            }
            BeAction::CutBe => {
                if self.growth.priority_preemption {
                    cut_step_prio(machine, &self.growth);
                } else {
                    cut_step(machine, &self.growth);
                }
            }
            BeAction::DisallowBeGrowth => {
                // Existing BE jobs keep running untouched.
            }
            BeAction::AllowBeGrowth => {
                grow_step_prio(
                    machine,
                    be,
                    &self.growth,
                    inputs.be_jobs_pending,
                    inputs.be_priority,
                );
            }
        }
        // The frequency and network subcontrollers run every period
        // regardless of the decision (they guard power and LC traffic).
        frequency_step(machine, inputs.lc_cpu_util, inputs.be_cpu_util);
        if matches!(action, BeAction::StopBe | BeAction::SuspendBe) {
            machine.qdisc.zero_be();
        } else {
            network_step(machine, inputs.lc_net_mbps);
        }
        self.last_action = Some(action);
        debug_assert!(machine.check_invariants().is_ok());
        if !traced {
            return (action, before, before);
        }
        let after = be_snapshot(machine);
        rec.record(
            now,
            EventKind::Action {
                machine: machine_idx,
                action: ActionCode::from_severity(action.severity()),
                load_pm: per_mille_u16(inputs.load_fraction),
                slack_pm: per_mille_i16(slack),
            },
        );
        let deltas = [
            (AdjustKind::BeInstances, before.running, after.running),
            (AdjustKind::BeCores, before.cores, after.cores),
            (AdjustKind::BeLlcWays, before.llc_ways, after.llc_ways),
            (AdjustKind::BeFreqMhz, before.freq_mhz, after.freq_mhz),
            (AdjustKind::BeNetMbps, before.net_mbps, after.net_mbps),
        ];
        for (kind, was, now_v) in deltas {
            if was != now_v {
                rec.record(
                    now,
                    EventKind::Adjust {
                        machine: machine_idx,
                        kind,
                        value: now_v as i32,
                    },
                );
            }
        }
        (action, before, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Thresholds;
    use rhythm_machine::{Allocation, MachineSpec};
    use rhythm_workloads::BeKind;

    fn machine() -> Machine {
        Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 16,
                llc_ways: 0,
                mem_mb: 64 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        )
    }

    fn agent() -> ControllerAgent {
        ControllerAgent::new(
            ThresholdPolicy::rhythm(Thresholds::new(0.87, 0.08)),
            GrowthConfig::default(),
        )
    }

    fn inputs(load: f64, tail: f64) -> AgentInputs {
        AgentInputs {
            load_fraction: load,
            tail_ms: tail,
            sla_ms: 250.0,
            lc_net_mbps: 500.0,
            lc_cpu_util: 0.5,
            be_cpu_util: 0.3,
            be_jobs_pending: true,
            be_priority: 0,
        }
    }

    #[test]
    fn comfortable_slack_grows_be() {
        let mut m = machine();
        let mut a = agent();
        for _ in 0..5 {
            let act = a.tick(&mut m, &BeSpec::of(BeKind::Wordcount), &inputs(0.3, 100.0));
            assert_eq!(act, BeAction::AllowBeGrowth);
        }
        assert!(m.be_count() >= 1);
        assert!(m.qdisc.be_limit_mbps() > 0.0);
        assert_eq!(a.stats().ticks, 5);
        assert_eq!(a.stats().sla_violations, 0);
    }

    #[test]
    fn sla_violation_stops_and_counts_kills() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        for _ in 0..3 {
            a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        }
        let live = m.be_count() as u64;
        assert!(live > 0);
        let act = a.tick(&mut m, &wc, &inputs(0.3, 300.0));
        assert_eq!(act, BeAction::StopBe);
        assert_eq!(m.be_count(), 0);
        assert_eq!(a.stats().be_kills, live);
        assert_eq!(a.stats().sla_violations, 1);
        assert_eq!(m.qdisc.be_limit_mbps(), 0.0);
    }

    #[test]
    fn overload_suspends_but_keeps_instances() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        for _ in 0..3 {
            a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        }
        let live = m.be_count();
        let act = a.tick(&mut m, &wc, &inputs(0.95, 100.0));
        assert_eq!(act, BeAction::SuspendBe);
        assert_eq!(m.be_count(), live, "instances retained");
        assert_eq!(m.running_be_count(), 0);
        assert_eq!(m.qdisc.be_limit_mbps(), 0.0);
    }

    #[test]
    fn recovery_resumes_suspended_jobs() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        for _ in 0..3 {
            a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        }
        a.tick(&mut m, &wc, &inputs(0.95, 100.0));
        assert_eq!(m.running_be_count(), 0);
        a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        assert!(m.running_be_count() > 0, "Figure 17: BE returns to growth");
    }

    #[test]
    fn tight_slack_cuts_resources() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        for _ in 0..6 {
            a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        }
        let before = m.be_total_alloc().cores;
        // Slack = (250-245)/250 = 0.02 < 0.04 = slacklimit/2.
        let act = a.tick(&mut m, &wc, &inputs(0.3, 245.0));
        assert_eq!(act, BeAction::CutBe);
        assert!(m.be_total_alloc().cores < before);
        assert_eq!(m.be_count() as u64, a.stats().be_kills + m.be_count() as u64, "no kills");
    }

    #[test]
    fn disallow_growth_keeps_allocations() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        for _ in 0..4 {
            a.tick(&mut m, &wc, &inputs(0.3, 100.0));
        }
        let before = m.be_total_alloc();
        // Slack = 0.06, between slacklimit/2=0.04 and slacklimit=0.08.
        let act = a.tick(&mut m, &wc, &inputs(0.3, 235.0));
        assert_eq!(act, BeAction::DisallowBeGrowth);
        let after = m.be_total_alloc();
        assert_eq!(before.cores, after.cores);
        assert_eq!(before.llc_ways, after.llc_ways);
    }

    #[test]
    fn priority_preemption_stop_kills_low_class_only() {
        let mut m = machine();
        let mut a = ControllerAgent::new(
            ThresholdPolicy::rhythm(Thresholds::new(0.87, 0.08)),
            GrowthConfig {
                priority_preemption: true,
                ..GrowthConfig::default()
            },
        );
        let grant = |_| Allocation {
            cores: 1,
            llc_ways: 2,
            mem_mb: 2 * 1024,
            net_mbps: 0.0,
            freq_mhz: 2_000,
        };
        m.admit_be_prio("low", grant(0), 0).unwrap();
        m.admit_be_prio("high", grant(0), 2).unwrap();
        let act = a.tick(&mut m, &BeSpec::of(BeKind::Wordcount), &inputs(0.3, 300.0));
        assert_eq!(act, BeAction::StopBe);
        assert_eq!(a.stats().be_kills, 1, "only the low class was killed");
        assert_eq!(m.be_count(), 1, "high class survives (suspended)");
        assert_eq!(m.running_be_count(), 0);
        assert_eq!(m.min_be_priority(), Some(2));
        // Recovery resumes the survivor instead of re-admitting.
        let act = a.tick(&mut m, &BeSpec::of(BeKind::Wordcount), &inputs(0.3, 100.0));
        assert_eq!(act, BeAction::AllowBeGrowth);
        assert_eq!(m.running_be_count(), 1);
        assert_eq!(m.be_count(), 1);
    }

    #[test]
    fn traced_tick_records_action_then_adjustments() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        let mut rec = FlightRecorder::new(64);
        let (act, before, after) = a.tick_traced(
            &mut m,
            &wc,
            &inputs(0.3, 100.0),
            &mut rec,
            SimTime::from_secs(2),
            7,
        );
        assert_eq!(act, BeAction::AllowBeGrowth);
        assert!(after.running > before.running, "growth admitted an instance");
        let evs = rec.events();
        assert!(
            matches!(
                evs[0].kind,
                EventKind::Action {
                    machine: 7,
                    action: ActionCode::AllowBeGrowth,
                    ..
                }
            ),
            "{evs:?}"
        );
        assert!(
            evs[1..]
                .iter()
                .all(|e| matches!(e.kind, EventKind::Adjust { machine: 7, .. })),
            "{evs:?}"
        );
        assert!(evs.len() >= 2, "growth moved at least one dimension");
    }

    #[test]
    fn untraced_tick_matches_traced_decision() {
        let wc = BeSpec::of(BeKind::Wordcount);
        let (mut m1, mut a1) = (machine(), agent());
        let (mut m2, mut a2) = (machine(), agent());
        let mut rec = FlightRecorder::new(16);
        for step in [(0.3, 100.0), (0.95, 100.0), (0.3, 245.0), (0.3, 300.0)] {
            let plain = a1.tick(&mut m1, &wc, &inputs(step.0, step.1));
            let (traced, _, _) = a2.tick_traced(
                &mut m2,
                &wc,
                &inputs(step.0, step.1),
                &mut rec,
                SimTime::ZERO,
                0,
            );
            assert_eq!(plain, traced);
        }
        assert_eq!(m1.be_count(), m2.be_count());
        assert_eq!(a1.stats().action_counts, a2.stats().action_counts);
    }

    #[test]
    fn action_counts_accumulate() {
        let mut m = machine();
        let mut a = agent();
        let wc = BeSpec::of(BeKind::Wordcount);
        a.tick(&mut m, &wc, &inputs(0.3, 100.0)); // Allow.
        a.tick(&mut m, &wc, &inputs(0.95, 100.0)); // Suspend.
        a.tick(&mut m, &wc, &inputs(0.3, 300.0)); // Stop.
        let s = a.stats();
        assert_eq!(s.action_counts[BeAction::AllowBeGrowth.severity() as usize], 1);
        assert_eq!(s.action_counts[BeAction::SuspendBe.severity() as usize], 1);
        assert_eq!(s.action_counts[BeAction::StopBe.severity() as usize], 1);
        assert_eq!(a.last_action(), Some(BeAction::StopBe));
    }
}
