//! Runtime co-location controller (paper §3.5.2).
//!
//! Each machine hosting an LC Servpod runs an agent built from one
//! top-level controller and four subcontrollers. Every period (2 seconds
//! in the paper) the top controller compares the measured request load
//! and tail-latency slack against the Servpod's `loadlimit` and
//! `slacklimit` thresholds and picks one of five actions; the
//! subcontrollers then adjust core, LLC, memory, frequency and network
//! allocations accordingly.
//!
//! The Heracles baseline the paper compares against is the same machinery
//! with *uniform* thresholds (no BE when load > 0.85, no BE growth when
//! slack < 0.10) — which isolates exactly the paper's claim: the win
//! comes from per-Servpod thresholds.
//!
//! * [`action`] — the five BE control actions.
//! * [`policy`] — Algorithm 2 and the Heracles variant.
//! * [`subcontrollers`] — CPU/LLC, frequency, memory, network.
//! * [`agent`] — the per-machine agent tying policy and subcontrollers
//!   together.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod action;
pub mod agent;
pub mod policy;
pub mod subcontrollers;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-controller/v1: \
     BeAction=severity:u8 \
     AgentStats=(ticks:u64,sla_violations:u64,be_kills:u64,action_counts:[u64;5])";

pub use action::BeAction;
pub use agent::{be_snapshot, AgentInputs, AgentStats, ControllerAgent};
pub use policy::{ThresholdPolicy, Thresholds};
pub use subcontrollers::GrowthConfig;
