//! The decision policy: Algorithm 2 and the Heracles baseline.

use crate::action::BeAction;
use serde::{Deserialize, Serialize};

/// The two per-Servpod control thresholds (§3.5.1).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Request-load ceiling (fraction of max load) above which BE jobs
    /// are suspended.
    pub loadlimit: f64,
    /// Slack floor below which BE jobs may not grow (and below half of
    /// which they are cut).
    pub slacklimit: f64,
}

impl Thresholds {
    /// The uniform thresholds of the paper's Heracles implementation
    /// (§5.1): no BE when load > 0.85, no BE growth when slack < 0.10.
    pub fn heracles() -> Self {
        Thresholds {
            loadlimit: 0.85,
            slacklimit: 0.10,
        }
    }

    /// Creates thresholds, clamping both into `(0, 1]`.
    pub fn new(loadlimit: f64, slacklimit: f64) -> Self {
        Thresholds {
            loadlimit: loadlimit.clamp(0.01, 1.0),
            slacklimit: slacklimit.clamp(0.001, 1.0),
        }
    }
}

/// The threshold-based decision policy of Algorithm 2.
///
/// Rhythm instantiates one per Servpod with contribution-derived
/// thresholds; the Heracles baseline uses [`Thresholds::heracles`] on
/// every machine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ThresholdPolicy {
    thresholds: Thresholds,
}

impl ThresholdPolicy {
    /// A Rhythm per-Servpod policy.
    pub fn rhythm(thresholds: Thresholds) -> Self {
        ThresholdPolicy { thresholds }
    }

    /// The Heracles uniform-threshold baseline.
    pub fn heracles() -> Self {
        ThresholdPolicy {
            thresholds: Thresholds::heracles(),
        }
    }

    /// The thresholds in force.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// The slack for a measured tail latency:
    /// `(T_SLA − T_tail) / T_SLA`.
    pub fn slack(tail_ms: f64, sla_ms: f64) -> f64 {
        (sla_ms - tail_ms) / sla_ms
    }

    /// Algorithm 2: one decision from the measured load fraction and
    /// slack.
    pub fn decide(&self, load_fraction: f64, slack: f64) -> BeAction {
        let t = self.thresholds;
        if slack < 0.0 {
            BeAction::StopBe
        } else if load_fraction > t.loadlimit {
            BeAction::SuspendBe
        } else if slack < t.slacklimit / 2.0 {
            BeAction::CutBe
        } else if slack < t.slacklimit {
            BeAction::DisallowBeGrowth
        } else {
            BeAction::AllowBeGrowth
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ThresholdPolicy {
        ThresholdPolicy::rhythm(Thresholds::new(0.76, 0.347))
    }

    #[test]
    fn negative_slack_stops_be() {
        assert_eq!(policy().decide(0.1, -0.01), BeAction::StopBe);
        // StopBE wins even over the loadlimit.
        assert_eq!(policy().decide(0.99, -0.5), BeAction::StopBe);
    }

    #[test]
    fn overload_suspends_be() {
        assert_eq!(policy().decide(0.80, 0.5), BeAction::SuspendBe);
        assert_eq!(policy().decide(0.76, 0.5), BeAction::AllowBeGrowth, "at the limit is allowed");
    }

    #[test]
    fn tight_slack_cuts() {
        // slacklimit/2 = 0.1735.
        assert_eq!(policy().decide(0.5, 0.10), BeAction::CutBe);
        assert_eq!(policy().decide(0.5, 0.0), BeAction::CutBe);
    }

    #[test]
    fn moderate_slack_freezes_growth() {
        assert_eq!(policy().decide(0.5, 0.2), BeAction::DisallowBeGrowth);
        assert_eq!(policy().decide(0.5, 0.34), BeAction::DisallowBeGrowth);
    }

    #[test]
    fn comfortable_slack_allows_growth() {
        assert_eq!(policy().decide(0.5, 0.35), BeAction::AllowBeGrowth);
        assert_eq!(policy().decide(0.5, 0.9), BeAction::AllowBeGrowth);
    }

    #[test]
    fn heracles_uses_uniform_thresholds() {
        let h = ThresholdPolicy::heracles();
        assert_eq!(h.thresholds().loadlimit, 0.85);
        assert_eq!(h.thresholds().slacklimit, 0.10);
        assert_eq!(h.decide(0.86, 0.5), BeAction::SuspendBe);
        assert_eq!(h.decide(0.5, 0.09), BeAction::DisallowBeGrowth);
        assert_eq!(h.decide(0.5, 0.04), BeAction::CutBe);
        assert_eq!(h.decide(0.5, 0.11), BeAction::AllowBeGrowth);
    }

    #[test]
    fn rhythm_beats_heracles_on_low_contribution_pod() {
        // A Zookeeper-like Servpod: loadlimit 0.93, slacklimit 0.035.
        // At load 0.90 with slack 0.06 Heracles suspends/freezes while
        // Rhythm still grows BE jobs — the paper's core mechanism.
        let zk = ThresholdPolicy::rhythm(Thresholds::new(0.93, 0.035));
        let h = ThresholdPolicy::heracles();
        assert_eq!(zk.decide(0.90, 0.06), BeAction::AllowBeGrowth);
        assert_eq!(h.decide(0.90, 0.06), BeAction::SuspendBe);
    }

    #[test]
    fn slack_computation() {
        assert!((ThresholdPolicy::slack(125.0, 250.0) - 0.5).abs() < 1e-12);
        assert!(ThresholdPolicy::slack(300.0, 250.0) < 0.0);
    }

    #[test]
    fn thresholds_clamp() {
        let t = Thresholds::new(5.0, -1.0);
        assert_eq!(t.loadlimit, 1.0);
        assert_eq!(t.slacklimit, 0.001);
    }
}
