//! The four subcontrollers (paper §3.5.2).
//!
//! They adjust the actual resource allocations following the top
//! controller's instruction, at the paper's granularities:
//!
//! 1. **CPU/LLC** — a fresh BE job gets 1 core and 10% of one socket's
//!    LLC; CutBE/AllowBEGrowth step by the same unit.
//! 2. **Frequency** — when socket power exceeds 80% of TDP, BE frequency
//!    steps down 100 MHz to keep power headroom for the LC service.
//! 3. **Memory** — a fresh BE job gets 2 GB; cut/grow steps are 100 MB.
//! 4. **Network** — BE jobs get `B_link − 1.2 · B_LC`.

use rhythm_machine::{Allocation, Machine};
use rhythm_workloads::BeSpec;
use serde::{Deserialize, Serialize};

/// Growth/admission configuration for the CPU/LLC and memory
/// subcontrollers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GrowthConfig {
    /// Maximum BE instances per machine.
    pub max_instances: u32,
    /// Cores a fresh instance starts with.
    pub initial_cores: u32,
    /// Memory a fresh instance starts with, in MB (paper: 2 GB).
    pub initial_mem_mb: u64,
    /// Memory adjustment step, in MB (paper: 100 MB).
    pub mem_step_mb: u64,
    /// Per-instance core ceiling (growth stops there).
    pub max_cores_per_instance: u32,
    /// Ceiling on the BE class's share of the machine LLC (Intel CAT
    /// always leaves the LC class a protected partition).
    pub max_be_llc_fraction: f64,
    /// Priority-aware victim selection: StopBE kills only the
    /// lowest-priority class (suspending the rest) and CutBE shrinks only
    /// the lowest-priority running class. Off by default — the uniform
    /// paper behaviour treats every BE instance alike.
    pub priority_preemption: bool,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        GrowthConfig {
            max_instances: 16,
            initial_cores: 1,
            initial_mem_mb: 2 * 1024,
            mem_step_mb: 100,
            max_cores_per_instance: 8,
            max_be_llc_fraction: 0.4,
            priority_preemption: false,
        }
    }
}

/// The "10% LLC" step in ways: a tenth of one socket's ways (2 ways on
/// the paper's 20-way sockets).
pub fn llc_step_ways(machine: &Machine) -> u32 {
    (machine.spec().llc_ways_per_socket / 10).max(1)
}

/// CPU/LLC subcontroller: grows the BE population by one step.
///
/// Order per the paper's trial-and-error growth: first enlarge an
/// existing instance (round-robin via smallest-first), then admit a new
/// instance if below the cap. Returns `true` if anything changed.
pub fn grow_step(
    machine: &mut Machine,
    be: &BeSpec,
    cfg: &GrowthConfig,
    more_jobs_available: bool,
) -> bool {
    grow_step_prio(machine, be, cfg, more_jobs_available, 0)
}

/// [`grow_step`] with an explicit priority class for a freshly admitted
/// instance (existing instances are grown regardless of class).
pub fn grow_step_prio(
    machine: &mut Machine,
    be: &BeSpec,
    cfg: &GrowthConfig,
    more_jobs_available: bool,
    priority: u8,
) -> bool {
    let step_ways = llc_step_ways(machine);
    // Resume suspended instances first: coming back is cheaper than
    // admitting (they kept their memory).
    let suspended: Vec<u64> = machine
        .be_instances()
        .filter(|b| b.state == rhythm_machine::machine::BeState::Suspended)
        .map(|b| b.id)
        .collect();
    if let Some(&id) = suspended.first() {
        return machine.resume_be(id).is_ok();
    }
    // Enlarge the smallest growable running instance by 1 core + one LLC
    // step + one memory step.
    let grow_target = machine
        .be_instances()
        .filter(|b| {
            b.state == rhythm_machine::machine::BeState::Running
                && b.alloc.cores < cfg.max_cores_per_instance.min(be.solo_cores)
        })
        .min_by_key(|b| (b.alloc.cores, b.id))
        .map(|b| b.id);
    let be_llc_capped = machine.cat().be_fraction() + 1e-9
        >= cfg.max_be_llc_fraction.clamp(0.0, 1.0);
    if let Some(id) = grow_target {
        let delta = Allocation {
            cores: 1,
            llc_ways: if be_llc_capped { 0 } else { step_ways },
            mem_mb: cfg.mem_step_mb,
            net_mbps: 0.0,
            freq_mhz: 0,
        };
        if machine.grow_be(id, delta).is_ok() {
            return true;
        }
        // Out of cache ways? Retry growing the core only.
        let delta = Allocation {
            cores: 1,
            llc_ways: 0,
            mem_mb: cfg.mem_step_mb,
            net_mbps: 0.0,
            freq_mhz: 0,
        };
        if machine.grow_be(id, delta).is_ok() {
            return true;
        }
    }
    // Admit a new instance.
    if more_jobs_available && (machine.be_count() as u32) < cfg.max_instances {
        let req = Allocation {
            cores: cfg.initial_cores,
            llc_ways: if be_llc_capped { 0 } else { step_ways },
            mem_mb: cfg.initial_mem_mb.min(be.mem_mb),
            net_mbps: 0.0,
            freq_mhz: machine.be_dvfs.current_mhz(),
        };
        return machine.admit_be_prio(&be.name, req, priority).is_ok();
    }
    false
}

/// CPU/LLC + memory subcontrollers: cuts every running BE instance by one
/// step (1 core, one LLC step, one memory step). Returns the number of
/// instances touched.
pub fn cut_step(machine: &mut Machine, cfg: &GrowthConfig) -> usize {
    cut_ids(
        machine,
        cfg,
        |b| b.state == rhythm_machine::machine::BeState::Running && !b.alloc.is_empty(),
    )
}

/// Priority-aware CutBE: shrinks only the lowest-priority class with a
/// running, non-empty instance; higher classes keep their grants. Returns
/// the number of instances touched.
pub fn cut_step_prio(machine: &mut Machine, cfg: &GrowthConfig) -> usize {
    let victim_class = machine
        .be_instances()
        .filter(|b| b.state == rhythm_machine::machine::BeState::Running && !b.alloc.is_empty())
        .map(|b| b.priority)
        .min();
    let Some(victim_class) = victim_class else {
        return 0;
    };
    cut_ids(machine, cfg, |b| {
        b.state == rhythm_machine::machine::BeState::Running
            && !b.alloc.is_empty()
            && b.priority == victim_class
    })
}

fn cut_ids(
    machine: &mut Machine,
    cfg: &GrowthConfig,
    victim: impl Fn(&&rhythm_machine::machine::BeInstance) -> bool,
) -> usize {
    let step_ways = llc_step_ways(machine);
    let ids: Vec<u64> = machine.be_instances().filter(victim).map(|b| b.id).collect();
    let mut touched = 0;
    for id in &ids {
        let delta = Allocation {
            cores: 1,
            llc_ways: step_ways,
            mem_mb: cfg.mem_step_mb,
            net_mbps: 0.0,
            freq_mhz: 0,
        };
        if machine.cut_be(*id, delta).is_ok() {
            touched += 1;
        }
    }
    touched
}

/// Frequency subcontroller: steps the BE frequency down 100 MHz when the
/// machine power exceeds 80% of TDP, and back up when there is at least
/// 25% power headroom. Returns the new BE frequency in MHz.
pub fn frequency_step(machine: &mut Machine, lc_cpu_util: f64, be_cpu_util: f64) -> u32 {
    let lc_cores = machine.lc_alloc().cores;
    let be_cores = machine.be_total_alloc().cores;
    let power = machine.power.power_watts(
        lc_cores,
        lc_cpu_util,
        machine.lc_dvfs.current_mhz(),
        be_cores,
        be_cpu_util,
        machine.be_dvfs.current_mhz(),
    );
    if machine.power.over_budget(power) {
        machine.be_dvfs.step_down()
    } else if power < 0.75 * machine.power.tdp_watts {
        machine.be_dvfs.step_up()
    } else {
        machine.be_dvfs.current_mhz()
    }
}

/// Network subcontroller: reapplies the `B_link − 1.2 · B_LC` rule.
/// Returns the BE bandwidth ceiling in Mbit/s.
pub fn network_step(machine: &mut Machine, lc_net_mbps: f64) -> f64 {
    machine.qdisc.reallocate(lc_net_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_machine::MachineSpec;
    use rhythm_workloads::BeKind;

    fn machine() -> Machine {
        Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 16,
                llc_ways: 0,
                mem_mb: 64 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        )
    }

    fn wc() -> BeSpec {
        BeSpec::of(BeKind::Wordcount)
    }

    #[test]
    fn llc_step_is_tenth_of_socket() {
        assert_eq!(llc_step_ways(&machine()), 2);
    }

    #[test]
    fn first_growth_admits_an_instance() {
        let mut m = machine();
        assert!(grow_step(&mut m, &wc(), &GrowthConfig::default(), true));
        assert_eq!(m.be_count(), 1);
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.alloc.cores, 1);
        assert_eq!(inst.alloc.llc_ways, 2);
        assert_eq!(inst.alloc.mem_mb, 2 * 1024);
    }

    #[test]
    fn growth_enlarges_before_admitting() {
        let mut m = machine();
        let cfg = GrowthConfig::default();
        grow_step(&mut m, &wc(), &cfg, true);
        grow_step(&mut m, &wc(), &cfg, true);
        // Second step grows the existing instance rather than admitting.
        assert_eq!(m.be_count(), 1);
        assert_eq!(m.be_instances().next().unwrap().alloc.cores, 2);
    }

    #[test]
    fn growth_admits_new_after_instance_cap() {
        let mut m = machine();
        let cfg = GrowthConfig {
            max_cores_per_instance: 1,
            ..GrowthConfig::default()
        };
        grow_step(&mut m, &wc(), &cfg, true);
        grow_step(&mut m, &wc(), &cfg, true);
        assert_eq!(m.be_count(), 2);
    }

    #[test]
    fn growth_resumes_suspended_first() {
        let mut m = machine();
        let cfg = GrowthConfig::default();
        grow_step(&mut m, &wc(), &cfg, true);
        m.suspend_all_be();
        assert_eq!(m.running_be_count(), 0);
        grow_step(&mut m, &wc(), &cfg, true);
        assert_eq!(m.running_be_count(), 1);
        assert_eq!(m.be_count(), 1, "resumed, not admitted");
    }

    #[test]
    fn growth_respects_max_instances() {
        let mut m = machine();
        let cfg = GrowthConfig {
            max_instances: 2,
            max_cores_per_instance: 1,
            ..GrowthConfig::default()
        };
        for _ in 0..10 {
            grow_step(&mut m, &wc(), &cfg, true);
        }
        assert_eq!(m.be_count(), 2);
    }

    #[test]
    fn no_admission_without_pending_jobs() {
        let mut m = machine();
        assert!(!grow_step(&mut m, &wc(), &GrowthConfig::default(), false));
        assert_eq!(m.be_count(), 0);
    }

    #[test]
    fn cut_touches_every_running_instance() {
        let mut m = machine();
        let cfg = GrowthConfig {
            max_cores_per_instance: 1,
            ..GrowthConfig::default()
        };
        for _ in 0..3 {
            grow_step(&mut m, &wc(), &cfg, true);
        }
        // Grow them a bit more so the cut has something to take.
        let cfg2 = GrowthConfig::default();
        for _ in 0..3 {
            grow_step(&mut m, &wc(), &cfg2, false);
        }
        let before = m.be_total_alloc();
        let touched = cut_step(&mut m, &cfg2);
        assert_eq!(touched, 3);
        let after = m.be_total_alloc();
        assert_eq!(after.cores, before.cores - 3);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn priority_cut_spares_high_class() {
        let mut m = machine();
        let cfg = GrowthConfig::default();
        let grant = |cores| Allocation {
            cores,
            llc_ways: 2,
            mem_mb: 2 * 1024,
            net_mbps: 0.0,
            freq_mhz: 2_000,
        };
        let low = m.admit_be_prio("low", grant(3), 0).unwrap();
        let high = m.admit_be_prio("high", grant(3), 2).unwrap();
        let touched = cut_step_prio(&mut m, &cfg);
        assert_eq!(touched, 1);
        let cores_of = |m: &Machine, id| m.be_instances().find(|b| b.id == id).unwrap().alloc.cores;
        assert_eq!(cores_of(&m, low), 2, "low class shrank");
        assert_eq!(cores_of(&m, high), 3, "high class untouched");
        // Uniform cut touches both.
        let touched = cut_step(&mut m, &cfg);
        assert_eq!(touched, 2);
    }

    #[test]
    fn priority_grow_admits_at_class() {
        let mut m = machine();
        assert!(grow_step_prio(&mut m, &wc(), &GrowthConfig::default(), true, 3));
        assert_eq!(m.be_instances().next().unwrap().priority, 3);
    }

    #[test]
    fn frequency_throttles_when_hot() {
        let mut m = machine();
        for _ in 0..20 {
            grow_step(&mut m, &wc(), &GrowthConfig::default(), true);
        }
        // Full utilization everywhere: power near TDP.
        let f = frequency_step(&mut m, 1.0, 1.0);
        assert!(f < 2_000, "BE frequency stepped down, got {f}");
    }

    #[test]
    fn frequency_recovers_when_cool() {
        let mut m = machine();
        m.be_dvfs.set_mhz(1_500);
        let f = frequency_step(&mut m, 0.1, 0.0);
        assert_eq!(f, 1_600, "stepped back up");
    }

    #[test]
    fn network_rule_applied() {
        let mut m = machine();
        let be = network_step(&mut m, 2_000.0);
        assert!((be - (10_000.0 - 2_400.0)).abs() < 1e-9);
    }
}
