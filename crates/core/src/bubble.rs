//! The *indirect* profiling alternative the paper rejects (§3.2).
//!
//! "Bubble pressure" (Bubble-Up / Bubble-Flux) characterizes a Servpod by
//! the amount of tunable synthetic pressure it can tolerate before the
//! SLA breaks; the tolerated "bubble size" plays the role of an inverse
//! contribution. The paper argues this is insufficient because a bubble
//! generates *one-dimensional* interference: a CPU-intensive Servpod with
//! a large true contribution can look tolerant to an I/O bubble, and no
//! single bubble suite represents all BE jobs.
//!
//! This module implements the bubble methodology faithfully so the
//! `repro ablate` harness can compare it against the paper's *directed*
//! (sojourn-time) analysis and reproduce that argument quantitatively.

use crate::runtime::{ControlMode, Engine, EngineConfig};
use rhythm_workloads::{BeKind, BeSpec, ServiceSpec};
use serde::{Deserialize, Serialize};

/// Which one-dimensional bubble to press with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bubble {
    /// CPU-core pressure (CPU-stress).
    Cpu,
    /// LLC pressure (stream-llc).
    Llc,
    /// Memory-bandwidth pressure (stream-dram).
    Dram,
}

impl Bubble {
    /// The BE job realizing this bubble.
    pub fn be(&self) -> BeSpec {
        match self {
            Bubble::Cpu => BeSpec::of(BeKind::CpuStress),
            Bubble::Llc => BeSpec::of(BeKind::StreamLlc { big: true }),
            Bubble::Dram => BeSpec::of(BeKind::StreamDram { big: true }),
        }
    }
}

/// Result of pressing one Servpod with one bubble.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BubbleScore {
    /// Servpod name.
    pub pod: String,
    /// The bubble used.
    pub bubble: Bubble,
    /// Largest tolerated bubble size in cores (0 = even the smallest
    /// bubble violates; `max_size` = never violated in the sweep).
    pub tolerated_cores: u32,
}

/// Sweeps bubble sizes against one Servpod until the SLA breaks.
///
/// * `load` — LC load fraction during the pressure test.
/// * `sla_ms` — the SLA to check against.
/// * `max_size` — largest bubble, in cores.
pub fn press(
    service: &ServiceSpec,
    pod: usize,
    bubble: Bubble,
    load: f64,
    sla_ms: f64,
    max_size: u32,
    seed: u64,
) -> BubbleScore {
    let mut tolerated = 0;
    for cores in 1..=max_size {
        let mut cfg = EngineConfig::solo(load, 30, seed ^ ((cores as u64) << 16));
        cfg.bes = vec![bubble.be()];
        cfg.mode = ControlMode::Static {
            instances: 1,
            cores,
            llc_ways: 2 * cores.min(8),
            pods: vec![pod],
        };
        let out = Engine::new(service.clone(), cfg).run();
        if out.worst_window_p99_ms > sla_ms {
            break;
        }
        tolerated = cores;
    }
    BubbleScore {
        pod: service.nodes[pod].component.name.clone(),
        bubble,
        tolerated_cores: tolerated,
    }
}

/// Bubble-derived "contributions": pods ranked by how little pressure
/// they tolerate (the indirect method's stand-in for Equation 4).
///
/// Returns, per Servpod, `1 / (1 + tolerated_cores)` for the given
/// bubble — higher means "contributes more" under the bubble methodology.
pub fn bubble_contributions(
    service: &ServiceSpec,
    bubble: Bubble,
    load: f64,
    sla_ms: f64,
    seed: u64,
) -> Vec<BubbleScore> {
    (0..service.len())
        .map(|pod| press(service, pod, bubble, load, sla_ms, 12, seed))
        .collect()
}

/// Kendall-style pairwise agreement between two rankings given as
/// comparable scores (1.0 = identical order, 0.0 = fully reversed).
///
/// Used to quantify how well a bubble ranking matches the directed
/// contribution ranking.
pub fn ranking_agreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "ranking length mismatch");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0.0f64;
    let mut total = 0u32;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da * db > 0.0 || (da == 0.0 && db == 0.0) {
                agree += 1.0;
            } else if da == 0.0 || db == 0.0 {
                // A tie on one side is half-informative.
                agree += 0.5;
            }
            total += 1;
        }
    }
    agree / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::apps;

    #[test]
    fn bubbles_map_to_their_stressors() {
        assert_eq!(Bubble::Cpu.be().name, "CPU-stress");
        assert_eq!(Bubble::Llc.be().name, "stream-llc");
        assert_eq!(Bubble::Dram.be().name, "stream-dram");
    }

    #[test]
    fn sensitive_pod_tolerates_less_dram_bubble() {
        let service = apps::redis();
        // A loose SLA relative to the solo tail at this load.
        let solo = Engine::new(service.clone(), EngineConfig::solo(0.7, 30, 9)).run();
        let sla = solo.worst_window_p99_ms * 1.6;
        let master = press(&service, 0, Bubble::Dram, 0.7, sla, 8, 9);
        let slave = press(&service, 1, Bubble::Dram, 0.7, sla, 8, 9);
        assert!(
            master.tolerated_cores <= slave.tolerated_cores,
            "master tolerates {} vs slave {}",
            master.tolerated_cores,
            slave.tolerated_cores
        );
    }

    #[test]
    fn ranking_agreement_bounds() {
        assert_eq!(ranking_agreement(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
        assert_eq!(ranking_agreement(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), 0.0);
        let half = ranking_agreement(&[1.0, 2.0, 3.0], &[2.0, 1.0, 3.0]);
        assert!(half > 0.0 && half < 1.0);
        // Ties on one side are half-informative.
        let tied = ranking_agreement(&[1.0, 2.0], &[5.0, 5.0]);
        assert_eq!(tied, 0.5);
        assert_eq!(ranking_agreement(&[1.0], &[5.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ranking_agreement_length_mismatch() {
        ranking_agreement(&[1.0], &[1.0, 2.0]);
    }
}
