//! Co-location experiment orchestration.
//!
//! The evaluation (§5) repeatedly runs the same shape of experiment: an
//! LC service, a BE workload, a load generator, and a controller (Rhythm
//! with per-Servpod thresholds, or Heracles with uniform ones). A
//! [`ServiceContext`] prepares the expensive one-time work — SLA
//! calibration and the profiling pipeline — and then stamps out runs.

use crate::metrics::RunMetrics;
use crate::profiling::{calibrate_sla, derive_thresholds, profile_service, ProfileConfig, ServiceThresholds};
use crate::runtime::{ControlMode, Engine, EngineConfig, EngineOutput};
use rhythm_controller::Thresholds;
use rhythm_sim::SimDuration;
use rhythm_workloads::{BeSpec, LoadGen, ServiceSpec};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::Arc;

/// Which controller manages BE jobs in a run.
#[derive(Clone, Debug, PartialEq)]
pub enum ControllerChoice {
    /// LC alone, no BE jobs.
    Solo,
    /// Rhythm: the per-Servpod thresholds derived by profiling.
    Rhythm,
    /// Heracles: uniform thresholds on every machine.
    Heracles,
    /// Custom per-Servpod thresholds (threshold-sweep experiments).
    Custom(Vec<Thresholds>),
}

/// Experiment configuration for one (service, BE, load) cell.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// BE workloads (usually a single job type; several = mixed).
    pub bes: Vec<BeSpec>,
    /// Offered load.
    pub load: LoadGen,
    /// Run length in seconds.
    pub duration_s: u64,
    /// Seed for this run.
    pub seed: u64,
    /// Record the Figure 17 timeline.
    pub record_timeline: bool,
    /// Controller period in ms (paper: 2000). Trace-driven experiments
    /// that compress days of load into minutes scale this down
    /// proportionally, keeping ramp speed per control period realistic.
    pub controller_period_ms: u64,
}

/// Rhythm vs Heracles outcome for one cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// Metrics under Rhythm.
    pub rhythm: RunMetrics,
    /// Metrics under Heracles.
    pub heracles: RunMetrics,
}

/// One-time prepared state for a service: measured SLA, profile and
/// thresholds.
#[derive(Clone, Debug)]
pub struct ServiceContext {
    /// The service (shared: every engine stamped out of this context
    /// reuses the same allocation).
    pub service: Arc<ServiceSpec>,
    /// Measured SLA (paper methodology).
    pub sla_ms: f64,
    /// Derived contributions and thresholds.
    pub thresholds: ServiceThresholds,
    /// Base seed.
    pub seed: u64,
}

impl ServiceContext {
    /// Calibrates the SLA, profiles the service and derives thresholds.
    ///
    /// `probe_bes` are the representative mixed BEs used by the
    /// Algorithm 1 probation runs (the paper recommends mixed-intensity
    /// BEs).
    pub fn prepare(service: ServiceSpec, probe_bes: &[BeSpec], seed: u64) -> ServiceContext {
        let sla_ms = calibrate_sla(&service, seed);
        let profile = profile_service(
            &service,
            &ProfileConfig {
                seed,
                ..ProfileConfig::default()
            },
        );
        let thresholds = derive_thresholds(&service, &profile, sla_ms, probe_bes, seed);
        ServiceContext {
            service: Arc::new(service),
            sla_ms,
            thresholds,
            seed,
        }
    }

    /// The per-Servpod thresholds for a controller choice. Borrows the
    /// prepared thresholds where possible; only Heracles (uniform
    /// values, materialized per pod) allocates.
    pub fn thresholds_for<'a>(&'a self, choice: &'a ControllerChoice) -> Cow<'a, [Thresholds]> {
        match choice {
            ControllerChoice::Rhythm => Cow::Borrowed(&self.thresholds.thresholds[..]),
            ControllerChoice::Heracles => Cow::Owned(vec![Thresholds::heracles(); self.service.len()]),
            ControllerChoice::Custom(t) => Cow::Borrowed(&t[..]),
            ControllerChoice::Solo => Cow::Borrowed(&[]),
        }
    }

    /// Builds the engine configuration one experiment cell runs with —
    /// the single place the (choice, cell) → engine recipe lives, so
    /// other frontends (the cluster runner) stamp out identical engines.
    pub fn engine_config(&self, choice: &ControllerChoice, cfg: &ExperimentConfig) -> EngineConfig {
        let mut ecfg = EngineConfig::solo(0.0, cfg.duration_s, cfg.seed);
        ecfg.load = cfg.load.clone();
        ecfg.sla_ms = self.sla_ms;
        ecfg.record_timeline = cfg.record_timeline;
        ecfg.duration = SimDuration::from_secs(cfg.duration_s);
        ecfg.controller_period = SimDuration::from_millis(cfg.controller_period_ms.max(100));
        match choice {
            ControllerChoice::Solo => {
                ecfg.mode = ControlMode::Solo;
            }
            other => {
                ecfg.bes = cfg.bes.clone();
                ecfg.mode = ControlMode::Managed {
                    thresholds: self.thresholds_for(other).into_owned(),
                };
            }
        }
        ecfg
    }

    /// Runs one experiment cell.
    pub fn run(&self, choice: ControllerChoice, cfg: &ExperimentConfig) -> (EngineOutput, RunMetrics) {
        let ecfg = self.engine_config(&choice, cfg);
        let out = Engine::new(Arc::clone(&self.service), ecfg).run();
        let metrics = RunMetrics::from_output(&out);
        (out, metrics)
    }

    /// Runs Rhythm and Heracles on the same cell (same seed and load).
    pub fn compare(&self, cfg: &ExperimentConfig) -> ColocationOutcome {
        let (_, rhythm) = self.run(ControllerChoice::Rhythm, cfg);
        let (_, heracles) = self.run(ControllerChoice::Heracles, cfg);
        ColocationOutcome { rhythm, heracles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::improvement;
    use rhythm_workloads::{apps, BeKind};

    fn ctx() -> ServiceContext {
        ServiceContext::prepare(
            apps::solr(),
            &[BeSpec::of(BeKind::Wordcount)],
            11,
        )
    }

    #[test]
    fn prepare_produces_thresholds() {
        let c = ctx();
        assert_eq!(c.thresholds.thresholds.len(), 2);
        assert!(c.sla_ms > 0.0);
        // Zookeeper's loadlimit should be at least Apache+Solr's (it is
        // the stabler pod).
        let zk = c.service.index_of("zookeeper").unwrap();
        let front = c.service.index_of("apache+solr").unwrap();
        assert!(
            c.thresholds.thresholds[zk].slacklimit <= c.thresholds.thresholds[front].slacklimit
                || c.thresholds.thresholds[zk].loadlimit >= c.thresholds.thresholds[front].loadlimit,
            "zookeeper is controlled less conservatively"
        );
    }

    #[test]
    fn rhythm_beats_heracles_at_high_load() {
        let c = ctx();
        let cell = ExperimentConfig {
            bes: vec![BeSpec::of(BeKind::Wordcount)],
            load: LoadGen::constant(0.85),
            duration_s: 60,
            seed: 23,
            record_timeline: false,
            controller_period_ms: 2_000,
        };
        let outcome = c.compare(&cell);
        // At 85% load Heracles refuses co-location (loadlimit 0.85) while
        // Rhythm still runs BE jobs on tolerant pods.
        assert!(
            outcome.rhythm.be_throughput > outcome.heracles.be_throughput,
            "rhythm {} vs heracles {}",
            outcome.rhythm.be_throughput,
            outcome.heracles.be_throughput
        );
        let emu_gain = improvement(outcome.rhythm.emu, outcome.heracles.emu);
        assert!(emu_gain > 0.0, "EMU gain {emu_gain}");
    }

    #[test]
    fn both_controllers_respect_sla() {
        let c = ctx();
        let cell = ExperimentConfig {
            bes: vec![BeSpec::of(BeKind::StreamDram { big: true })],
            load: LoadGen::constant(0.6),
            duration_s: 60,
            seed: 31,
            record_timeline: false,
            controller_period_ms: 2_000,
        };
        let outcome = c.compare(&cell);
        assert!(
            outcome.rhythm.tail_ratio <= 1.05,
            "rhythm tail ratio {}",
            outcome.rhythm.tail_ratio
        );
        assert!(
            outcome.heracles.tail_ratio <= 1.05,
            "heracles tail ratio {}",
            outcome.heracles.tail_ratio
        );
    }
}
