//! Rhythm's core: deployment, runtime and experiments.
//!
//! This crate assembles the substrates into the system of the paper:
//!
//! * [`servpod`] — the Servpod abstraction (§3.1): LC components mapped
//!   onto physical machines, one Servpod per machine.
//! * [`runtime`] — the discrete-event cluster engine: open-loop request
//!   arrivals flow through the service DAG's queueing network while BE
//!   jobs run under per-machine controller agents, with interference
//!   coupling the two.
//! * [`metrics`] — EMU (effective machine utilization), CPU and memory
//!   bandwidth utilization, tail latencies (§5.1 metrics).
//! * [`profiling`] — the offline pipeline (§3.2): solo-run sweep →
//!   request tracing → contribution analysis → loadlimit/slacklimit.
//! * [`experiment`] — co-location experiment runner comparing Rhythm,
//!   Heracles and solo baselines.
//! * [`bubble`] — the indirect ("bubble pressure") profiling alternative
//!   the paper rejects in §3.2, implemented for comparison.
//! * [`timeline`] — the Figure 17 running-process recorder.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod bubble;
pub mod experiment;
pub mod metrics;
pub mod profiling;
pub mod runtime;
pub mod servpod;
pub mod timeline;

pub use experiment::{ColocationOutcome, ExperimentConfig};
pub use metrics::{PodMetrics, RunMetrics};
pub use profiling::{profile_service, derive_thresholds, ProfileConfig, ServiceThresholds};
pub use runtime::{ControlMode, Engine, EngineConfig, EngineOutput};
pub use servpod::{Deployment, Servpod};
