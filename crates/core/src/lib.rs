//! Rhythm's core: deployment, runtime and experiments.
//!
//! This crate assembles the substrates into the system of the paper:
//!
//! * [`servpod`] — the Servpod abstraction (§3.1): LC components mapped
//!   onto physical machines, one Servpod per machine.
//! * [`runtime`] — the discrete-event cluster engine: open-loop request
//!   arrivals flow through the service DAG's queueing network while BE
//!   jobs run under per-machine controller agents, with interference
//!   coupling the two.
//! * [`metrics`] — EMU (effective machine utilization), CPU and memory
//!   bandwidth utilization, tail latencies (§5.1 metrics).
//! * [`profiling`] — the offline pipeline (§3.2): solo-run sweep →
//!   request tracing → contribution analysis → loadlimit/slacklimit.
//! * [`experiment`] — co-location experiment runner comparing Rhythm,
//!   Heracles and solo baselines.
//! * [`bubble`] — the indirect ("bubble pressure") profiling alternative
//!   the paper rejects in §3.2, implemented for comparison.
//! * [`timeline`] — the Figure 17 running-process recorder.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod bubble;
pub mod experiment;
pub mod metrics;
pub mod profiling;
pub mod runtime;
pub mod servpod;
pub mod timeline;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-core/v1: \
     Ev=tag:u8+payload Visit=(node,parent,children,parallel,phase,n_phases,\
     pending_children,phase_start,sojourn_ns,phase_rec) \
     Request=(arrival,visits[..used]) NodeState=(workers,busy,queue,inflation,\
     busy_area:u128,last_busy_change,visits_done_window) \
     InflationInputs=(epoch,lc_mhz,be_mhz,be_limit_bits,rate_bits) \
     BeProgress=(workload,done) BeAdmission=(machine,instance,workload) \
     BeKill=(machine,instance,workload,progress) TimelinePoint=8 fields \
     EngineMachineSummary=9 fields EngineSummary=(completed_total,inflight,\
     pending_events,machines) \
     Engine=machines,nodes,agents,be_specs,cal,rngs(arrival,service,path),\
     requests,inflation_inputs,tail,arrivals_ring,hist,completed,completed_total,\
     window_hist,window_epoch,worst_window_p99,sojourn_stats,sojourns,timeline,\
     integrals,offers,be_job_progress,last_progress_at,logs,telemetry,audit_prev";

pub use experiment::{ColocationOutcome, ExperimentConfig};
pub use metrics::{PodMetrics, RunMetrics};
pub use profiling::{profile_service, derive_thresholds, ProfileConfig, ServiceThresholds};
pub use runtime::{
    BusyTransition, ControlMode, Engine, EngineConfig, EngineMachineSummary, EngineOutput,
    EngineSummary,
};
pub use servpod::{Deployment, Servpod};
