//! The evaluation metrics of §5.1.
//!
//! * **EMU** (effective machine utilization) = LC throughput + BE
//!   throughput, where LC throughput is the request load normalized to
//!   max load and BE throughput is jobs-per-hour normalized to a solo
//!   run. EMU may exceed 100% thanks to resource sharing.
//! * **CPU utilization** and **memory-bandwidth utilization** averaged
//!   across the service's machines.
//! * SLA accounting: worst tail relative to the SLA, violation counts,
//!   BE kills.

use crate::runtime::EngineOutput;
use serde::{Deserialize, Serialize};

/// Per-Servpod metrics of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PodMetrics {
    /// Servpod name.
    pub name: String,
    /// Normalized BE throughput at this machine.
    pub be_throughput: f64,
    /// Machine CPU utilization (LC + BE), `[0,1]`.
    pub cpu_util: f64,
    /// Memory-bandwidth utilization (LC + BE), `[0,1]`.
    pub membw_util: f64,
    /// Average live BE instances.
    pub be_instances: f64,
    /// Controller periods that observed an SLA violation.
    pub sla_violations: u64,
    /// BE jobs killed by StopBE.
    pub be_kills: u64,
}

/// Service-level metrics of one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Average LC load (requests served / max load).
    pub lc_throughput: f64,
    /// Average normalized BE throughput across machines.
    pub be_throughput: f64,
    /// `lc_throughput + be_throughput`.
    pub emu: f64,
    /// Average machine CPU utilization.
    pub cpu_util: f64,
    /// Average machine memory-bandwidth utilization.
    pub membw_util: f64,
    /// 99th-percentile latency over the measured window, in ms.
    pub p99_ms: f64,
    /// The SLA target in ms.
    pub sla_ms: f64,
    /// `p99 / SLA` (≤ 1 means the SLA held).
    pub tail_ratio: f64,
    /// Total controller periods with slack < 0.
    pub sla_violations: u64,
    /// Total BE jobs killed.
    pub be_kills: u64,
    /// Per-Servpod breakdown.
    pub pods: Vec<PodMetrics>,
}

impl RunMetrics {
    /// Summarizes an engine run.
    pub fn from_output(out: &EngineOutput) -> RunMetrics {
        let pods: Vec<PodMetrics> = out
            .pods
            .iter()
            .map(|p| PodMetrics {
                name: p.name.clone(),
                be_throughput: p.be_throughput,
                cpu_util: p.cpu_util,
                membw_util: p.membw_util,
                be_instances: p.be_instances_avg,
                sla_violations: p.agent.map(|a| a.sla_violations).unwrap_or(0),
                be_kills: p.agent.map(|a| a.be_kills).unwrap_or(0),
            })
            .collect();
        let n = pods.len().max(1) as f64;
        let be_throughput = pods.iter().map(|p| p.be_throughput).sum::<f64>() / n;
        let cpu_util = pods.iter().map(|p| p.cpu_util).sum::<f64>() / n;
        let membw_util = pods.iter().map(|p| p.membw_util).sum::<f64>() / n;
        let lc_throughput = out.offered_load_avg;
        let p99 = out.p99_ms();
        RunMetrics {
            lc_throughput,
            be_throughput,
            emu: lc_throughput + be_throughput,
            cpu_util,
            membw_util,
            p99_ms: p99,
            sla_ms: out.sla_ms,
            tail_ratio: if out.sla_ms.is_finite() && out.sla_ms > 0.0 {
                p99 / out.sla_ms
            } else {
                0.0
            },
            sla_violations: pods.iter().map(|p| p.sla_violations).sum(),
            be_kills: pods.iter().map(|p| p.be_kills).sum(),
            pods,
        }
    }

    /// Finds the metrics of a Servpod by name.
    pub fn pod(&self, name: &str) -> Option<&PodMetrics> {
        self.pods.iter().find(|p| p.name == name)
    }
}

/// Relative improvement `(a − b) / b`, guarded against a zero baseline
/// (returns `a` in that case, matching "improvement over nothing").
pub fn improvement(a: f64, b: f64) -> f64 {
    if b.abs() < 1e-12 {
        a
    } else {
        (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{Engine, EngineConfig};
    use rhythm_workloads::apps;

    #[test]
    fn from_output_aggregates() {
        let out = Engine::new(apps::solr(), EngineConfig::solo(0.5, 20, 1)).run();
        let m = RunMetrics::from_output(&out);
        assert_eq!(m.pods.len(), 2);
        assert!(m.lc_throughput > 0.4 && m.lc_throughput < 0.6);
        assert_eq!(m.be_throughput, 0.0, "solo run has no BE");
        assert!((m.emu - m.lc_throughput).abs() < 1e-12);
        assert!(m.cpu_util > 0.0);
        assert_eq!(m.sla_violations, 0);
        assert!(m.pod("zookeeper").is_some());
        assert!(m.pod("nope").is_none());
    }

    #[test]
    fn improvement_math() {
        assert!((improvement(1.2, 1.0) - 0.2).abs() < 1e-12);
        assert!((improvement(0.8, 1.0) + 0.2).abs() < 1e-12);
        assert_eq!(improvement(0.5, 0.0), 0.5);
    }

    #[test]
    fn tail_ratio_guards_infinite_sla() {
        let out = Engine::new(apps::solr(), EngineConfig::solo(0.3, 15, 2)).run();
        let m = RunMetrics::from_output(&out);
        assert_eq!(m.tail_ratio, 0.0, "solo config has infinite SLA");
    }
}
