//! The offline profiling pipeline (§3.2): "profiling LC once, feedback
//! control BE".
//!
//! For a newly deployed LC service, Rhythm activates the request tracer
//! and contribution analyzer exactly once:
//!
//! 1. **Solo-run sweep** — the service runs alone under a load generator
//!    sweeping a spectrum of load levels; every request's system events
//!    are captured and paired into per-Servpod sojourn times.
//! 2. **Contribution analysis** — Equations 1-5 turn the per-load mean
//!    sojourns into per-Servpod contributions.
//! 3. **Thresholding** — `loadlimit` from the sojourn CoV curves,
//!    `slacklimit` from Algorithm 1 probation runs with representative
//!    mixed BEs.

use crate::runtime::{ControlMode, Engine, EngineConfig, EngineOutput};
use rhythm_analyzer::contribution::{contributions, Contribution};
use rhythm_analyzer::loadlimit::loadlimits;
use rhythm_analyzer::profile::{LoadLevel, SojournProfile};
use rhythm_analyzer::slacklimit::find_slacklimits;
use rhythm_controller::Thresholds;
use rhythm_sim::OnlineStats;
use rhythm_tracer::{CaptureConfig, EventCapture, Pairer};
use rhythm_workloads::{BeSpec, ServiceSpec};
use serde::{Deserialize, Serialize};

/// Profiling configuration.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Load levels to sweep (fractions of max load).
    pub load_levels: Vec<f64>,
    /// Run length per level in seconds.
    pub duration_s: u64,
    /// RNG seed.
    pub seed: u64,
    /// Minimum requests per level: low-load levels are run longer so CoV
    /// estimates stay comparable across the sweep.
    pub min_requests: u64,
    /// If true, sojourns are extracted through the full tracer pipeline
    /// (event capture → noise filter → pairing); if false, ground-truth
    /// sojourns are read directly from the engine (faster, used by the
    /// large experiment sweeps).
    pub use_tracer: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            load_levels: (1..=19).map(|i| i as f64 * 0.05).collect(),
            duration_s: 40,
            seed: 42,
            min_requests: 8_000,
            use_tracer: false,
        }
    }
}

/// The thresholds Rhythm derives for one service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceThresholds {
    /// Per-Servpod contributions (Equations 1-5).
    pub contributions: Vec<Contribution>,
    /// Per-Servpod thresholds.
    pub thresholds: Vec<Thresholds>,
    /// The measured SLA in ms (the paper's methodology: the worst tail
    /// at max load during a solo run).
    pub sla_ms: f64,
}

/// Measures the service's SLA the way the paper does (§5.1): run the
/// service solo at its maximum allowable load, record the tail latency
/// per interval, "and set the worst one as the SLA". The worst
/// per-window tail over a long run sits well above the aggregate tail,
/// which is what gives the controller its working slack at lower loads.
pub fn calibrate_sla(service: &ServiceSpec, seed: u64) -> f64 {
    let cfg = EngineConfig::solo(1.0, 600, seed ^ 0x51A);
    let out = Engine::new(service.clone(), cfg).run();
    out.worst_window_p99_ms * 1.05
}

/// Runs the solo-run sweep and builds the sojourn profile.
pub fn profile_service(service: &ServiceSpec, cfg: &ProfileConfig) -> SojournProfile {
    assert!(!cfg.load_levels.is_empty(), "no load levels");
    let n = service.len();
    let mut levels = Vec::with_capacity(cfg.load_levels.len());
    let maxload = service.sim_maxload_rps();
    for (li, &load) in cfg.load_levels.iter().enumerate() {
        // Stretch low-load levels so every level sees enough requests.
        let needed_s = (cfg.min_requests as f64 / (load.max(0.01) * maxload)).ceil() as u64;
        let duration = cfg.duration_s.max(needed_s);
        let mut ecfg = EngineConfig::solo(load, duration, cfg.seed.wrapping_add(li as u64));
        ecfg.collect_sojourns = !cfg.use_tracer;
        ecfg.capture_visits = cfg.use_tracer;
        let out = Engine::new(service.clone(), ecfg).run();
        let (means, covs, requests) = if cfg.use_tracer {
            extract_via_tracer(&out, n, cfg.seed.wrapping_add(li as u64))
        } else {
            extract_ground_truth(&out, n)
        };
        levels.push(LoadLevel {
            load,
            mean_sojourn_ms: means,
            sojourn_cov: covs,
            tail_ms: out.p99_ms(),
            requests,
        });
    }
    SojournProfile {
        pod_names: service
            .component_names()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        levels,
    }
}

fn extract_ground_truth(out: &EngineOutput, n: usize) -> (Vec<f64>, Vec<f64>, u64) {
    let sojourns = out
        .sojourns
        .as_ref()
        // PANIC: the calibration run above enables sojourn capture.
        .expect("engine collected sojourns");
    let mut means = Vec::with_capacity(n);
    let mut covs = Vec::with_capacity(n);
    for pod_sojourns in sojourns.iter().take(n) {
        let mut stats = OnlineStats::new();
        for &s in pod_sojourns {
            stats.push(s);
        }
        means.push(stats.mean());
        covs.push(stats.cov());
    }
    (means, covs, out.completed)
}

/// Runs the §3.3 tracer over the captured visit trees: synthesize the
/// kernel event stream (with noise), filter, pair, and read per-request
/// sojourns back out.
fn extract_via_tracer(out: &EngineOutput, n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, u64) {
    let mut capture = EventCapture::new(
        CaptureConfig {
            noise_events_per_request: 4,
            ..CaptureConfig::default()
        },
        seed,
    );
    for tree in &out.visit_trees {
        capture.record_request(tree);
    }
    let requests = capture.request_count();
    let events = capture.finish();
    let paired = Pairer::new(0).pair(&events);
    let mut means = Vec::with_capacity(n);
    let mut covs = Vec::with_capacity(n);
    for pod in 0..n {
        let sojourns = paired.sojourns(pod as u32);
        let mut stats = OnlineStats::new();
        for s in sojourns {
            stats.push(s);
        }
        means.push(stats.mean());
        covs.push(stats.cov());
    }
    (means, covs, requests)
}

/// Derives the per-Servpod thresholds from a profile (§3.5.1).
///
/// `loadlimit` comes from the CoV curves; `slacklimit` from Algorithm 1,
/// where each probation run co-locates the service with the given mixed
/// BEs at a representative load and checks the SLA.
pub fn derive_thresholds(
    service: &ServiceSpec,
    profile: &SojournProfile,
    sla_ms: f64,
    probe_bes: &[BeSpec],
    seed: u64,
) -> ServiceThresholds {
    let contribs = contributions(profile, service);
    let lls = loadlimits(profile);
    let raw: Vec<f64> = contribs.iter().map(|c| c.value).collect();
    let probe_duration = 300;
    let search = find_slacklimits(&raw, |candidate| {
        let thresholds: Vec<Thresholds> = lls
            .iter()
            .zip(candidate)
            .map(|(&ll, &sl)| Thresholds::new(ll, sl))
            .collect();
        let mut cfg = EngineConfig::solo(0.8, probe_duration, seed ^ 0xBEE5);
        cfg.bes = probe_bes.to_vec();
        cfg.sla_ms = sla_ms;
        cfg.mode = ControlMode::Managed { thresholds };
        let out = Engine::new(service.clone(), cfg).run();
        // Algorithm 1's SLA_evaluation(): any control period that saw
        // slack < 0 during the probation counts as a violation.
        let m = crate::metrics::RunMetrics::from_output(&out);
        m.sla_violations > 0 || out.p99_ms() > sla_ms
    });
    let thresholds = lls
        .iter()
        .zip(&search.slacklimits)
        .map(|(&ll, &sl)| Thresholds::new(ll, sl))
        .collect();
    ServiceThresholds {
        contributions: contribs,
        thresholds,
        sla_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::apps;
    use rhythm_workloads::BeKind;

    fn quick_cfg() -> ProfileConfig {
        ProfileConfig {
            load_levels: vec![0.2, 0.4, 0.6, 0.8],
            duration_s: 15,
            seed: 7,
            min_requests: 500,
            use_tracer: false,
        }
    }

    #[test]
    fn profile_has_expected_shape() {
        let service = apps::ecommerce();
        let p = profile_service(&service, &quick_cfg());
        assert!(p.validate().is_ok());
        assert_eq!(p.pods(), 4);
        assert_eq!(p.level_count(), 4);
        // Tail grows with load.
        let tails = p.tail_series();
        assert!(tails.last().unwrap() > tails.first().unwrap());
    }

    #[test]
    fn mysql_contributes_most_in_ecommerce() {
        let service = apps::ecommerce();
        let p = profile_service(&service, &quick_cfg());
        let c = contributions(&p, &service);
        let mysql = c.iter().find(|x| x.name == "mysql").unwrap();
        for other in c.iter().filter(|x| x.name != "mysql") {
            assert!(
                mysql.value >= other.value,
                "mysql {} vs {} {}",
                mysql.value,
                other.name,
                other.value
            );
        }
    }

    #[test]
    fn tracer_and_ground_truth_agree_on_means() {
        let service = apps::solr();
        let mut cfg = quick_cfg();
        cfg.load_levels = vec![0.3, 0.6];
        let truth = profile_service(&service, &cfg);
        cfg.use_tracer = true;
        let traced = profile_service(&service, &cfg);
        for j in 0..truth.level_count() {
            for i in 0..truth.pods() {
                let a = truth.levels[j].mean_sojourn_ms[i];
                let b = traced.levels[j].mean_sojourn_ms[i];
                assert!(
                    (a - b).abs() / a.max(1e-9) < 0.02,
                    "pod {i} level {j}: truth {a} vs traced {b}"
                );
            }
        }
    }

    #[test]
    fn calibrated_sla_is_generous_at_low_load() {
        let service = apps::solr();
        let sla = calibrate_sla(&service, 3);
        assert!(sla > 0.0);
        let out = Engine::new(service, EngineConfig::solo(0.3, 15, 3)).run();
        assert!(out.p99_ms() < sla, "p99 at 30% load is inside the SLA");
    }

    #[test]
    fn thresholds_reflect_contribution_order() {
        let service = apps::ecommerce();
        let p = profile_service(&service, &quick_cfg());
        let sla = calibrate_sla(&service, 7);
        let t = derive_thresholds(
            &service,
            &p,
            sla,
            &[BeSpec::of(BeKind::Wordcount)],
            7,
        );
        assert_eq!(t.thresholds.len(), 4);
        let idx = |name: &str| service.index_of(name).unwrap();
        // MySQL (largest contribution) gets the largest slacklimit —
        // controlled most conservatively (paper: 0.347 vs 0.078/0.04/
        // 0.032).
        let mysql = t.thresholds[idx("mysql")].slacklimit;
        for name in ["haproxy", "tomcat", "amoeba"] {
            assert!(
                mysql >= t.thresholds[idx(name)].slacklimit,
                "mysql {} vs {name} {}",
                mysql,
                t.thresholds[idx(name)].slacklimit
            );
        }
        // Loadlimits are sane fractions.
        for th in &t.thresholds {
            assert!((0.1..=1.0).contains(&th.loadlimit));
        }
    }
}
