//! The discrete-event cluster runtime.
//!
//! One engine run simulates an LC service deployed across its Servpod
//! machines (one component per machine) under an offered load, optionally
//! co-located with BE jobs that are either statically pinned (the §2
//! characterization) or managed by per-machine controller agents (Rhythm
//! or the Heracles baseline — the difference is only the thresholds).
//!
//! The coupling loop of the paper is reproduced end to end: BE grants →
//! machine pressure → LC service-time inflation → queueing → tail latency
//! → slack → controller actions → BE grants.

use crate::servpod::Deployment;
use rhythm_controller::{
    AgentInputs, AgentStats, BeAction, ControllerAgent, GrowthConfig, ThresholdPolicy, Thresholds,
};
use rhythm_interference::{InterferenceModel, Pressure};
use rhythm_machine::machine::{BeInstanceId, BeState};
use rhythm_machine::{Allocation, Machine, MachineSpec};
use rhythm_sim::arena::{Arena, Key as ReqKey};
use rhythm_sim::{
    Calendar, Dist, LatencyHistogram, OnlineStats, ResolvedDist, SimDuration, SimRng, SimTime,
    TailWindow,
};
use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
use rhythm_telemetry::{
    ActionCode, AuditRecord, EventKind, Telemetry, TelemetryConfig, TelemetryOutput, Trigger,
};
use rhythm_tracer::capture::VisitNode;
use rhythm_workloads::{BeSpec, LoadGen, ServiceSpec};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// How BE jobs are (or are not) run alongside the LC service.
#[derive(Clone, Debug)]
pub enum ControlMode {
    /// LC service alone (profiling / SLA calibration runs).
    Solo,
    /// BE instances pinned at a fixed allocation with no runtime control
    /// (the §2 characterization in Figure 2).
    Static {
        /// Instances started per machine at t=0.
        instances: u32,
        /// Cores per instance.
        cores: u32,
        /// LLC ways per instance.
        llc_ways: u32,
        /// Servpods to co-locate on (empty = all machines). Figure 2
        /// interferes with a single component at a time.
        pods: Vec<usize>,
    },
    /// Per-machine controller agents with the given per-Servpod
    /// thresholds (Rhythm) — pass uniform [`Thresholds::heracles`] values
    /// for the baseline.
    Managed {
        /// One threshold pair per Servpod.
        thresholds: Vec<Thresholds>,
    },
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Machine model for every Servpod host.
    pub machine_spec: MachineSpec,
    /// Per-Servpod machine overrides for heterogeneous deployments: when
    /// non-empty, must hold one spec per Servpod and takes precedence
    /// over `machine_spec`.
    pub machine_specs: Vec<MachineSpec>,
    /// BE workloads to run (round-robin admission); empty means no BE.
    pub bes: Vec<BeSpec>,
    /// Control mode.
    pub mode: ControlMode,
    /// Offered load over time.
    pub load: LoadGen,
    /// Run length.
    pub duration: SimDuration,
    /// Warm-up period excluded from metrics.
    pub warmup: SimDuration,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// BE growth/admission configuration.
    pub growth: GrowthConfig,
    /// SLA target in ms used by the controllers.
    pub sla_ms: f64,
    /// Optional LC DVFS override in MHz (the Figure 2 DVFS group).
    pub lc_freq_mhz: Option<u32>,
    /// Servpods the DVFS override applies to (empty = all).
    pub lc_freq_pods: Vec<usize>,
    /// Interference model.
    pub interference: InterferenceModel,
    /// Controller period (paper: 2 s).
    pub controller_period: SimDuration,
    /// Collect per-request, per-pod sojourn times (profiling).
    pub collect_sojourns: bool,
    /// Build tracer visit trees for every completed request (profiling).
    pub capture_visits: bool,
    /// Record the Figure 17 timeline.
    pub record_timeline: bool,
    /// BE jobs waiting in the cluster scheduler's queue per machine
    /// (paper §4, "interact with scheduler"): `None` models an unbounded
    /// backlog (the datacenter always has batch work); `Some(n)` lets at
    /// most `n` admissions happen per machine.
    pub be_queue_per_machine: Option<u32>,
    /// Cluster mode: BE admission is driven by per-machine offers set
    /// through [`Engine::set_be_offer`] instead of the internal
    /// round-robin over `bes` — a machine only admits a new instance
    /// while a cluster dispatcher has a job offered to it. `bes` still
    /// provides the workload catalog for pressure lookups.
    pub external_be: bool,
    /// Telemetry collection (flight recorder, audit trail, tail series).
    /// Disabled by default; the hot path then pays one branch per
    /// instrumentation point.
    pub telemetry: TelemetryConfig,
    /// Record every busy transition into a shadow log readable via
    /// [`Engine::take_busy_log`]. A differential-testing facility
    /// (`tests/engine_equivalence.rs` recomputes the busy integrals from
    /// it the straightforward way and demands exact equality); never
    /// enabled by production configurations and excluded from snapshots.
    pub shadow_busy_log: bool,
}

impl EngineConfig {
    /// A solo run at constant `load` for `duration` seconds.
    pub fn solo(load: f64, duration_s: u64, seed: u64) -> Self {
        EngineConfig {
            machine_spec: MachineSpec::paper_testbed(),
            machine_specs: Vec::new(),
            bes: Vec::new(),
            mode: ControlMode::Solo,
            load: LoadGen::constant(load),
            duration: SimDuration::from_secs(duration_s),
            warmup: SimDuration::from_secs((duration_s / 10).max(2)),
            seed,
            growth: GrowthConfig::default(),
            sla_ms: f64::INFINITY,
            lc_freq_mhz: None,
            lc_freq_pods: Vec::new(),
            interference: InterferenceModel::calibrated(),
            controller_period: SimDuration::from_secs(2),
            collect_sojourns: false,
            capture_visits: false,
            record_timeline: false,
            be_queue_per_machine: None,
            external_be: false,
            telemetry: TelemetryConfig::disabled(),
            shadow_busy_log: false,
        }
    }
}

/// One BE instance admitted on a machine during an epoch (reported to the
/// cluster dispatcher through [`Engine::take_be_admissions`]).
#[derive(Clone, Debug)]
pub struct BeAdmission {
    /// Machine (Servpod) index within this engine.
    pub machine: usize,
    /// Machine-local instance id.
    pub instance: BeInstanceId,
    /// BE workload name.
    pub workload: String,
}

/// One BE instance killed by StopBE (reported to the cluster dispatcher
/// through [`Engine::take_be_kills`] so the job can be requeued).
#[derive(Clone, Debug)]
pub struct BeKill {
    /// Machine (Servpod) index within this engine.
    pub machine: usize,
    /// Machine-local instance id.
    pub instance: BeInstanceId,
    /// BE workload name.
    pub workload: String,
    /// Fraction of one job this instance had completed when killed.
    pub progress: f64,
}

/// One busy transition recorded by the differential-testing shadow log
/// ([`EngineConfig::shadow_busy_log`]): the raw inputs a reference
/// O(transitions) recompute needs to rebuild every node's worker-busy
/// integral and check it exactly against the batched accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusyTransition {
    /// Node (Servpod) index.
    pub node: u32,
    /// Virtual time of the transition.
    pub at: SimTime,
    /// Busy-count delta actually applied (after saturation).
    pub delta: i32,
}

/// Per-instance progress ledger entry.
#[derive(Clone, Debug)]
struct BeProgress {
    workload: String,
    /// Fraction of one job completed (1.0 = a full job).
    done: f64,
}

/// One point of the Figure 17 timeline (sampled every controller period).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Sample time in seconds.
    pub t_s: f64,
    /// Measured load fraction.
    pub load: f64,
    /// Measured slack.
    pub slack: f64,
    /// Per-pod machine CPU utilization (LC + BE) in percent.
    pub cpu_util_pct: Vec<f64>,
    /// Per-pod BE LLC ways.
    pub be_llc_ways: Vec<u32>,
    /// Per-pod BE cores.
    pub be_cores: Vec<u32>,
    /// Per-pod BE instance counts.
    pub be_instances: Vec<u32>,
    /// Per-pod BE throughput rate (solo-machine equivalents).
    pub be_throughput: Vec<f64>,
}

/// Per-pod aggregates over the measured (post-warmup) window.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PodRuntime {
    /// Servpod name.
    pub name: String,
    /// Average machine CPU utilization (LC + BE) in `[0,1]`.
    pub cpu_util: f64,
    /// Average LC-only CPU utilization in `[0,1]`.
    pub lc_cpu_util: f64,
    /// Average memory-bandwidth utilization (LC + BE) in `[0,1]`.
    pub membw_util: f64,
    /// Time-averaged BE throughput (normalized jobs/hour basis; 1.0 =
    /// one solo machine's worth of batch work).
    pub be_throughput: f64,
    /// Average number of live BE instances.
    pub be_instances_avg: f64,
    /// Controller statistics (None in Solo/Static modes).
    pub agent: Option<AgentStats>,
    /// Per-request sojourn statistics.
    pub sojourn_stats: OnlineStats,
}

/// Everything an engine run produces.
#[derive(Clone, Debug)]
pub struct EngineOutput {
    /// Requests completed after warm-up.
    pub completed: u64,
    /// Requests completed in total.
    pub completed_total: u64,
    /// End-to-end latency histogram (post-warmup).
    pub latency: LatencyHistogram,
    /// The SLA used by the controllers, in ms.
    pub sla_ms: f64,
    /// Offered max load of the service in requests/second.
    pub maxload_rps: f64,
    /// Average offered load fraction over the measured window.
    pub offered_load_avg: f64,
    /// Measured window length in seconds.
    pub measured_s: f64,
    /// Worst 99th percentile over any 10-second window (post-warmup) —
    /// the statistic the paper's SLA methodology uses.
    pub worst_window_p99_ms: f64,
    /// Per-Servpod aggregates.
    pub pods: Vec<PodRuntime>,
    /// Per-request per-pod sojourns (if `collect_sojourns`): outer index
    /// = pod, inner = request.
    pub sojourns: Option<Vec<Vec<f64>>>,
    /// Tracer visit trees (if `capture_visits`).
    pub visit_trees: Vec<VisitNode>,
    /// Figure 17 timeline (if `record_timeline`).
    pub timeline: Vec<TimelinePoint>,
    /// Collected telemetry (if [`EngineConfig::telemetry`] was enabled).
    pub telemetry: Option<TelemetryOutput>,
}

impl EngineOutput {
    /// The 99th-percentile latency in ms over the measured window.
    pub fn p99_ms(&self) -> f64 {
        self.latency.p99()
    }

    /// Mean end-to-end latency in ms.
    pub fn mean_ms(&self) -> f64 {
        self.latency.mean()
    }
}

/// Simulation events.
enum Ev {
    Arrive,
    PhaseEnd { req: ReqKey, visit: usize },
    Control,
    Metrics,
}

/// Per-visit interpreter state.
#[derive(Clone)]
struct Visit {
    node: usize,
    parent: Option<(usize, usize)>,
    /// Child visit indices (within the request).
    children: Vec<usize>,
    parallel: bool,
    phase: usize,
    n_phases: usize,
    pending_children: usize,
    phase_start: SimTime,
    sojourn_ns: u64,
    /// Recorded phases (only when capturing visit trees).
    phase_rec: Vec<(SimTime, SimTime)>,
}

struct Request {
    arrival: SimTime,
    /// Visit slots; recycled between requests, so only the first `used`
    /// entries belong to this request (stale slots past that keep their
    /// buffers for the next occupant).
    visits: Vec<Visit>,
    used: usize,
}

/// Precomputed per-component sampling state: resolved distributions and
/// the hoisted contention/burst terms, so `start_phase` does no `Dist`
/// matching, no `mean()` re-derivation and no `burst_knee` arithmetic
/// per phase.
struct NodeSampler {
    pre: ResolvedDist,
    post: ResolvedDist,
    /// `n_phases == 1` with skipped calls does both phases' work locally.
    single_phase_adds_post: bool,
    /// Load-contention factor γ of the component.
    contention: f64,
    /// `burst_knee − 0.08` (the ramp onset of `burst_probability`).
    burst_onset: f64,
    /// The burst-magnitude distribution (exponential, mean 2).
    burst: ResolvedDist,
}

/// Everything `refresh_inflations` reads for one node, captured so the
/// `Pressure` rebuild and model evaluation run only when an input moved.
/// The BE population is summarized by the machine's change epoch; DVFS
/// points and the qdisc ceiling are read directly (they mutate through
/// public fields the epoch cannot see); the LC rate folds in the load
/// fraction.
#[derive(Clone, Copy, PartialEq, Eq)]
struct InflationInputs {
    epoch: u64,
    lc_mhz: u32,
    be_mhz: u32,
    be_limit_bits: u64,
    rate_bits: u64,
}

/// Per-node (per-machine) queueing state in struct-of-arrays layout.
///
/// The per-event path (`enqueue_phase` → `start_phase` → `on_phase_end`)
/// touches only the dense parallel `Vec`s below — contiguous scalars,
/// one cache line per field for a whole service — while the cold,
/// pointer-heavy waiting queues live in a side table it never walks
/// unless a node is saturated.
///
/// The worker-busy integral is **batched**: the event path no longer
/// settles `busy_area += dt × busy` at every transition. Instead it
/// maintains the transition-moment sum `busy_tweight = Σ Δⱼ·tⱼ` (one
/// signed add per transition) and the integral is recovered exactly at
/// flush points from the identity
///
/// ```text
/// ∫₀ᵗ busy(s) ds  =  busy(t)·t − Σ_{tⱼ ≤ t} Δⱼ·tⱼ
/// ```
///
/// over the integer nanosecond grid — bit-for-bit equal to the old
/// per-transition settlement (both are exact integer sums), proven by
/// `tests/engine_equivalence.rs` against a shadow transition log.
struct NodeTables {
    workers: Vec<u32>,
    busy: Vec<u32>,
    /// Current service-time inflation factor per node.
    inflation: Vec<f64>,
    /// Transition-moment sum `Σ Δⱼ·tⱼ` in ns·workers (signed: a node
    /// that went idle after accruing area holds a negative sum).
    // lint:allow(S02) -- derived: encode writes settled_area(i); decode re-derives the moment sum
    busy_tweight: Vec<i128>,
    /// Time of each node's last busy transition.
    last_busy_change: Vec<SimTime>,
    /// Completed visit counter (for per-node rate estimates).
    visits_done_window: Vec<u64>,
    /// Settled worker-busy integrals as of the last flush point (ns ×
    /// workers). Derived from the hot fields — never read between
    /// flushes; kept so each flush can assert monotonicity against the
    /// previous one in debug builds.
    // lint:allow(S02) -- derived: encode writes settled_area(i), which folds this with the moment sum
    busy_area: Vec<u128>,
    /// Cold side table: per-node FIFO of waiting `(request, visit)`
    /// phases, only touched when a node has no free worker.
    queue: Vec<VecDeque<(ReqKey, usize)>>,
}

impl NodeTables {
    fn with_workers(workers: Vec<u32>) -> NodeTables {
        let n = workers.len();
        NodeTables {
            workers,
            busy: vec![0; n],
            inflation: vec![1.0; n],
            busy_tweight: vec![0; n],
            last_busy_change: vec![SimTime::ZERO; n],
            visits_done_window: vec![0; n],
            busy_area: vec![0; n],
            queue: (0..n).map(|_| VecDeque::new()).collect(),
        }
    }

    fn len(&self) -> usize {
        self.workers.len()
    }

    /// Exact worker-busy integral of node `i` settled to its last busy
    /// transition — bit-identical to the `busy_area` field the old
    /// per-transition settlement maintained (and what snapshots encode).
    fn settled_area(&self, i: usize) -> u128 {
        self.area_at(i, self.last_busy_change[i])
    }

    /// Exact worker-busy integral of node `i` over `[0, t]` for any `t`
    /// at or after the node's last transition. Pure: evaluating it at
    /// arbitrary extra instants can never change later values
    /// (flush-placement invariance, property-tested).
    fn area_at(&self, i: usize, t: SimTime) -> u128 {
        debug_assert!(t >= self.last_busy_change[i]);
        (self.busy[i] as i128 * t.as_nanos() as i128 - self.busy_tweight[i]) as u128
    }
}

/// The engine itself.
pub struct Engine {
    service: Arc<ServiceSpec>,
    cfg: EngineConfig,
    deployment: Deployment,
    nodes: NodeTables,
    /// Precomputed sampling state, one entry per node.
    samplers: Vec<NodeSampler>,
    agents: Vec<Option<ControllerAgent>>,
    be_specs: BTreeMap<String, BeSpec>,
    cal: Calendar<Ev>,
    rng_arrival: SimRng,
    rng_service: SimRng,
    rng_path: SimRng,
    /// In-flight requests. Generational keys keep `PhaseEnd` events
    /// honest across slot reuse; lookups are an index, not a hash.
    requests: Arena<Request>,
    /// Recycled visit buffers from completed requests (steady state
    /// plans a request without allocating).
    visit_pool: Vec<Vec<Visit>>,
    /// Scratch for `plan_visits`: DFS stack of (node, parent slot).
    plan_stack: Vec<(usize, Option<(usize, usize)>)>,
    /// Scratch for `plan_visits`: call targets sampled for one node.
    plan_sampled: Vec<usize>,
    /// Last inputs each node's inflation was computed from.
    inflation_inputs: Vec<Option<InflationInputs>>,
    maxload: f64,
    /// Expected visits per node (constant for the service; cached).
    visits: Vec<f64>,
    tail: TailWindow,
    /// Ring of arrival counts for the last 10 seconds.
    arrivals_ring: VecDeque<(u64, u32)>,
    // Measurement accumulators (post-warmup).
    hist: LatencyHistogram,
    completed: u64,
    completed_total: u64,
    window_hist: LatencyHistogram,
    window_epoch: u64,
    worst_window_p99: f64,
    sojourn_stats: Vec<OnlineStats>,
    sojourns: Option<Vec<Vec<f64>>>,
    visit_trees: Vec<VisitNode>,
    timeline: Vec<TimelinePoint>,
    // Integrals.
    be_progress_int: Vec<f64>,
    be_instances_int: Vec<f64>,
    cpu_util_int: Vec<f64>,
    lc_cpu_util_int: Vec<f64>,
    membw_int: Vec<f64>,
    offered_int: f64,
    int_time: f64,
    last_integral_at: SimTime,
    measure_from: SimTime,
    end_at: SimTime,
    // Cluster interface (epoch-stepped runs).
    started: bool,
    /// Per-machine job offered by the cluster dispatcher (external
    /// mode), with its priority class. `Arc`: the dispatcher shares one
    /// allocation per job across its ledger and every offer, so posting
    /// an offer is a pointer bump, not a deep spec clone.
    be_offers: Vec<Option<(Arc<BeSpec>, u8)>>,
    /// Per-machine, per-instance progress, accrued over the *whole* run
    /// (cluster job completion times include warm-up, unlike the
    /// measured-window integrals above).
    be_job_progress: Vec<BTreeMap<BeInstanceId, BeProgress>>,
    last_progress_at: SimTime,
    admitted_log: Vec<BeAdmission>,
    killed_log: Vec<BeKill>,
    /// Shadow log of busy transitions `(node, t, Δ)` for differential
    /// testing ([`EngineConfig::shadow_busy_log`]); `None` in every
    /// production configuration, so the hot path pays one branch.
    busy_log: Option<Vec<BusyTransition>>,
    /// Telemetry bundle (recorder + audit trail + tail series).
    telemetry: Telemetry,
    /// Per-node `(count, sum)` snapshots of `sojourn_stats` at the last
    /// control tick, for hot-Servpod attribution in the audit trail.
    audit_prev: Vec<(u64, f64)>,
}

impl Engine {
    /// Builds an engine for `service` under `cfg`. Accepts either an
    /// owned spec or a shared `Arc` (sweeps reuse one allocation).
    pub fn new(service: impl Into<Arc<ServiceSpec>>, cfg: EngineConfig) -> Engine {
        let service = service.into();
        let deployment = if cfg.machine_specs.is_empty() {
            Deployment::new(Arc::clone(&service), cfg.machine_spec)
        } else {
            Deployment::with_machine_specs(Arc::clone(&service), &cfg.machine_specs)
        };
        let maxload = service.sim_maxload_rps();
        let visits = service.expected_visits();
        let n = service.len();
        let root = SimRng::from_seed(cfg.seed);
        let nodes = NodeTables::with_workers(
            service.nodes.iter().map(|node| node.component.workers).collect(),
        );
        let samplers = service
            .nodes
            .iter()
            .map(|node| {
                let c = &node.component;
                NodeSampler {
                    pre: c.pre_ms.resolved(),
                    post: c.post_ms.resolved(),
                    single_phase_adds_post: !node.calls.is_empty() && c.post_ms.mean() > 0.0,
                    contention: c.contention,
                    burst_onset: c.burst_knee - 0.08,
                    burst: Dist::Exponential { mean: 2.0 }.resolved(),
                }
            })
            .collect();
        let agents: Vec<Option<ControllerAgent>> = match &cfg.mode {
            ControlMode::Managed { thresholds } => {
                assert_eq!(thresholds.len(), n, "one threshold pair per Servpod");
                thresholds
                    .iter()
                    .map(|&t| Some(ControllerAgent::new(ThresholdPolicy::rhythm(t), cfg.growth)))
                    .collect()
            }
            _ => (0..n).map(|_| None).collect(),
        };
        let be_specs = cfg
            .bes
            .iter()
            .map(|b| (b.name.clone(), b.clone()))
            .collect();
        let sojourns = cfg.collect_sojourns.then(|| vec![Vec::new(); n]);
        let measure_from = SimTime::ZERO + cfg.warmup;
        let end_at = SimTime::ZERO + cfg.duration;
        Engine {
            nodes,
            samplers,
            agents,
            be_specs,
            cal: Calendar::with_capacity(1024),
            rng_arrival: root.split("arrivals"),
            rng_service: root.split("service"),
            rng_path: root.split("path"),
            requests: Arena::with_capacity(1024),
            visit_pool: Vec::new(),
            plan_stack: Vec::new(),
            plan_sampled: Vec::new(),
            inflation_inputs: vec![None; n],
            maxload,
            visits,
            tail: TailWindow::new(SimDuration::from_secs(10), 10),
            arrivals_ring: VecDeque::new(),
            hist: LatencyHistogram::new(),
            completed: 0,
            completed_total: 0,
            window_hist: LatencyHistogram::new(),
            window_epoch: 0,
            worst_window_p99: 0.0,
            sojourn_stats: vec![OnlineStats::new(); n],
            sojourns,
            visit_trees: Vec::new(),
            timeline: Vec::new(),
            be_progress_int: vec![0.0; n],
            be_instances_int: vec![0.0; n],
            cpu_util_int: vec![0.0; n],
            lc_cpu_util_int: vec![0.0; n],
            membw_int: vec![0.0; n],
            offered_int: 0.0,
            int_time: 0.0,
            last_integral_at: measure_from,
            measure_from,
            end_at,
            started: false,
            be_offers: vec![None; n],
            be_job_progress: (0..n).map(|_| BTreeMap::new()).collect(),
            last_progress_at: SimTime::ZERO,
            admitted_log: Vec::new(),
            killed_log: Vec::new(),
            busy_log: cfg.shadow_busy_log.then(Vec::new),
            telemetry: Telemetry::new(cfg.telemetry),
            audit_prev: vec![(0, 0.0); n],
            deployment,
            service,
            cfg,
        }
    }

    /// Runs the simulation to completion and returns the outputs.
    pub fn run(mut self) -> EngineOutput {
        self.start();
        self.run_until(SimTime::MAX);
        self.finish_run()
    }

    /// Prepares the run (schedules the first arrival and the periodic
    /// events). Idempotent; called automatically by [`Engine::run`] and
    /// [`Engine::run_until`].
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.setup();
    }

    /// Processes every event due at or before `until` (virtual time),
    /// then returns. Drives epoch-stepped cluster execution: the caller
    /// may inspect and mutate BE state between steps, then continue.
    /// `run_until(SimTime::MAX)` drains the calendar completely.
    pub fn run_until(&mut self, until: SimTime) {
        self.start();
        while let Some((now, ev)) = self.cal.pop_if_at_or_before(until) {
            match ev {
                Ev::Arrive => self.on_arrive(now),
                Ev::PhaseEnd { req, visit } => self.on_phase_end(now, req, visit),
                Ev::Control => self.on_control(now),
                Ev::Metrics => self.on_metrics(now),
            }
        }
    }

    /// True once every pending event has been processed.
    pub fn is_drained(&self) -> bool {
        self.started && self.cal.is_empty()
    }

    /// The engine's current virtual time.
    pub fn now(&self) -> SimTime {
        self.cal.now()
    }

    /// The configured end of the run.
    pub fn ends_at(&self) -> SimTime {
        self.end_at
    }

    /// Number of machines (Servpods) this engine simulates.
    pub fn machine_count(&self) -> usize {
        self.nodes.len()
    }

    /// The machine hosting Servpod `i`.
    pub fn machine(&self, i: usize) -> &Machine {
        &self.deployment.machines[i]
    }

    /// The service this engine runs.
    pub fn service(&self) -> &ServiceSpec {
        &self.service
    }

    /// Sets the LC DVFS operating point of machine `i` to `mhz`
    /// (snapped to the domain grid, clamped to its range) and refreshes
    /// interference inflations immediately, so the new frequency is in
    /// effect from the barrier that requested it. The cluster fault
    /// injector uses this for slow-node (straggler) faults and their
    /// recovery; returns the realized frequency.
    pub fn set_lc_frequency(&mut self, i: usize, mhz: u32) -> u32 {
        let realized = self.deployment.machines[i].lc_dvfs.set_mhz(mhz);
        self.refresh_inflations();
        realized
    }

    /// The LC DVFS ceiling of machine `i`, for restoring a slowed
    /// machine to full speed.
    pub fn lc_max_mhz(&self, i: usize) -> u32 {
        self.deployment.machines[i].lc_dvfs.max_mhz()
    }

    /// The controller's most recent action on machine `i` (None in
    /// Solo/Static modes or before the first control period).
    pub fn last_action(&self, i: usize) -> Option<BeAction> {
        self.agents[i].as_ref().and_then(|a| a.last_action())
    }

    /// Sets (or clears) the BE job the cluster dispatcher offers to
    /// machine `i`, at priority 0. Only meaningful with
    /// [`EngineConfig::external_be`].
    pub fn set_be_offer(&mut self, i: usize, offer: Option<BeSpec>) {
        self.set_be_offer_prio(i, offer.map(|s| (Arc::new(s), 0)));
    }

    /// Sets (or clears) the BE job the cluster dispatcher offers to
    /// machine `i`, tagged with its priority class (0 = lowest). The
    /// controller admits the instance at that class, so preemption can
    /// select victims by priority later. The spec is shared, not cloned:
    /// the cluster ledger and the offer hold the same allocation.
    pub fn set_be_offer_prio(&mut self, i: usize, offer: Option<(Arc<BeSpec>, u8)>) {
        if let Some((spec, _)) = &offer {
            // The pressure model looks workloads up by name; make sure
            // offered specs are resolvable even if absent from `cfg.bes`.
            self.be_specs
                .entry(spec.name.clone())
                .or_insert_with(|| (**spec).clone());
        }
        self.be_offers[i] = offer;
    }

    /// The job currently offered to machine `i`.
    pub fn be_offer(&self, i: usize) -> Option<&BeSpec> {
        self.be_offers[i].as_ref().map(|(s, _)| &**s)
    }

    /// Cumulative progress (fraction of one job) of BE instance
    /// `instance` on machine `i`, accrued since its admission.
    pub fn be_progress(&self, i: usize, instance: BeInstanceId) -> Option<f64> {
        self.be_job_progress[i].get(&instance).map(|p| p.done)
    }

    /// Drains the log of BE admissions since the last call.
    pub fn take_be_admissions(&mut self) -> Vec<BeAdmission> {
        std::mem::take(&mut self.admitted_log)
    }

    /// Drains the log of StopBE kills since the last call.
    pub fn take_be_kills(&mut self) -> Vec<BeKill> {
        std::mem::take(&mut self.killed_log)
    }

    /// Accrues per-instance BE progress up to time `t` using the current
    /// allocations. The cluster barrier MUST call this before mutating BE
    /// state between epochs, so a job suspended or removed mid-tick does
    /// not accrue (or lose) progress for the wrong fraction of the tick.
    pub fn sync_be_progress(&mut self, t: SimTime) {
        self.accrue_be_progress(t);
    }

    /// Batched settlement of the per-node worker-busy integrals: folds
    /// every node's transition-moment sum into its settled `busy_area`.
    /// Called at the points that read utilization — controller ticks,
    /// 10-second window rollovers, cluster epoch barriers, snapshot
    /// capture and [`Engine::finish_run`] — instead of at every busy
    /// transition. Settlement is a pure function of the hot fields, so
    /// flushing at arbitrary extra instants never changes any later
    /// integral (property-tested in `tests/engine_equivalence.rs`);
    /// debug builds additionally assert the integral never decreases
    /// across flush points.
    pub fn flush_busy_integrals(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            debug_assert!(
                self.nodes.last_busy_change[i] <= now,
                "flush at {} ns predates node {i}'s last transition",
                now.as_nanos()
            );
            let settled = self.nodes.settled_area(i);
            debug_assert!(
                settled >= self.nodes.busy_area[i],
                "node {i} busy integral decreased across flush points"
            );
            self.nodes.busy_area[i] = settled;
        }
    }

    /// The exact worker-busy integral of node `i` (ns × workers),
    /// settled to the node's last busy transition. Equals the value a
    /// per-transition `busy_area += dt × busy` settlement would hold.
    pub fn busy_area_ns(&self, i: usize) -> u128 {
        self.nodes.settled_area(i)
    }

    /// The exact worker-busy integral of node `i` over `[0, t]` (ns ×
    /// workers). `t` must be at or after the node's last busy
    /// transition (e.g. the engine's current time or the run end).
    pub fn busy_integral_at(&self, i: usize, t: SimTime) -> u128 {
        self.nodes.area_at(i, t)
    }

    /// Worker count of node `i` (bounds the busy integral:
    /// `busy_area ≤ workers × elapsed`).
    pub fn node_workers(&self, i: usize) -> u32 {
        self.nodes.workers[i]
    }

    /// Drains the shadow busy-transition log
    /// ([`EngineConfig::shadow_busy_log`]).
    pub fn take_busy_log(&mut self) -> Vec<BusyTransition> {
        self.busy_log.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// The telemetry collected so far (recorder, audit trail, tail
    /// series). Enabled via [`EngineConfig::telemetry`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Records a cluster epoch-boundary marker at virtual time `at`
    /// (called by the cluster runner at each barrier; a no-op when the
    /// recorder is disabled).
    pub fn note_epoch(&mut self, epoch: u32, at: SimTime) {
        self.telemetry.recorder.record(at, EventKind::Epoch { epoch });
    }

    /// Removes BE instance `instance` from machine `i` without counting
    /// it as a kill (the cluster calls this when a job *completes*).
    /// Returns the instance's final progress fraction.
    pub fn remove_be(&mut self, i: usize, instance: BeInstanceId) -> Option<f64> {
        let p = self.be_job_progress[i].remove(&instance)?;
        let _ = self.deployment.machines[i].kill_be(instance);
        Some(p.done)
    }

    fn setup(&mut self) {
        if let Some(mhz) = self.cfg.lc_freq_mhz {
            let pods = &self.cfg.lc_freq_pods;
            for (i, m) in self.deployment.machines.iter_mut().enumerate() {
                if pods.is_empty() || pods.contains(&i) {
                    m.lc_dvfs.set_mhz(mhz);
                }
            }
        }
        if let ControlMode::Static {
            instances,
            cores,
            llc_ways,
            ref pods,
        } = self.cfg.mode
        {
            let specs = &self.cfg.bes;
            if !specs.is_empty() {
                for (mi, m) in self.deployment.machines.iter_mut().enumerate() {
                    if !pods.is_empty() && !pods.contains(&mi) {
                        continue;
                    }
                    for i in 0..instances {
                        let be = &specs[i as usize % specs.len()];
                        let req = Allocation {
                            cores,
                            llc_ways,
                            mem_mb: be.mem_mb,
                            net_mbps: 0.0,
                            freq_mhz: m.be_dvfs.current_mhz(),
                        };
                        let _ = m.admit_be(&be.name, req);
                    }
                    // Static colocation gives BE jobs the full leftover
                    // bandwidth rule once (no controller protects LC).
                    m.qdisc.reallocate(0.0);
                }
            }
        }
        self.refresh_inflations();
        self.schedule_next_arrival(SimTime::ZERO);
        // The telemetry tail series closes its windows on the control
        // tick, so telemetry keeps the tick alive even in uncontrolled
        // (Solo/Static) runs. The tick consumes no randomness, so this
        // cannot perturb the simulated trajectory.
        if matches!(self.cfg.mode, ControlMode::Managed { .. }) || self.telemetry.enabled() {
            self.cal
                .schedule(SimTime::ZERO + self.cfg.controller_period, Ev::Control);
        }
        self.cal
            .schedule(SimTime::ZERO + SimDuration::from_secs(1), Ev::Metrics);
    }

    fn schedule_next_arrival(&mut self, now: SimTime) {
        if now >= self.end_at {
            return;
        }
        let frac = self.cfg.load.fraction_at(now).max(1e-6);
        let rate = frac * self.maxload; // Requests per second.
        let gap_s = -(1.0 - self.rng_arrival.uniform()).ln() / rate;
        let at = now + SimDuration::from_secs_f64(gap_s);
        if at < self.end_at {
            self.cal.schedule(at, Ev::Arrive);
        }
    }

    /// Samples the visit plan for a new request (which calls fire) into
    /// `buf`, reusing its `Visit` slots and their child/phase buffers.
    /// Returns the number of visits planned; entries past that count are
    /// stale leftovers kept for their heap buffers.
    fn plan_visits(&mut self, arrival: SimTime, buf: &mut Vec<Visit>) -> usize {
        let mut used = 0usize;
        // Stack of (node, parent visit, child slot).
        self.plan_stack.clear();
        self.plan_stack.push((ServiceSpec::ENTRY, None));
        while let Some((node, parent)) = self.plan_stack.pop() {
            let spec = &self.service.nodes[node];
            let parallel = spec.parallel;
            self.plan_sampled.clear();
            for call in &spec.calls {
                if call.probability >= 1.0 || self.rng_path.chance(call.probability) {
                    self.plan_sampled.push(call.target);
                }
            }
            let idx = used;
            let n_phases = if self.plan_sampled.is_empty() {
                1
            } else if parallel {
                2
            } else {
                self.plan_sampled.len() + 1
            };
            if let Some(v) = buf.get_mut(idx) {
                v.node = node;
                v.parent = parent;
                v.children.clear();
                v.parallel = parallel;
                v.phase = 0;
                v.n_phases = n_phases;
                v.pending_children = 0;
                v.phase_start = arrival;
                v.sojourn_ns = 0;
                v.phase_rec.clear();
            } else {
                buf.push(Visit {
                    node,
                    parent,
                    children: Vec::with_capacity(self.plan_sampled.len()),
                    parallel,
                    phase: 0,
                    n_phases,
                    pending_children: 0,
                    phase_start: arrival,
                    sojourn_ns: 0,
                    phase_rec: Vec::new(),
                });
            }
            used += 1;
            // Push in reverse so the LIFO stack creates sibling visits in
            // call order (sequential nodes dispatch children by order).
            for (slot, child_node) in self.plan_sampled.iter().enumerate().rev() {
                self.plan_stack.push((*child_node, Some((idx, slot))));
            }
        }
        // Wire children arrays (the stack pushed children after parents,
        // so parent indices are valid).
        for i in 0..used {
            if let Some((p, _slot)) = buf[i].parent {
                buf[p].children.push(i);
            }
        }
        used
    }

    fn on_arrive(&mut self, now: SimTime) {
        let mut visits = self.visit_pool.pop().unwrap_or_default();
        let used = self.plan_visits(now, &mut visits);
        let req = self.requests.insert(Request {
            arrival: now,
            visits,
            used,
        });
        self.count_arrival(now);
        self.telemetry.recorder.record(now, EventKind::RequestAdmitted);
        self.enqueue_phase(now, req, 0);
        self.schedule_next_arrival(now);
    }

    fn count_arrival(&mut self, now: SimTime) {
        let sec = now.as_nanos() / 1_000_000_000;
        match self.arrivals_ring.back_mut() {
            Some((s, c)) if *s == sec => *c += 1,
            _ => self.arrivals_ring.push_back((sec, 1)),
        }
        while let Some(&(s, _)) = self.arrivals_ring.front() {
            if sec - s >= 11 {
                self.arrivals_ring.pop_front();
            } else {
                break;
            }
        }
    }

    /// Measured request rate over the last 10 *complete* seconds
    /// (requests/second). The current partial second is excluded — it
    /// would bias the estimate low.
    fn measured_rate(&self, now: SimTime) -> f64 {
        let sec = now.as_nanos() / 1_000_000_000;
        let total: u32 = self
            .arrivals_ring
            .iter()
            .filter(|&&(s, _)| {
                let age = sec.saturating_sub(s);
                (1..=10).contains(&age)
            })
            .map(|&(_, c)| c)
            .sum();
        let window = 10.0_f64.min(sec.max(1) as f64);
        total as f64 / window
    }

    /// Applies a busy-count transition on `node` at `now`. No integral
    /// settlement happens here: the transition moment is folded into the
    /// node's `busy_tweight` sum (one signed add), and the exact integral
    /// is recovered at flush points — see [`NodeTables`].
    ///
    /// Every `-1` must match an earlier `+1`; a mismatched delta is a
    /// phase-accounting bug and trips the `debug_assert` below. Release
    /// builds saturate instead (the effective delta stops at zero busy
    /// workers), which keeps the busy count *and* the integral mutually
    /// consistent rather than silently corrupting utilization.
    fn update_busy(&mut self, node: usize, now: SimTime, delta: i32) {
        let busy = self.nodes.busy[node];
        debug_assert!(
            delta >= 0 || busy >= delta.unsigned_abs(),
            "node {node} busy underflow at {} ns: busy={busy} delta={delta}",
            now.as_nanos()
        );
        debug_assert!(now >= self.nodes.last_busy_change[node]);
        let eff = if delta < 0 {
            -(busy.min(delta.unsigned_abs()) as i64)
        } else {
            delta as i64
        };
        self.nodes.busy_tweight[node] += eff as i128 * now.as_nanos() as i128;
        self.nodes.busy[node] = (busy as i64 + eff) as u32;
        self.nodes.last_busy_change[node] = now;
        if let Some(log) = self.busy_log.as_mut() {
            log.push(BusyTransition {
                // lint:allow(D05) -- node indexes the per-machine node tables, far below u32::MAX
                node: node as u32,
                at: now,
                delta: eff as i32,
            });
        }
    }

    fn enqueue_phase(&mut self, now: SimTime, req: ReqKey, visit: usize) {
        // PANIC: req keys flow from calendar events scheduled while the
        // request was live; the arena removes a key exactly once.
        let node = self.requests.get(req).expect("request exists").visits[visit].node;
        if self.nodes.busy[node] < self.nodes.workers[node] {
            self.start_phase(now, req, visit);
        } else {
            self.nodes.queue[node].push_back((req, visit));
        }
    }

    fn start_phase(&mut self, now: SimTime, req: ReqKey, visit: usize) {
        let node;
        let dur_ms;
        {
            // PANIC: req keys flow from live-request calendar events.
            let r = self.requests.get_mut(req).expect("request exists");
            let v = &mut r.visits[visit];
            node = v.node;
            v.phase_start = now;
            let s = &self.samplers[node];
            let rng = &mut self.rng_service;
            // The work of one phase: phase 0 samples the pre
            // distribution, later phases the post distribution. A node
            // whose downstream calls were all skipped this request
            // (single phase, but the component *has* call edges) does
            // both phases' work locally.
            let base = if v.n_phases == 1 {
                if s.single_phase_adds_post {
                    s.pre.sample(rng) + s.post.sample(rng)
                } else {
                    s.pre.sample(rng)
                }
            } else if v.phase == 0 {
                s.pre.sample(rng)
            } else {
                s.post.sample(rng)
            };
            // Interference inflation compounds with the load-contention
            // inflation (locks/pools degrade with offered load), plus
            // rare service bursts whose probability ramps up around the
            // component's knee (GC pauses, compactions — Figure 8).
            let f = self.cfg.load.fraction_at(now);
            let burst = if rng.chance(0.02 * ((f - s.burst_onset) / 0.1).clamp(0.0, 1.0)) {
                1.0 + s.burst.sample(rng)
            } else {
                1.0
            };
            let fc = f.clamp(0.0, 1.05);
            let contention = 1.0 + s.contention * fc * fc * fc;
            dur_ms = base * self.nodes.inflation[node] * contention * burst;
        }
        self.update_busy(node, now, 1);
        let at = now + SimDuration::from_millis_f64(dur_ms.max(1e-6));
        self.cal.schedule(at, Ev::PhaseEnd { req, visit });
    }

    fn on_phase_end(&mut self, now: SimTime, req: ReqKey, visit: usize) {
        // PANIC: req keys flow from calendar events scheduled while the
        // request was live; the arena removes a key exactly once.
        let node = self.requests.get(req).expect("request exists").visits[visit].node;
        self.update_busy(node, now, -1);
        // Start the next queued phase on this node.
        if let Some((q_req, q_visit)) = self.nodes.queue[node].pop_front() {
            self.start_phase(now, q_req, q_visit);
        }
        // Advance the visit. Children to dispatch are re-read from the
        // visit per iteration instead of cloned out.
        enum Advance {
            /// Dispatch `count` children starting at child slot `first`.
            Dispatch { first: usize, count: usize },
            Complete,
            Wait,
        }
        let adv = {
            // PANIC: req keys flow from live-request calendar events.
            let r = self.requests.get_mut(req).expect("request exists");
            let v = &mut r.visits[visit];
            let started = v.phase_start;
            v.sojourn_ns += now.saturating_since(started).as_nanos();
            if self.cfg.capture_visits {
                v.phase_rec.push((started, now));
            }
            v.phase += 1;
            if v.parallel && v.phase == 1 && !v.children.is_empty() {
                v.pending_children = v.children.len();
                Advance::Dispatch {
                    first: 0,
                    count: v.children.len(),
                }
            } else if !v.parallel && v.phase <= v.children.len() {
                Advance::Dispatch {
                    first: v.phase - 1,
                    count: 1,
                }
            } else if v.phase >= v.n_phases {
                Advance::Complete
            } else {
                Advance::Wait
            }
        };
        match adv {
            Advance::Dispatch { first, count } => {
                for slot in first..first + count {
                    let child =
                        // PANIC: req keys flow from live-request calendar events.
                        self.requests.get(req).expect("request exists").visits[visit].children[slot];
                    self.enqueue_phase(now, req, child);
                }
            }
            Advance::Complete => {
                self.nodes.visits_done_window[node] += 1;
                self.on_visit_complete(now, req, visit);
            }
            Advance::Wait => {}
        }
    }

    fn on_visit_complete(&mut self, now: SimTime, req: ReqKey, visit: usize) {
        // PANIC: req keys flow from live-request calendar events.
        let parent = self.requests.get(req).expect("request exists").visits[visit].parent;
        match parent {
            Some((p, _slot)) => {
                let resume = {
                    // PANIC: req keys flow from live-request calendar events.
                    let r = self.requests.get_mut(req).expect("request exists");
                    let pv = &mut r.visits[p];
                    if pv.parallel {
                        pv.pending_children -= 1;
                        pv.pending_children == 0
                    } else {
                        true
                    }
                };
                if resume {
                    self.enqueue_phase(now, req, p);
                }
            }
            None => self.on_request_complete(now, req),
        }
    }

    fn on_request_complete(&mut self, now: SimTime, req: ReqKey) {
        // PANIC: completion fires once per request — the key is still live.
        let r = self.requests.remove(req).expect("request exists");
        let latency_ms = now.saturating_since(r.arrival).as_millis_f64();
        self.tail.record(now, latency_ms);
        if self.telemetry.enabled() {
            self.telemetry.recorder.record(
                now,
                EventKind::RequestCompleted {
                    latency_us: (latency_ms * 1000.0) as u32,
                },
            );
            self.telemetry.record_latency(latency_ms);
        }
        self.completed_total += 1;
        if now < self.measure_from {
            self.visit_pool.push(r.visits);
            return;
        }
        self.completed += 1;
        self.hist.record(latency_ms);
        // Track the worst 10-second-window tail (the paper's SLA
        // statistic).
        let epoch = now.as_nanos() / 10_000_000_000;
        if epoch != self.window_epoch {
            if !self.window_hist.is_empty() {
                self.worst_window_p99 = self.worst_window_p99.max(self.window_hist.p99());
            }
            self.window_hist.reset();
            self.window_epoch = epoch;
            // Window rollover is a utilization read point: settle the
            // batched busy integrals (rare — once per 10 sim-seconds).
            self.flush_busy_integrals(now);
        }
        self.window_hist.record(latency_ms);
        for v in &r.visits[..r.used] {
            let ms = v.sojourn_ns as f64 / 1e6;
            self.sojourn_stats[v.node].push(ms);
            if let Some(s) = &mut self.sojourns {
                s[v.node].push(ms);
            }
        }

        if self.cfg.capture_visits {
            if let Some(tree) = Self::build_visit_tree(&r, 0) {
                self.visit_trees.push(tree);
            }
        }
        self.visit_pool.push(r.visits);
    }

    fn build_visit_tree(r: &Request, idx: usize) -> Option<VisitNode> {
        let v = r.visits.get(idx)?;
        let children = v
            .children
            .iter()
            .filter_map(|&c| Self::build_visit_tree(r, c))
            .collect();
        Some(VisitNode {
            pod: v.node as u32,
            phases: v.phase_rec.clone(),
            children,
            parallel: v.parallel,
        })
    }

    /// Recomputes the interference inflation of every node from the
    /// machines' current BE population and isolation state. Nodes whose
    /// inputs (BE population epoch, DVFS points, qdisc ceiling, LC rate)
    /// have not moved since the last refresh keep their cached factor —
    /// solo runs never rebuild a `Pressure` after setup.
    fn refresh_inflations(&mut self) {
        for i in 0..self.nodes.len() {
            let machine = &self.deployment.machines[i];
            let rate = self.current_node_rate(i);
            let inputs = InflationInputs {
                epoch: machine.change_epoch(),
                lc_mhz: machine.lc_dvfs.current_mhz(),
                be_mhz: machine.be_dvfs.current_mhz(),
                be_limit_bits: machine.qdisc.be_limit_mbps().to_bits(),
                rate_bits: rate.to_bits(),
            };
            if self.inflation_inputs[i] == Some(inputs) {
                continue;
            }
            let comp = &self.service.nodes[i].component;
            let pressure = Pressure::from_machine(machine, &self.be_specs).with_lc_usage(
                machine.spec(),
                comp.membw_mbps_at(rate),
                comp.net_mbps_at(rate),
            );
            self.nodes.inflation[i] = self.cfg.interference.inflation(comp, &pressure, machine);
            self.inflation_inputs[i] = Some(inputs);
        }
    }

    /// Estimated request rate at node `i` (service rate × expected
    /// visits).
    fn current_node_rate(&self, i: usize) -> f64 {
        let frac = self.cfg.load.fraction_at(self.cal.now());
        frac * self.maxload * self.visits[i]
    }

    /// Instantaneous BE progress rate on machine `i`.
    fn be_rate(&self, i: usize) -> f64 {
        let m = &self.deployment.machines[i];
        let freq = m.be_dvfs.speed_fraction();
        let total_demand: f64 = m
            .be_instances()
            .filter(|b| b.state == BeState::Running)
            .filter_map(|b| self.be_specs.get(&b.workload))
            .map(|s| s.net_demand_mbps)
            .sum();
        let net_frac = if total_demand > 0.0 {
            (m.qdisc.be_limit_mbps() / total_demand).clamp(0.0, 1.0)
        } else {
            1.0
        };
        let total: f64 = m
            .be_instances()
            .filter(|b| b.state == BeState::Running)
            .filter_map(|b| {
                self.be_specs
                    .get(&b.workload)
                    .map(|s| s.progress_rate(b.alloc.cores, freq, b.alloc.llc_ways, net_frac))
            })
            .sum();
        // A machine cannot out-produce a dedicated solo machine: the solo
        // run already saturates the job's bottleneck resource (§5.1
        // normalization).
        total.min(1.0)
    }

    /// Instantaneous machine CPU utilization split (LC busy fraction,
    /// BE cores).
    fn cpu_utils(&self, i: usize) -> (f64, f64) {
        // Instantaneous busy fraction approximated by current busy count.
        let lc_busy_frac =
            (self.nodes.busy[i] as f64 / self.nodes.workers[i] as f64).clamp(0.0, 1.0);
        let m = &self.deployment.machines[i];
        let lc_cores_busy = lc_busy_frac * m.lc_alloc().cores as f64;
        let be_cores: u32 = m
            .be_instances()
            .filter(|b| b.state == BeState::Running)
            .map(|b| b.alloc.cores)
            .sum();
        (
            lc_cores_busy / m.spec().total_cores() as f64,
            be_cores as f64 * m.be_dvfs.speed_fraction() / m.spec().total_cores() as f64,
        )
    }

    /// Instantaneous memory-bandwidth utilization of machine `i`.
    fn membw_util(&self, i: usize) -> f64 {
        let m = &self.deployment.machines[i];
        let comp = &self.service.nodes[i].component;
        let lc = comp.membw_mbps_at(self.current_node_rate(i)) / m.spec().total_membw_mbps();
        let freq = m.be_dvfs.speed_fraction();
        let be: f64 = m
            .be_instances()
            .filter(|b| b.state == BeState::Running)
            .filter_map(|b| {
                self.be_specs
                    .get(&b.workload)
                    .map(|s| s.dram_pressure_per_core * b.alloc.cores as f64 * freq)
            })
            .sum();
        (lc + be).clamp(0.0, 1.0)
    }

    /// Integrates the slow-moving metrics since the last integration
    /// point (they only change at controller/metric ticks).
    fn integrate(&mut self, now: SimTime) {
        if now <= self.measure_from {
            return;
        }
        let from = self.last_integral_at.max(self.measure_from);
        let dt = now.saturating_since(from).as_secs_f64();
        self.last_integral_at = now;
        if dt <= 0.0 {
            return;
        }
        self.int_time += dt;
        self.offered_int += self.cfg.load.fraction_at(now).min(1.0) * dt;
        for i in 0..self.nodes.len() {
            self.be_progress_int[i] += self.be_rate(i) * dt;
            self.be_instances_int[i] += self.deployment.machines[i].be_count() as f64 * dt;
            let (lc, be) = self.cpu_utils(i);
            self.lc_cpu_util_int[i] += lc * dt;
            self.cpu_util_int[i] += (lc + be).min(1.0) * dt;
            self.membw_int[i] += self.membw_util(i) * dt;
        }
    }

    /// Accrues per-instance BE progress for the interval since the last
    /// accrual, using the allocations in effect over that interval. Must
    /// run *before* any BE mutation (controller tick, cluster barrier):
    /// a job suspended mid-epoch accrues only for the fraction of the
    /// tick it actually ran, never for the suspended remainder.
    fn accrue_be_progress(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_progress_at).as_secs_f64();
        if now > self.last_progress_at {
            self.last_progress_at = now;
        }
        if dt <= 0.0 {
            return;
        }
        for i in 0..self.deployment.machines.len() {
            let m = &self.deployment.machines[i];
            if m.running_be_count() == 0 {
                continue;
            }
            let freq = m.be_dvfs.speed_fraction();
            let total_demand: f64 = m
                .be_instances()
                .filter(|b| b.state == BeState::Running)
                .filter_map(|b| self.be_specs.get(&b.workload))
                .map(|s| s.net_demand_mbps)
                .sum();
            let net_frac = if total_demand > 0.0 {
                (m.qdisc.be_limit_mbps() / total_demand).clamp(0.0, 1.0)
            } else {
                1.0
            };
            // Same solo-machine clamp as `be_rate`: if the machine's raw
            // rates sum past 1.0, every instance is scaled down pro rata.
            let mut total = 0.0;
            let mut rates: Vec<(BeInstanceId, f64)> = Vec::new();
            for b in m.be_instances().filter(|b| b.state == BeState::Running) {
                let Some(s) = self.be_specs.get(&b.workload) else {
                    continue;
                };
                let r = s.progress_rate(b.alloc.cores, freq, b.alloc.llc_ways, net_frac)
                    / s.job_seconds;
                total += r * s.job_seconds;
                rates.push((b.id, r));
            }
            let scale = if total > 1.0 { 1.0 / total } else { 1.0 };
            for (id, r) in rates {
                let entry = self.be_job_progress[i].entry(id).or_insert_with(|| {
                    // Instance admitted outside the reconcile path (e.g.
                    // Static mode pre-population): start a ledger lazily.
                    let workload = self.deployment.machines[i]
                        .be_instances()
                        .find(|b| b.id == id)
                        .map(|b| b.workload.clone())
                        .unwrap_or_default();
                    BeProgress { workload, done: 0.0 }
                });
                entry.done += r * scale * dt;
            }
        }
    }

    /// Diffs each machine's live BE instances against the progress
    /// ledger: new instances are logged as admissions, vanished ones as
    /// kills (StopBE), carrying the progress accrued so far so the
    /// cluster can roll the job back to its last checkpoint.
    fn reconcile_be_ledger(&mut self, now: SimTime) {
        let Engine {
            deployment,
            be_job_progress,
            admitted_log,
            killed_log,
            telemetry,
            ..
        } = self;
        for (i, m) in deployment.machines.iter().enumerate() {
            let ledger = &mut be_job_progress[i];
            for b in m.be_instances() {
                if let std::collections::btree_map::Entry::Vacant(slot) = ledger.entry(b.id) {
                    slot.insert(BeProgress {
                        workload: b.workload.clone(),
                        done: 0.0,
                    });
                    telemetry.recorder.record(
                        now,
                        EventKind::BeAdmitted {
                            machine: i as u16,
                            instance: b.id as u32,
                        },
                    );
                    admitted_log.push(BeAdmission {
                        machine: i,
                        instance: b.id,
                        workload: b.workload.clone(),
                    });
                }
            }
            if ledger.len() != m.be_count() {
                let dead: Vec<BeInstanceId> = ledger
                    .keys()
                    .filter(|id| !m.be_instances().any(|b| b.id == **id))
                    .copied()
                    .collect();
                for id in dead {
                    // PANIC: `dead` was collected from this ledger just above.
                    let p = ledger.remove(&id).expect("dead id came from ledger");
                    telemetry.recorder.record(
                        now,
                        EventKind::BeKilled {
                            machine: i as u16,
                            instance: id as u32,
                            progress_pct: (p.done * 100.0) as u8,
                        },
                    );
                    killed_log.push(BeKill {
                        machine: i,
                        instance: id,
                        workload: p.workload,
                        progress: p.done,
                    });
                }
            }
        }
    }

    fn on_metrics(&mut self, now: SimTime) {
        self.flush_busy_integrals(now);
        self.integrate(now);
        self.accrue_be_progress(now);
        let next = now + SimDuration::from_secs(1);
        if next < self.end_at {
            self.cal.schedule(next, Ev::Metrics);
        }
    }

    fn on_control(&mut self, now: SimTime) {
        self.flush_busy_integrals(now);
        self.integrate(now);
        self.accrue_be_progress(now);
        let load_fraction = self.measured_rate(now) / self.maxload;
        let tail_ms = self.tail.quantile(now, 0.99);
        let slack = ThresholdPolicy::slack(tail_ms, self.cfg.sla_ms);
        let n = self.nodes.len();
        // Hot-Servpod attribution for the audit trail: the stage with the
        // highest mean sojourn over requests completed since the last
        // tick (delta of the cumulative per-node statistics).
        let audit_on = self.telemetry.audit_enabled();
        let mut hot: Option<(u32, f64)> = None;
        if audit_on {
            for i in 0..n {
                let count = self.sojourn_stats[i].count();
                let sum = self.sojourn_stats[i].mean() * count as f64;
                let (prev_count, prev_sum) = self.audit_prev[i];
                self.audit_prev[i] = (count, sum);
                let dc = count - prev_count;
                if dc > 0 {
                    let mean = (sum - prev_sum) / dc as f64;
                    if hot.is_none_or(|(_, m)| mean > m) {
                        hot = Some((i as u32, mean));
                    }
                }
            }
        }
        {
            // Borrow fields separately so the agents can mutate the
            // machines while the specs stay borrowed from the config —
            // no per-tick clone of the BE spec list.
            let Engine {
                agents,
                deployment,
                cfg,
                service,
                nodes,
                visits,
                maxload,
                be_offers,
                telemetry,
                ..
            } = self;
            let bes = &cfg.bes;
            for i in 0..n {
                let Some(agent) = agents[i].as_mut() else {
                    continue;
                };
                if bes.is_empty() && be_offers[i].is_none() {
                    continue;
                }
                let machine = &mut deployment.machines[i];
                let comp = &service.nodes[i].component;
                let rate = cfg.load.fraction_at(now) * *maxload * visits[i];
                let lc_cpu = (nodes.busy[i] as f64 / nodes.workers[i] as f64).clamp(0.0, 1.0);
                let be_cpu = if machine.running_be_count() > 0 { 1.0 } else { 0.0 };
                let (pending, be, be_priority) = if cfg.external_be {
                    // Cluster mode: the dispatcher offers at most one job
                    // per machine per epoch; the machine's own queue is
                    // empty unless an offer is posted.
                    match &be_offers[i] {
                        Some((spec, prio)) => (true, &**spec, *prio),
                        None => {
                            let Some(fallback) = bes.first() else {
                                continue;
                            };
                            (false, fallback, 0)
                        }
                    }
                } else {
                    // Round-robin the BE workload offered to the
                    // admission step. Scheduler interaction (§4): the
                    // machine only receives new BE jobs while the
                    // scheduler's queue for it is non-empty.
                    let be = &bes[(machine.be_started as usize) % bes.len()];
                    let pending = match cfg.be_queue_per_machine {
                        None => true,
                        Some(limit) => machine.be_started < limit as u64,
                    };
                    (pending, be, 0)
                };
                let inputs = AgentInputs {
                    load_fraction,
                    tail_ms,
                    sla_ms: cfg.sla_ms,
                    lc_net_mbps: comp.net_mbps_at(rate),
                    lc_cpu_util: lc_cpu,
                    be_cpu_util: be_cpu,
                    be_jobs_pending: pending,
                    be_priority,
                };
                let (action, before, after) =
                    agent.tick_traced(machine, be, &inputs, &mut telemetry.recorder, now, i as u16);
                if audit_on {
                    let th = agent.policy().thresholds();
                    telemetry.audit.push(AuditRecord {
                        t_s: now.as_secs_f64(),
                        machine: i as u32,
                        pod: service.nodes[i].component.name.clone(),
                        action: ActionCode::from_severity(action.severity()),
                        trigger: Trigger::classify(load_fraction, slack, th.loadlimit, th.slacklimit),
                        load: load_fraction,
                        loadlimit: th.loadlimit,
                        slack,
                        slacklimit: th.slacklimit,
                        tail_ms,
                        sla_ms: cfg.sla_ms,
                        hot_pod: hot.map(|(idx, _)| idx),
                        hot_pod_name: hot
                            .map(|(idx, _)| service.nodes[idx as usize].component.name.clone())
                            .unwrap_or_default(),
                        hot_pod_ms: hot.map(|(_, ms)| ms).unwrap_or(0.0),
                        before,
                        after,
                    });
                }
            }
        }
        self.reconcile_be_ledger(now);
        self.refresh_inflations();
        if self.cfg.record_timeline && now >= self.measure_from {
            let point = TimelinePoint {
                t_s: now.as_secs_f64(),
                load: load_fraction,
                slack,
                cpu_util_pct: (0..n)
                    .map(|i| {
                        let (lc, be) = self.cpu_utils(i);
                        (lc + be) * 100.0
                    })
                    .collect(),
                be_llc_ways: (0..n)
                    .map(|i| self.deployment.machines[i].cat().be_ways())
                    .collect(),
                be_cores: (0..n)
                    .map(|i| self.deployment.machines[i].be_total_alloc().cores)
                    .collect(),
                be_instances: (0..n)
                    .map(|i| self.deployment.machines[i].be_count() as u32)
                    .collect(),
                be_throughput: (0..n).map(|i| self.be_rate(i)).collect(),
            };
            self.timeline.push(point);
        }
        if self.telemetry.tail_enabled() {
            self.telemetry.tail.tick(now.as_secs_f64(), self.cfg.sla_ms);
        }
        let next = now + self.cfg.controller_period;
        if next < self.end_at {
            self.cal.schedule(next, Ev::Control);
        }
    }

    /// Consumes the engine and produces the run's outputs. With the
    /// epoch-stepped API, call after `run_until` has drained the
    /// calendar (or at whatever point the cluster ends the run).
    pub fn finish_run(mut self) -> EngineOutput {
        let end = self.end_at;
        // Final flush point. Phase-end events drain past `end_at`, so
        // settle at whichever is later.
        self.flush_busy_integrals(end.max(self.cal.now()));
        self.integrate(end);
        self.accrue_be_progress(end);
        if !self.window_hist.is_empty() {
            self.worst_window_p99 = self.worst_window_p99.max(self.window_hist.p99());
        }
        let t = self.int_time.max(1e-9);
        let pods = (0..self.nodes.len())
            .map(|i| PodRuntime {
                name: self.service.nodes[i].component.name.clone(),
                cpu_util: self.cpu_util_int[i] / t,
                lc_cpu_util: self.lc_cpu_util_int[i] / t,
                membw_util: self.membw_int[i] / t,
                be_throughput: self.be_progress_int[i] / t,
                be_instances_avg: self.be_instances_int[i] / t,
                agent: self.agents[i].as_ref().map(|a| a.stats()),
                sojourn_stats: self.sojourn_stats[i],
            })
            .collect();
        let pod_names: Vec<String> = self
            .service
            .nodes
            .iter()
            .map(|n| n.component.name.clone())
            .collect();
        let telemetry = self.telemetry.into_output(pod_names);
        EngineOutput {
            completed: self.completed,
            completed_total: self.completed_total,
            latency: self.hist,
            sla_ms: self.cfg.sla_ms,
            maxload_rps: self.maxload,
            offered_load_avg: self.offered_int / t,
            measured_s: t,
            worst_window_p99_ms: self.worst_window_p99,
            pods,
            sojourns: self.sojourns,
            visit_trees: self.visit_trees,
            timeline: self.timeline,
            telemetry,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot support: everything below serialises the engine's *dynamic*
// state. Structure derived purely from `(service, cfg)` — samplers,
// maxload, expected visits, agent policies — is rebuilt by `Engine::new`
// on restore and never written, so the codec stays small and a schema
// mismatch is caught by the crate hash, not a garbage decode.
//
// Excluded by design: `visit_pool` / `plan_stack` / `plan_sampled`
// (recycled scratch; capacity only, never behaviour) and `visit_trees`
// (profiling captures; cluster runs never enable `capture_visits`).
// ---------------------------------------------------------------------------

impl Snapshot for Ev {
    fn encode(&self, w: &mut Writer) {
        match *self {
            Ev::Arrive => w.u8(0),
            Ev::PhaseEnd { req, visit } => {
                w.u8(1);
                req.encode(w);
                w.u64(visit as u64);
            }
            Ev::Control => w.u8(2),
            Ev::Metrics => w.u8(3),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Ev::Arrive,
            1 => Ev::PhaseEnd {
                req: Snapshot::decode(r)?,
                visit: r.u64()? as usize,
            },
            2 => Ev::Control,
            3 => Ev::Metrics,
            t => return Err(SnapshotError::Corrupt(format!("unknown event tag {t}"))),
        })
    }
}

impl Snapshot for Visit {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.node as u64);
        self.parent
            .map(|(p, s)| (p as u64, s as u64))
            .encode(w);
        let children: Vec<u64> = self.children.iter().map(|&c| c as u64).collect();
        children.encode(w);
        w.bool(self.parallel);
        w.u64(self.phase as u64);
        w.u64(self.n_phases as u64);
        w.u64(self.pending_children as u64);
        self.phase_start.encode(w);
        w.u64(self.sojourn_ns);
        self.phase_rec.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let node = r.u64()? as usize;
        let parent: Option<(u64, u64)> = Snapshot::decode(r)?;
        let children: Vec<u64> = Snapshot::decode(r)?;
        let parallel = r.bool()?;
        let phase = r.u64()? as usize;
        let n_phases = r.u64()? as usize;
        let pending_children = r.u64()? as usize;
        if pending_children > children.len() {
            return Err(SnapshotError::Corrupt(format!(
                "visit waits on {pending_children} children but has {}",
                children.len()
            )));
        }
        Ok(Visit {
            node,
            parent: parent.map(|(p, s)| (p as usize, s as usize)),
            children: children.into_iter().map(|c| c as usize).collect(),
            parallel,
            phase,
            n_phases,
            pending_children,
            phase_start: Snapshot::decode(r)?,
            sojourn_ns: r.u64()?,
            phase_rec: Snapshot::decode(r)?,
        })
    }
}

impl Snapshot for Request {
    fn encode(&self, w: &mut Writer) {
        self.arrival.encode(w);
        // Only the live plan travels; stale slots past `used` are
        // recycled buffers whose contents never influence behaviour.
        self.visits[..self.used].to_vec().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let arrival: SimTime = Snapshot::decode(r)?;
        let visits: Vec<Visit> = Snapshot::decode(r)?;
        let used = visits.len();
        for v in &visits {
            if let Some((p, _)) = v.parent {
                if p >= used {
                    return Err(SnapshotError::Corrupt(format!(
                        "visit parent {p} out of range ({used} visits)"
                    )));
                }
            }
            if v.children.iter().any(|&c| c >= used) {
                return Err(SnapshotError::Corrupt("visit child out of range".into()));
            }
        }
        Ok(Request {
            arrival,
            visits,
            used,
        })
    }
}

impl Snapshot for InflationInputs {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.epoch);
        w.u32(self.lc_mhz);
        w.u32(self.be_mhz);
        w.u64(self.be_limit_bits);
        w.u64(self.rate_bits);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(InflationInputs {
            epoch: r.u64()?,
            lc_mhz: r.u32()?,
            be_mhz: r.u32()?,
            be_limit_bits: r.u64()?,
            rate_bits: r.u64()?,
        })
    }
}

impl NodeTables {
    /// Encodes node `i` in the original array-of-structs field order —
    /// the wire layout predates the SoA refactor and is pinned by the
    /// `rhythm-core` schema hash and the container byte golden, so the
    /// SoA tables serialise through the same per-node record. The
    /// `busy_area` written is the flush-point evaluation of the batched
    /// integral, bit-identical to the old per-transition field.
    fn encode_node(&self, i: usize, w: &mut Writer) {
        w.u32(self.workers[i]);
        w.u32(self.busy[i]);
        let queue: Vec<(ReqKey, u64)> =
            self.queue[i].iter().map(|&(k, v)| (k, v as u64)).collect();
        queue.encode(w);
        w.f64(self.inflation[i]);
        w.u128(self.settled_area(i));
        self.last_busy_change[i].encode(w);
        w.u64(self.visits_done_window[i]);
    }

    /// Decodes one node record into slot `i`, converting the settled
    /// `busy_area` back into the transition-moment sum the hot path
    /// maintains (`tweight = busy·t_last − area`). Rejects records whose
    /// busy count exceeds the worker pool or whose integral exceeds the
    /// `workers × elapsed` bound — both impossible for any real run.
    fn decode_node(&mut self, i: usize, r: &mut Reader<'_>) -> Result<(), SnapshotError> {
        let workers = r.u32()?;
        let busy = r.u32()?;
        if busy > workers {
            return Err(SnapshotError::Corrupt(format!(
                "node claims {busy} busy workers of {workers}"
            )));
        }
        let queue: Vec<(ReqKey, u64)> = Snapshot::decode(r)?;
        let inflation = r.f64()?;
        let busy_area = r.u128()?;
        let last_busy_change: SimTime = Snapshot::decode(r)?;
        let visits_done_window = r.u64()?;
        if workers != self.workers[i] {
            return Err(SnapshotError::Corrupt(format!(
                "node {i} has {workers} workers, service says {}",
                self.workers[i]
            )));
        }
        if busy_area > workers as u128 * last_busy_change.as_nanos() as u128 {
            return Err(SnapshotError::Corrupt(format!(
                "node {i} busy integral exceeds workers × elapsed"
            )));
        }
        self.busy[i] = busy;
        self.queue[i] = queue.into_iter().map(|(k, v)| (k, v as usize)).collect();
        self.inflation[i] = inflation;
        self.busy_tweight[i] =
            busy as i128 * last_busy_change.as_nanos() as i128 - busy_area as i128;
        self.busy_area[i] = busy_area;
        self.last_busy_change[i] = last_busy_change;
        self.visits_done_window[i] = visits_done_window;
        Ok(())
    }
}

impl Snapshot for BeProgress {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.workload);
        w.f64(self.done);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(BeProgress {
            workload: r.str()?,
            done: r.f64()?,
        })
    }
}

impl Snapshot for BeAdmission {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.machine as u64);
        w.u64(self.instance);
        w.str(&self.workload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(BeAdmission {
            machine: r.u64()? as usize,
            instance: r.u64()?,
            workload: r.str()?,
        })
    }
}

impl Snapshot for BeKill {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.machine as u64);
        w.u64(self.instance);
        w.str(&self.workload);
        w.f64(self.progress);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(BeKill {
            machine: r.u64()? as usize,
            instance: r.u64()?,
            workload: r.str()?,
            progress: r.f64()?,
        })
    }
}

impl Snapshot for TimelinePoint {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.t_s);
        w.f64(self.load);
        w.f64(self.slack);
        self.cpu_util_pct.encode(w);
        self.be_llc_ways.encode(w);
        self.be_cores.encode(w);
        self.be_instances.encode(w);
        self.be_throughput.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(TimelinePoint {
            t_s: r.f64()?,
            load: r.f64()?,
            slack: r.f64()?,
            cpu_util_pct: Snapshot::decode(r)?,
            be_llc_ways: Snapshot::decode(r)?,
            be_cores: Snapshot::decode(r)?,
            be_instances: Snapshot::decode(r)?,
            be_throughput: Snapshot::decode(r)?,
        })
    }
}

/// Structural digest of one machine for snapshot post-mortems
/// ([`crate::Engine::snapshot_summary`]); rendered by `repro
/// snapshot-diff`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineMachineSummary {
    /// Servpod (component) name hosted on the machine.
    pub pod: String,
    /// BE instances present (running + suspended).
    pub be_instances: u32,
    /// BE instances currently running.
    pub be_running: u32,
    /// Cores granted to BE.
    pub be_cores: u32,
    /// LLC ways granted to BE.
    pub be_llc_ways: u32,
    /// LC DVFS point in MHz.
    pub lc_freq_mhz: u32,
    /// BE DVFS point in MHz.
    pub be_freq_mhz: u32,
    /// BE instances ever started.
    pub be_started: u64,
    /// BE instances ever killed.
    pub be_killed: u64,
}

/// Structural digest of one engine for snapshot post-mortems: enough to
/// diff two snapshots without decoding the full engine byte stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineSummary {
    /// Requests completed in total (including warm-up).
    pub completed_total: u64,
    /// Requests in flight at the snapshot point.
    pub inflight: u64,
    /// Events pending in the calendar.
    pub pending_events: u64,
    /// Per-machine digests, in Servpod order.
    pub machines: Vec<EngineMachineSummary>,
}

impl Snapshot for EngineMachineSummary {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.pod);
        w.u32(self.be_instances);
        w.u32(self.be_running);
        w.u32(self.be_cores);
        w.u32(self.be_llc_ways);
        w.u32(self.lc_freq_mhz);
        w.u32(self.be_freq_mhz);
        w.u64(self.be_started);
        w.u64(self.be_killed);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(EngineMachineSummary {
            pod: r.str()?,
            be_instances: r.u32()?,
            be_running: r.u32()?,
            be_cores: r.u32()?,
            be_llc_ways: r.u32()?,
            lc_freq_mhz: r.u32()?,
            be_freq_mhz: r.u32()?,
            be_started: r.u64()?,
            be_killed: r.u64()?,
        })
    }
}

impl Snapshot for EngineSummary {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.completed_total);
        w.u64(self.inflight);
        w.u64(self.pending_events);
        self.machines.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(EngineSummary {
            completed_total: r.u64()?,
            inflight: r.u64()?,
            pending_events: r.u64()?,
            machines: Snapshot::decode(r)?,
        })
    }
}

impl Engine {
    /// Serialises the engine's dynamic state. The stream is canonical:
    /// identical state yields identical bytes, and re-encoding a restored
    /// engine reproduces the stream bit for bit.
    pub fn snapshot_encode(&self, w: &mut Writer) {
        self.deployment.machines.encode(w);
        w.u64(self.nodes.len() as u64);
        for i in 0..self.nodes.len() {
            self.nodes.encode_node(i, w);
        }
        let agents: Vec<Option<(AgentStats, Option<BeAction>)>> = self
            .agents
            .iter()
            .map(|a| a.as_ref().map(|a| (a.stats(), a.last_action())))
            .collect();
        agents.encode(w);
        self.be_specs.encode(w);
        self.cal.encode(w);
        self.rng_arrival.encode(w);
        self.rng_service.encode(w);
        self.rng_path.encode(w);
        self.requests.encode(w);
        self.inflation_inputs.encode(w);
        self.tail.encode(w);
        self.arrivals_ring.encode(w);
        self.hist.encode(w);
        w.u64(self.completed);
        w.u64(self.completed_total);
        self.window_hist.encode(w);
        w.u64(self.window_epoch);
        w.f64(self.worst_window_p99);
        self.sojourn_stats.encode(w);
        self.sojourns.encode(w);
        self.timeline.encode(w);
        self.be_progress_int.encode(w);
        self.be_instances_int.encode(w);
        self.cpu_util_int.encode(w);
        self.lc_cpu_util_int.encode(w);
        self.membw_int.encode(w);
        w.f64(self.offered_int);
        w.f64(self.int_time);
        self.last_integral_at.encode(w);
        let offers: Vec<Option<(BeSpec, u8)>> = self
            .be_offers
            .iter()
            .map(|o| o.as_ref().map(|(s, p)| ((**s).clone(), *p)))
            .collect();
        offers.encode(w);
        self.be_job_progress.encode(w);
        self.last_progress_at.encode(w);
        self.admitted_log.encode(w);
        self.killed_log.encode(w);
        self.telemetry.encode(w);
        self.audit_prev.encode(w);
    }

    /// Rebuilds an engine from `(service, cfg)` — which must match the
    /// capturing run — and the dynamic state in `r`. The restored engine
    /// continues bit-identically to the one that was captured; state that
    /// contradicts the deployment (wrong machine count or spec, dangling
    /// request keys) is refused as [`SnapshotError::Corrupt`].
    pub fn snapshot_restore(
        service: impl Into<Arc<ServiceSpec>>,
        cfg: EngineConfig,
        r: &mut Reader<'_>,
    ) -> Result<Engine, SnapshotError> {
        let mut e = Engine::new(service, cfg);
        let n = e.nodes.len();
        let machines: Vec<Machine> = Snapshot::decode(r)?;
        if machines.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {} machines, deployment has {n}",
                machines.len()
            )));
        }
        for (m, fresh) in machines.iter().zip(&e.deployment.machines) {
            if m.spec() != fresh.spec() {
                return Err(SnapshotError::Corrupt(
                    "snapshot machine spec differs from the configured deployment".into(),
                ));
            }
        }
        e.deployment.machines = machines;
        let n_nodes = r.len(8)?;
        if n_nodes != n {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot has {n_nodes} nodes, service has {n}"
            )));
        }
        for i in 0..n {
            e.nodes.decode_node(i, r)?;
        }
        let agents: Vec<Option<(AgentStats, Option<BeAction>)>> = Snapshot::decode(r)?;
        if agents.len() != n {
            return Err(SnapshotError::Corrupt("agent count mismatch".into()));
        }
        for (i, state) in agents.into_iter().enumerate() {
            match (e.agents[i].as_mut(), state) {
                (Some(agent), Some((stats, last))) => agent.restore_state(stats, last),
                (None, None) => {}
                _ => {
                    return Err(SnapshotError::Corrupt(
                        "agent presence differs from the configured control mode".into(),
                    ))
                }
            }
        }
        e.be_specs = Snapshot::decode(r)?;
        e.cal = Snapshot::decode(r)?;
        e.rng_arrival = Snapshot::decode(r)?;
        e.rng_service = Snapshot::decode(r)?;
        e.rng_path = Snapshot::decode(r)?;
        e.requests = Snapshot::decode(r)?;
        for (_k, req) in e.requests.iter() {
            if req.visits[..req.used].iter().any(|v| v.node >= n) {
                return Err(SnapshotError::Corrupt("visit node out of range".into()));
            }
        }
        for queue in &e.nodes.queue {
            for &(key, visit) in queue {
                let ok = e
                    .requests
                    .get(key)
                    .map(|req| visit < req.used)
                    .unwrap_or(false);
                if !ok {
                    return Err(SnapshotError::Corrupt(
                        "node queue references a request that is not in flight".into(),
                    ));
                }
            }
        }
        e.inflation_inputs = Snapshot::decode(r)?;
        if e.inflation_inputs.len() != n {
            return Err(SnapshotError::Corrupt("inflation cache length mismatch".into()));
        }
        e.tail = Snapshot::decode(r)?;
        e.arrivals_ring = Snapshot::decode(r)?;
        e.hist = Snapshot::decode(r)?;
        e.completed = r.u64()?;
        e.completed_total = r.u64()?;
        e.window_hist = Snapshot::decode(r)?;
        e.window_epoch = r.u64()?;
        e.worst_window_p99 = r.f64()?;
        e.sojourn_stats = Snapshot::decode(r)?;
        if e.sojourn_stats.len() != n {
            return Err(SnapshotError::Corrupt("sojourn stats length mismatch".into()));
        }
        e.sojourns = Snapshot::decode(r)?;
        if e.sojourns.is_some() != e.cfg.collect_sojourns {
            return Err(SnapshotError::Corrupt(
                "sojourn collection differs from the configured run".into(),
            ));
        }
        e.timeline = Snapshot::decode(r)?;
        e.be_progress_int = Snapshot::decode(r)?;
        e.be_instances_int = Snapshot::decode(r)?;
        e.cpu_util_int = Snapshot::decode(r)?;
        e.lc_cpu_util_int = Snapshot::decode(r)?;
        e.membw_int = Snapshot::decode(r)?;
        w_len_check(&e.be_progress_int, n)?;
        w_len_check(&e.be_instances_int, n)?;
        w_len_check(&e.cpu_util_int, n)?;
        w_len_check(&e.lc_cpu_util_int, n)?;
        w_len_check(&e.membw_int, n)?;
        e.offered_int = r.f64()?;
        e.int_time = r.f64()?;
        e.last_integral_at = Snapshot::decode(r)?;
        let offers: Vec<Option<(BeSpec, u8)>> = Snapshot::decode(r)?;
        if offers.len() != n {
            return Err(SnapshotError::Corrupt("offer table length mismatch".into()));
        }
        e.be_offers = offers
            .into_iter()
            .map(|o| o.map(|(s, p)| (Arc::new(s), p)))
            .collect();
        e.be_job_progress = Snapshot::decode(r)?;
        if e.be_job_progress.len() != n {
            return Err(SnapshotError::Corrupt("progress ledger length mismatch".into()));
        }
        e.last_progress_at = Snapshot::decode(r)?;
        e.admitted_log = Snapshot::decode(r)?;
        e.killed_log = Snapshot::decode(r)?;
        e.telemetry = Snapshot::decode(r)?;
        e.audit_prev = Snapshot::decode(r)?;
        if e.audit_prev.len() != n {
            return Err(SnapshotError::Corrupt("audit cache length mismatch".into()));
        }
        // The captured run had already started; `start()` must not
        // re-run setup on the restored state.
        e.started = true;
        Ok(e)
    }

    /// A structural digest of the engine for snapshot post-mortems
    /// (stored next to the full byte stream so `repro snapshot-diff`
    /// never needs the service spec to render a comparison).
    pub fn snapshot_summary(&self) -> EngineSummary {
        EngineSummary {
            completed_total: self.completed_total,
            inflight: self.requests.len() as u64,
            pending_events: self.cal.len() as u64,
            machines: (0..self.nodes.len())
                .map(|i| {
                    let m = &self.deployment.machines[i];
                    EngineMachineSummary {
                        pod: self.service.nodes[i].component.name.clone(),
                        be_instances: m.be_count() as u32,
                        be_running: m.running_be_count() as u32,
                        be_cores: m.be_total_alloc().cores,
                        be_llc_ways: m.cat().be_ways(),
                        lc_freq_mhz: m.lc_dvfs.current_mhz(),
                        be_freq_mhz: m.be_dvfs.current_mhz(),
                        be_started: m.be_started,
                        be_killed: m.be_killed,
                    }
                })
                .collect(),
        }
    }
}

fn w_len_check(v: &[f64], n: usize) -> Result<(), SnapshotError> {
    if v.len() != n {
        return Err(SnapshotError::Corrupt("integral length mismatch".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::apps;
    use rhythm_workloads::BeKind;

    fn quick_solo(load: f64, seed: u64) -> EngineOutput {
        let cfg = EngineConfig::solo(load, 30, seed);
        Engine::new(apps::ecommerce(), cfg).run()
    }

    #[test]
    fn solo_run_completes_requests() {
        let out = quick_solo(0.5, 1);
        // 0.5 × ~590 rps × ~27 measured seconds.
        assert!(out.completed > 500, "completed={}", out.completed);
        assert!(out.p99_ms() > out.mean_ms());
        assert!(out.mean_ms() > 20.0, "mean={}", out.mean_ms());
    }

    #[test]
    fn latency_grows_with_load() {
        let low = quick_solo(0.2, 2);
        let high = quick_solo(0.9, 2);
        assert!(
            high.p99_ms() > 1.5 * low.p99_ms(),
            "p99 {} vs {}",
            high.p99_ms(),
            low.p99_ms()
        );
    }

    #[test]
    fn determinism() {
        let a = quick_solo(0.6, 7);
        let b = quick_solo(0.6, 7);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.p99_ms(), b.p99_ms());
        let c = quick_solo(0.6, 8);
        assert_ne!(a.completed, c.completed);
    }

    #[test]
    fn sojourn_ordering_matches_figure6() {
        // MySQL should have the largest mean sojourn at high load;
        // HAProxy and Amoeba tiny.
        let out = quick_solo(0.8, 3);
        let by_name: std::collections::BTreeMap<&str, f64> = out
            .pods
            .iter()
            .map(|p| (p.name.as_str(), p.sojourn_stats.mean()))
            .collect();
        assert!(by_name["mysql"] > by_name["amoeba"]);
        assert!(by_name["mysql"] > by_name["haproxy"]);
        assert!(by_name["tomcat"] > by_name["amoeba"]);
    }

    #[test]
    fn static_colocation_inflates_latency() {
        let solo = quick_solo(0.6, 4);
        let mut cfg = EngineConfig::solo(0.6, 30, 4);
        cfg.bes = vec![BeSpec::of(BeKind::StreamDram { big: true })];
        cfg.mode = ControlMode::Static {
            instances: 2,
            cores: 4,
            llc_ways: 4,
            pods: Vec::new(),
        };
        let coloc = Engine::new(apps::ecommerce(), cfg).run();
        assert!(
            coloc.p99_ms() > 1.3 * solo.p99_ms(),
            "colocated p99 {} vs solo {}",
            coloc.p99_ms(),
            solo.p99_ms()
        );
    }

    #[test]
    fn managed_mode_launches_and_controls_be() {
        let solo = quick_solo(0.5, 5);
        let mut cfg = EngineConfig::solo(0.5, 60, 5);
        cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
        cfg.sla_ms = solo.p99_ms() * 1.6;
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.05); 4],
        };
        let sla_ms = cfg.sla_ms;
        let out = Engine::new(apps::ecommerce(), cfg).run();
        let total_be: f64 = out.pods.iter().map(|p| p.be_throughput).sum();
        assert!(total_be > 0.05, "BE made progress: {total_be}");
        for p in &out.pods {
            assert!(p.agent.is_some());
            assert!(p.cpu_util >= p.lc_cpu_util);
        }
        // SLA should hold with these generous targets.
        assert!(out.p99_ms() <= sla_ms * 1.05, "p99 {} sla {}", out.p99_ms(), sla_ms);
    }

    #[test]
    fn sojourn_collection_and_visit_trees() {
        let mut cfg = EngineConfig::solo(0.4, 20, 6);
        cfg.collect_sojourns = true;
        cfg.capture_visits = true;
        let out = Engine::new(apps::ecommerce(), cfg).run();
        let s = out.sojourns.as_ref().unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].len() as u64, out.completed);
        assert_eq!(out.visit_trees.len() as u64, out.completed);
        // Ground truth: tree sojourns equal collected sojourns on average.
        let tree_mean: f64 = out
            .visit_trees
            .iter()
            .map(|t| t.sojourn_ms())
            .sum::<f64>()
            / out.visit_trees.len() as f64;
        let collected_mean = s[0].iter().sum::<f64>() / s[0].len() as f64;
        assert!((tree_mean - collected_mean).abs() < 1e-6);
    }

    #[test]
    fn fan_out_service_runs() {
        let cfg = EngineConfig::solo(0.6, 30, 7);
        let out = Engine::new(apps::snms(), cfg).run();
        assert!(out.completed > 500, "completed={}", out.completed);
        // All three pods visited.
        for p in &out.pods {
            assert!(p.sojourn_stats.count() > 0, "{} never visited", p.name);
        }
    }

    #[test]
    fn probabilistic_calls_visit_sometimes() {
        let cfg = EngineConfig::solo(0.5, 20, 8);
        let out = Engine::new(apps::elgg(), cfg).run();
        let mysql_visits = out.pods[2].sojourn_stats.count();
        let front_visits = out.pods[0].sojourn_stats.count();
        assert!(mysql_visits > 0);
        let ratio = mysql_visits as f64 / front_visits as f64;
        assert!((0.2..0.4).contains(&ratio), "p=0.3 visits, got {ratio}");
    }

    #[test]
    fn finite_be_queue_limits_admissions() {
        let mut cfg = EngineConfig::solo(0.4, 60, 11);
        cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
        cfg.sla_ms = 10_000.0;
        cfg.be_queue_per_machine = Some(2);
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.05); 4],
        };
        let out = Engine::new(apps::ecommerce(), cfg).run();
        for p in &out.pods {
            assert!(
                p.be_instances_avg <= 2.0 + 1e-9,
                "{}: {} instances with a 2-job queue",
                p.name,
                p.be_instances_avg
            );
        }
    }

    #[test]
    fn suspended_instance_accrues_no_progress() {
        // Hand-computed timeline for the progress ledger: one wordcount
        // instance with a fixed 2-core / 2-way grant on machine 0 of an
        // otherwise-solo run (no controller touches it).
        //
        //   t in [0.0, 3.5)  running   -> accrues at `rate`
        //   t in [3.5, 5.0)  suspended -> accrues nothing
        //   t in [5.0, 8.0)  running   -> accrues at `rate`
        //
        // so progress(5.0) = 3.5·rate and progress(8.0) = 6.5·rate. A
        // ledger that accrues the whole tick for a job suspended mid-tick
        // would report 4·rate and 7·rate instead.
        let spec = BeSpec::of(BeKind::Wordcount);
        let mut cfg = EngineConfig::solo(0.3, 30, 5);
        cfg.bes = vec![spec.clone()];
        let mut engine = Engine::new(apps::ecommerce(), cfg);
        engine.start();
        let m = &mut engine.deployment.machines[0];
        let grant = Allocation {
            cores: 2,
            llc_ways: 2,
            mem_mb: spec.mem_mb,
            net_mbps: 0.0,
            freq_mhz: m.be_dvfs.current_mhz(),
        };
        let freq = m.be_dvfs.speed_fraction();
        // Wordcount is network-hungry and the solo machine grants BE no
        // qdisc share, so the engine accrues at the 5% network floor.
        let net_frac = (m.qdisc.be_limit_mbps() / spec.net_demand_mbps).clamp(0.0, 1.0);
        let id = m.admit_be(&spec.name, grant).expect("machine has headroom");
        let rate = spec.progress_rate(2, freq, 2, net_frac) / spec.job_seconds;
        assert!(rate > 0.0);
        let at = |s_ms: u64| SimTime::ZERO + SimDuration::from_millis(s_ms);

        engine.run_until(at(3_000));
        engine.sync_be_progress(at(3_500));
        engine.deployment.machines[0].suspend_be(id).expect("suspend");
        engine.run_until(at(5_000));
        engine.sync_be_progress(at(5_000));
        let at_5 = engine.be_progress(0, id).expect("ledger entry");
        engine.deployment.machines[0].resume_be(id).expect("resume");
        engine.run_until(at(8_000));
        engine.sync_be_progress(at(8_000));
        let at_8 = engine.be_progress(0, id).expect("ledger entry");

        assert!(
            (at_5 - 3.5 * rate).abs() < 1e-12,
            "suspended fraction of the tick accrued: {at_5} vs {}",
            3.5 * rate
        );
        assert!(
            (at_8 - 6.5 * rate).abs() < 1e-12,
            "resume accrual off: {at_8} vs {}",
            6.5 * rate
        );
    }

    fn managed_cfg(seed: u64) -> EngineConfig {
        let mut cfg = EngineConfig::solo(0.5, 60, seed);
        cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
        cfg.sla_ms = 400.0;
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.05); 4],
        };
        cfg.telemetry = TelemetryConfig::full();
        cfg
    }

    /// Fingerprint of a finished run, bit-exact (f64s compared by bits).
    fn run_fingerprint(out: &EngineOutput) -> (u64, u64, u64, u64, usize, usize) {
        let t = out.telemetry.as_ref().expect("telemetry on");
        (
            out.completed,
            out.completed_total,
            out.p99_ms().to_bits(),
            out.worst_window_p99_ms.to_bits(),
            t.events.len(),
            t.audit.len(),
        )
    }

    #[test]
    fn snapshot_resume_is_bit_identical() {
        // Straight-through run.
        let direct = Engine::new(apps::ecommerce(), managed_cfg(21)).run();

        // Run to t=20s, snapshot, restore, run to completion.
        let mut first = Engine::new(apps::ecommerce(), managed_cfg(21));
        first.run_until(SimTime::ZERO + SimDuration::from_secs(20));
        let mut w = Writer::new();
        first.snapshot_encode(&mut w);
        let bytes = w.into_bytes();
        let resumed = Engine::snapshot_restore(
            apps::ecommerce(),
            managed_cfg(21),
            &mut Reader::new(&bytes),
        )
        .expect("snapshot restores");
        // Re-encoding the restored engine is byte-identical (canonical
        // codec).
        let mut w2 = Writer::new();
        resumed.snapshot_encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        let out = resumed.run();
        assert_eq!(run_fingerprint(&out), run_fingerprint(&direct));
        // Tail-series splice: no duplicated or missing points.
        let a = &out.telemetry.as_ref().unwrap().tail;
        let b = &direct.telemetry.as_ref().unwrap().tail;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_restore_rejects_wrong_deployment() {
        let mut e = Engine::new(apps::ecommerce(), managed_cfg(22));
        e.run_until(SimTime::ZERO + SimDuration::from_secs(10));
        let mut w = Writer::new();
        e.snapshot_encode(&mut w);
        let bytes = w.into_bytes();
        // Wrong service shape (3 pods instead of 4).
        let mut cfg = managed_cfg(22);
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.05); 3],
        };
        let r = Engine::snapshot_restore(apps::snms(), cfg, &mut Reader::new(&bytes));
        assert!(matches!(r.err(), Some(SnapshotError::Corrupt(_))));
        // Truncated stream.
        let r = Engine::snapshot_restore(
            apps::ecommerce(),
            managed_cfg(22),
            &mut Reader::new(&bytes[..bytes.len() / 2]),
        );
        assert!(r.is_err());
    }

    /// A `-1` busy delta with no matching `+1` is a phase-accounting
    /// bug; debug builds must refuse it loudly instead of letting it
    /// corrupt utilization accounting.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "busy underflow")]
    fn busy_underflow_is_caught_in_debug() {
        let mut e = Engine::new(apps::ecommerce(), EngineConfig::solo(0.5, 10, 1));
        e.update_busy(0, SimTime::from_millis(5), -1);
    }

    /// Release builds saturate a mismatched delta at zero busy workers,
    /// and the effective (clamped) delta keeps the busy count and the
    /// batched integral mutually consistent: later transitions still
    /// produce the exact integral.
    #[cfg(not(debug_assertions))]
    #[test]
    fn busy_underflow_saturates_in_release() {
        let mut e = Engine::new(apps::ecommerce(), EngineConfig::solo(0.5, 10, 1));
        e.update_busy(0, SimTime::from_nanos(1_000), -1);
        assert_eq!(e.nodes.busy[0], 0, "saturated at zero");
        assert_eq!(e.busy_area_ns(0), 0, "no phantom area from the clamp");
        e.update_busy(0, SimTime::from_nanos(2_000), 1);
        e.update_busy(0, SimTime::from_nanos(5_000), -1);
        assert_eq!(e.nodes.busy[0], 0);
        assert_eq!(e.busy_area_ns(0), 3_000, "integral of the real +1/-1 pair");
    }

    /// Flushing is pure settlement: calling it at arbitrary instants
    /// between transitions changes neither the busy count nor any later
    /// integral value.
    #[test]
    fn flush_is_idempotent_and_placement_invariant() {
        let mut a = Engine::new(apps::ecommerce(), EngineConfig::solo(0.6, 20, 3));
        let mut b = Engine::new(apps::ecommerce(), EngineConfig::solo(0.6, 20, 3));
        for step in 1..=40u64 {
            let t = SimTime::ZERO + SimDuration::from_millis(step * 250);
            a.run_until(t);
            b.run_until(t);
            // `a` flushes at every step (and twice); `b` never does.
            a.flush_busy_integrals(t);
            a.flush_busy_integrals(t);
        }
        for i in 0..a.machine_count() {
            assert_eq!(a.busy_area_ns(i), b.busy_area_ns(i));
        }
        let (fa, fb) = (a.run(), b.run());
        assert_eq!(fa.completed, fb.completed);
        assert_eq!(fa.p99_ms().to_bits(), fb.p99_ms().to_bits());
    }

    mod node_table_roundtrip {
        use super::*;
        use proptest::prelude::*;

        /// One synthetic node record honouring the decode invariants:
        /// `busy ≤ workers` and `busy_area ≤ workers × elapsed`.
        fn record() -> impl Strategy<Value = (u32, u32, f64, u64, u64, u64)> {
            (1u32..=64, any::<u32>(), 0.5f64..16.0, 0u64..=86_400_000_000_000, any::<u64>(), any::<u64>())
                .prop_map(|(workers, busy_seed, inflation, last, area_seed, visits)| {
                    let busy = busy_seed % (workers + 1);
                    (workers, busy, inflation, last, area_seed, visits)
                })
        }

        proptest! {
            /// Encode → decode → re-encode over arbitrary SoA node-state
            /// tables is byte-identical, and the decoded tweight
            /// reproduces the settled integral exactly.
            #[test]
            fn soa_node_tables_round_trip(records in prop::collection::vec(record(), 1..12)) {
                let workers: Vec<u32> = records.iter().map(|r| r.0).collect();
                let mut src = NodeTables::with_workers(workers.clone());
                for (i, &(w, busy, inflation, last, area_seed, visits)) in records.iter().enumerate() {
                    let bound = w as u128 * last as u128;
                    let area = if bound == 0 { 0 } else { area_seed as u128 % (bound + 1) };
                    src.busy[i] = busy;
                    src.inflation[i] = inflation;
                    src.last_busy_change[i] = SimTime::from_nanos(last);
                    src.busy_tweight[i] = busy as i128 * last as i128 - area as i128;
                    src.visits_done_window[i] = visits;
                    prop_assert_eq!(src.settled_area(i), area);
                }
                let mut w = Writer::new();
                for i in 0..src.len() {
                    src.encode_node(i, &mut w);
                }
                let bytes = w.into_bytes();
                let mut dst = NodeTables::with_workers(workers);
                let mut r = Reader::new(&bytes);
                for i in 0..dst.len() {
                    dst.decode_node(i, &mut r).expect("valid record decodes");
                }
                let mut w2 = Writer::new();
                for i in 0..dst.len() {
                    dst.encode_node(i, &mut w2);
                }
                prop_assert_eq!(w2.into_bytes(), bytes);
                for i in 0..dst.len() {
                    prop_assert_eq!(dst.settled_area(i), src.settled_area(i));
                    prop_assert_eq!(dst.busy_tweight[i], src.busy_tweight[i]);
                }
            }

            /// Organic round trip: a mid-run engine (queues, in-flight
            /// requests, settled and unsettled busy areas) snapshots,
            /// restores and re-encodes bit-identically.
            #[test]
            fn mid_run_engine_snapshot_round_trips(secs in 3u64..25, seed in 0u64..200) {
                let mut e = Engine::new(apps::ecommerce(), managed_cfg(seed));
                e.run_until(SimTime::ZERO + SimDuration::from_secs(secs));
                let mut w = Writer::new();
                e.snapshot_encode(&mut w);
                let bytes = w.into_bytes();
                let restored = Engine::snapshot_restore(
                    apps::ecommerce(),
                    managed_cfg(seed),
                    &mut Reader::new(&bytes),
                )
                .expect("snapshot restores");
                let mut w2 = Writer::new();
                restored.snapshot_encode(&mut w2);
                prop_assert_eq!(w2.into_bytes(), bytes);
                for i in 0..e.machine_count() {
                    prop_assert_eq!(restored.busy_area_ns(i), e.busy_area_ns(i));
                }
            }
        }
    }

    #[test]
    fn timeline_recorded_in_managed_mode() {
        let mut cfg = EngineConfig::solo(0.5, 30, 9);
        cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
        cfg.sla_ms = 500.0;
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.1); 4],
        };
        cfg.record_timeline = true;
        let out = Engine::new(apps::ecommerce(), cfg).run();
        assert!(!out.timeline.is_empty());
        let p = &out.timeline[0];
        assert_eq!(p.cpu_util_pct.len(), 4);
        assert_eq!(p.be_cores.len(), 4);
    }
}
