//! The Servpod abstraction (§3.1) and service deployment.
//!
//! A Servpod is the collection of LC components deployed together on one
//! physical machine. The paper assumes the scheduler has already placed
//! components; following its evaluation we deploy one component per
//! machine, so the number of Servpods equals the number of machines.

use rhythm_machine::{Allocation, Machine, MachineSpec};
use rhythm_workloads::ServiceSpec;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One Servpod: the mapping of a service component onto a machine.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Servpod {
    /// Index of the Servpod (== machine index == DAG node index).
    pub index: usize,
    /// Name of the component(s) it hosts.
    pub name: String,
}

/// A deployed LC service: machines plus the Servpod mapping.
pub struct Deployment {
    /// The service being deployed (shared with the engine and any
    /// sibling deployments of the same spec).
    pub service: Arc<ServiceSpec>,
    /// One machine per Servpod.
    pub machines: Vec<Machine>,
    /// The Servpod records.
    pub servpods: Vec<Servpod>,
}

impl Deployment {
    /// Deploys `service` with one component per machine of the given
    /// spec, reserving each component's cores/memory for the LC side.
    ///
    /// # Panics
    ///
    /// Panics if the service fails validation or a component exceeds the
    /// machine capacity.
    pub fn new(service: impl Into<Arc<ServiceSpec>>, machine_spec: MachineSpec) -> Deployment {
        let service = service.into();
        let specs = vec![machine_spec; service.len()];
        Deployment::with_machine_specs(service, &specs)
    }

    /// Deploys `service` on heterogeneous hardware: one component per
    /// machine, with `specs[i]` describing the machine hosting component
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics if `specs.len() != service.len()`, the service fails
    /// validation, or a component exceeds its machine's capacity.
    pub fn with_machine_specs(
        service: impl Into<Arc<ServiceSpec>>,
        specs: &[MachineSpec],
    ) -> Deployment {
        let service = service.into();
        // PANIC: constructor contract — an invalid ServiceSpec is a
        // caller bug, documented on this function.
        service.validate().expect("invalid service");
        assert_eq!(
            specs.len(),
            service.len(),
            "one machine spec per service component"
        );
        let maxload = service.sim_maxload_rps();
        let visits = service.expected_visits();
        let machines: Vec<Machine> = service
            .nodes
            .iter()
            .zip(&visits)
            .zip(specs)
            .map(|((node, &v), &machine_spec)| {
                let c = &node.component;
                // Reserve network headroom for the component's peak rate.
                let peak_net = c.net_mbps_at(maxload * v) * 1.5;
                Machine::new(
                    machine_spec,
                    Allocation {
                        cores: c.cores,
                        llc_ways: 0,
                        mem_mb: c.mem_mb,
                        net_mbps: peak_net,
                        freq_mhz: machine_spec.max_freq_mhz,
                    },
                )
            })
            .collect();
        let servpods = service
            .nodes
            .iter()
            .enumerate()
            .map(|(index, node)| Servpod {
                index,
                name: node.component.name.clone(),
            })
            .collect();
        Deployment {
            service,
            machines,
            servpods,
        }
    }

    /// Number of Servpods (== machines).
    pub fn len(&self) -> usize {
        self.servpods.len()
    }

    /// True if the deployment is empty (never happens for a valid
    /// service).
    pub fn is_empty(&self) -> bool {
        self.servpods.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_workloads::apps;

    #[test]
    fn one_machine_per_component() {
        let d = Deployment::new(apps::ecommerce(), MachineSpec::paper_testbed());
        assert_eq!(d.len(), 4);
        assert_eq!(d.machines.len(), 4);
        assert_eq!(d.servpods[3].name, "mysql");
    }

    #[test]
    fn lc_reservations_match_components() {
        let d = Deployment::new(apps::ecommerce(), MachineSpec::paper_testbed());
        for (m, node) in d.machines.iter().zip(&d.service.nodes) {
            assert_eq!(m.lc_alloc().cores, node.component.cores);
            assert_eq!(m.lc_alloc().mem_mb, node.component.mem_mb);
            assert!(m.check_invariants().is_ok());
        }
    }

    #[test]
    fn heterogeneous_specs_apply_per_machine() {
        let specs = [
            MachineSpec::dense_compute(),
            MachineSpec::paper_testbed(),
            MachineSpec::lean_node(),
            MachineSpec::paper_testbed(),
        ];
        let d = Deployment::with_machine_specs(apps::ecommerce(), &specs);
        for (m, spec) in d.machines.iter().zip(&specs) {
            assert_eq!(m.spec(), spec);
            assert_eq!(m.lc_alloc().freq_mhz, spec.max_freq_mhz);
            assert!(m.check_invariants().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "one machine spec per service component")]
    fn spec_count_mismatch_rejected() {
        Deployment::with_machine_specs(apps::ecommerce(), &[MachineSpec::paper_testbed()]);
    }

    #[test]
    fn all_apps_deploy() {
        for app in apps::all_apps() {
            let d = Deployment::new(app, MachineSpec::paper_testbed());
            assert!(!d.is_empty());
        }
    }
}
