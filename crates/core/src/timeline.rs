//! Figure 17 timeline rendering.
//!
//! The engine records a [`TimelinePoint`] per controller period; this
//! module renders the running process as aligned text rows (load, slack,
//! CPU, BE LLC/cores/instances/throughput over time) for the `repro
//! fig17` harness target.

use crate::runtime::TimelinePoint;

/// Renders the timeline of selected pods as a text table.
///
/// `pod_names` provides labels; `pods` selects which Servpod indices to
/// print (Figure 17 shows Tomcat and MySQL).
pub fn render(points: &[TimelinePoint], pod_names: &[&str], pods: &[usize]) -> String {
    let mut out = String::new();
    if points.is_empty() {
        out.push_str("(empty timeline)\n");
        return out;
    }
    out.push_str(&format!("{:>8} {:>6} {:>7}", "t(s)", "load", "slack"));
    for &p in pods {
        let name = pod_names.get(p).copied().unwrap_or("?");
        out.push_str(&format!(
            " | {name:>10}: {:>6} {:>5} {:>5} {:>5} {:>6}",
            "cpu%", "llc", "cores", "inst", "beTh"
        ));
    }
    out.push('\n');
    for pt in points {
        out.push_str(&format!("{:>8.1} {:>6.2} {:>7.3}", pt.t_s, pt.load, pt.slack));
        for &p in pods {
            out.push_str(&format!(
                " | {:>12} {:>6.1} {:>5} {:>5} {:>5} {:>6.3}",
                "",
                pt.cpu_util_pct.get(p).copied().unwrap_or(0.0),
                pt.be_llc_ways.get(p).copied().unwrap_or(0),
                pt.be_cores.get(p).copied().unwrap_or(0),
                pt.be_instances.get(p).copied().unwrap_or(0),
                pt.be_throughput.get(p).copied().unwrap_or(0.0),
            ));
        }
        out.push('\n');
    }
    out
}

/// Summarizes which of the five actions dominated each phase of a
/// timeline by looking at BE-core deltas (growth, cuts, suspends).
pub fn phase_summary(points: &[TimelinePoint], pod: usize) -> Vec<(f64, &'static str)> {
    let mut phases = Vec::new();
    for w in points.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let ca = a.be_cores.get(pod).copied().unwrap_or(0) as i64;
        let cb = b.be_cores.get(pod).copied().unwrap_or(0) as i64;
        let ia = a.be_instances.get(pod).copied().unwrap_or(0) as i64;
        let ib = b.be_instances.get(pod).copied().unwrap_or(0) as i64;
        let label = if ib < ia {
            "kill/stop"
        } else if cb > ca || ib > ia {
            "growth"
        } else if cb < ca {
            "cut"
        } else if b.be_throughput.get(pod).copied().unwrap_or(0.0) == 0.0 && ib > 0 {
            "suspended"
        } else {
            "steady"
        };
        match phases.last_mut() {
            Some((_, l)) if *l == label => {}
            _ => phases.push((b.t_s, label)),
        }
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(t: f64, cores: u32, inst: u32, thr: f64) -> TimelinePoint {
        TimelinePoint {
            t_s: t,
            load: 0.5,
            slack: 0.2,
            cpu_util_pct: vec![40.0],
            be_llc_ways: vec![4],
            be_cores: vec![cores],
            be_instances: vec![inst],
            be_throughput: vec![thr],
        }
    }

    #[test]
    fn render_contains_rows() {
        let pts = vec![point(2.0, 1, 1, 0.1), point(4.0, 2, 1, 0.2)];
        let s = render(&pts, &["mysql"], &[0]);
        assert!(s.contains("mysql"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn render_empty() {
        assert!(render(&[], &["x"], &[0]).contains("empty"));
    }

    #[test]
    fn phase_summary_detects_growth_and_cut() {
        let pts = vec![
            point(2.0, 1, 1, 0.1),
            point(4.0, 2, 1, 0.2),  // Growth.
            point(6.0, 3, 2, 0.3),  // Growth.
            point(8.0, 2, 2, 0.2),  // Cut.
            point(10.0, 2, 2, 0.2), // Steady.
        ];
        let phases = phase_summary(&pts, 0);
        let labels: Vec<&str> = phases.iter().map(|&(_, l)| l).collect();
        assert_eq!(labels, vec!["growth", "cut", "steady"]);
    }

    #[test]
    fn phase_summary_detects_kills() {
        let pts = vec![point(2.0, 4, 3, 0.5), point(4.0, 0, 0, 0.0)];
        let phases = phase_summary(&pts, 0);
        assert_eq!(phases[0].1, "kill/stop");
    }
}
