//! Shared-resource interference model.
//!
//! The paper's §2 characterization shows that co-located BE jobs inflate
//! an LC component's tail latency through four shared-resource channels —
//! cores, LLC, DRAM bandwidth and the NIC — and that isolation mechanisms
//! (cpuset pinning, Intel CAT, qdisc) attenuate but do not eliminate the
//! interference. This crate turns a machine's current BE population into a
//! [`Pressure`] vector and combines it with a component's
//! [`rhythm_workloads::Sensitivity`] into a multiplicative service-time
//! inflation.
//!
//! * [`pressure`] — machine-wide pressure aggregation from BE grants.
//! * [`model`] — the calibrated [`InterferenceModel`].
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod model;
pub mod pressure;

pub use model::InterferenceModel;
pub use pressure::Pressure;
