//! Shared-resource interference model.
//!
//! The paper's §2 characterization shows that co-located BE jobs inflate
//! an LC component's tail latency through four shared-resource channels —
//! cores, LLC, DRAM bandwidth and the NIC — and that isolation mechanisms
//! (cpuset pinning, Intel CAT, qdisc) attenuate but do not eliminate the
//! interference. This crate turns a machine's current BE population into a
//! [`Pressure`] vector and combines it with a component's
//! [`rhythm_workloads::Sensitivity`] into a multiplicative service-time
//! inflation.
//!
//! * [`pressure`] — machine-wide pressure aggregation from BE grants.
//! * [`model`] — the calibrated [`InterferenceModel`].

pub mod model;
pub mod pressure;

pub use model::InterferenceModel;
pub use pressure::Pressure;
