//! The calibrated interference model.
//!
//! Combines machine pressure, the isolation state (CAT partition, DVFS
//! points) and a component's sensitivity into a multiplicative
//! service-time inflation factor. Queueing in the service model then
//! amplifies service-time inflation into the large tail-latency
//! inflations of Figure 2.

use crate::pressure::Pressure;
use rhythm_machine::Machine;
use rhythm_workloads::ComponentSpec;
use serde::{Deserialize, Serialize};

/// Isolation-effectiveness coefficients.
///
/// Real isolation mechanisms leak: CAT partitions ways but misses on the
/// shared ring/prefetchers still collide; qdisc shapes bandwidth but adds
/// queueing jitter; cpuset pins cores but the socket's power and L1/L2
/// bandwidth budgets remain shared. Each coefficient is the fraction of
/// raw pressure that leaks through the corresponding mechanism.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// LLC pressure fraction that bypasses the CAT partition.
    pub llc_leak: f64,
    /// CPU pressure fraction that bypasses cpuset pinning.
    pub cpu_leak: f64,
    /// Network pressure fraction that bypasses qdisc shaping.
    pub net_leak: f64,
    /// DRAM bandwidth has no hardware partition on the paper's testbed;
    /// this scales raw DRAM pressure (1.0 = unmitigated).
    pub dram_leak: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

impl InterferenceModel {
    /// The coefficients used throughout the reproduction, chosen so the
    /// characterization harness reproduces Figure 2's orderings and rough
    /// magnitudes.
    pub fn calibrated() -> Self {
        InterferenceModel {
            llc_leak: 0.35,
            cpu_leak: 0.60,
            net_leak: 0.50,
            dram_leak: 1.0,
        }
    }

    /// A hypothetical perfect-isolation configuration (ablation baseline:
    /// only cache-capacity loss and DVFS remain).
    pub fn perfect_isolation() -> Self {
        InterferenceModel {
            llc_leak: 0.0,
            cpu_leak: 0.0,
            net_leak: 0.0,
            dram_leak: 0.0,
        }
    }

    /// No isolation at all (raw pressure reaches the component).
    pub fn no_isolation() -> Self {
        InterferenceModel {
            llc_leak: 1.0,
            cpu_leak: 1.0,
            net_leak: 1.0,
            dram_leak: 1.0,
        }
    }

    /// The effective LLC pressure felt by a component: cache-capacity
    /// loss from ways ceded to the BE class, plus thrash leaking through
    /// the partition.
    ///
    /// * `llc_mb_available` — LLC capacity left to the LC class in MB.
    pub fn effective_llc(&self, comp: &ComponentSpec, raw_llc: f64, llc_mb_available: f64) -> f64 {
        let deficit = if comp.llc_mb <= 0.0 {
            0.0
        } else {
            ((comp.llc_mb - llc_mb_available.max(0.0)) / comp.llc_mb).clamp(0.0, 1.0)
        };
        // Capacity loss only hurts when the BE class is actually
        // thrashing or the ways are simply gone; combine additively and
        // clamp.
        (deficit + self.llc_leak * raw_llc).clamp(0.0, 1.0)
    }

    /// The service-time inflation factor (>= 1) for `comp` given the
    /// machine's pressure and isolation state.
    ///
    /// * `pressure` — aggregated machine pressure (see
    ///   [`Pressure::from_machine`]).
    /// * `machine` — supplies the CAT partition and the LC DVFS point.
    pub fn inflation(&self, comp: &ComponentSpec, pressure: &Pressure, machine: &Machine) -> f64 {
        let spec = machine.spec();
        let lc_llc_mb = machine.cat().lc_ways() as f64 * spec.llc_mb_per_way();
        // The LC Servpod only spans one socket's worth of cache in
        // practice; scale available cache to the component's socket
        // footprint (cores / cores_per_socket sockets, at least one).
        let sockets_used =
            (comp.cores as f64 / spec.cores_per_socket as f64).clamp(1.0, spec.sockets as f64);
        let llc_available = lc_llc_mb * sockets_used / spec.sockets as f64;
        let eff = Pressure {
            cpu: (self.cpu_leak * pressure.cpu).clamp(0.0, 1.0),
            llc: self.effective_llc(comp, pressure.llc, llc_available),
            dram: (self.dram_leak * pressure.dram).clamp(0.0, 1.0),
            net: (self.net_leak * pressure.net).clamp(0.0, 1.0),
        };
        let contention = comp
            .sensitivity
            .inflation(eff.cpu, eff.llc, eff.dram, eff.net);
        let freq = comp
            .sensitivity
            .freq_slowdown(machine.lc_dvfs.speed_fraction());
        contention * freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_machine::{Allocation, MachineSpec};
    use rhythm_workloads::apps;

    fn machine() -> Machine {
        Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 12,
                llc_ways: 0,
                mem_mb: 32 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        )
    }

    fn mysql() -> ComponentSpec {
        apps::ecommerce().nodes[3].component.clone()
    }

    fn tomcat() -> ComponentSpec {
        apps::ecommerce().nodes[1].component.clone()
    }

    #[test]
    fn no_pressure_no_inflation() {
        let m = machine();
        let model = InterferenceModel::calibrated();
        let f = model.inflation(&mysql(), &Pressure::zero(), &m);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_pressure_inflates_mysql_more_than_tomcat() {
        let m = machine();
        let model = InterferenceModel::calibrated();
        let p = Pressure {
            dram: 1.0,
            ..Pressure::zero()
        };
        let f_mysql = model.inflation(&mysql(), &p, &m);
        let f_tomcat = model.inflation(&tomcat(), &p, &m);
        assert!(f_mysql > f_tomcat, "{f_mysql} vs {f_tomcat}");
        assert!(f_mysql > 2.0);
    }

    #[test]
    fn cat_partition_attenuates_llc_pressure() {
        let mut m = machine();
        let model = InterferenceModel::calibrated();
        let p = Pressure {
            llc: 1.0,
            ..Pressure::zero()
        };
        let with_full_cache = model.inflation(&mysql(), &p, &m);
        // Give the BE class most of the cache: LC keeps 8 of 80 ways.
        for _ in 0..9 {
            m.admit_be("x", Allocation::cores_and_llc(1, 8)).unwrap();
        }
        let with_starved_cache = model.inflation(&mysql(), &p, &m);
        assert!(with_starved_cache > with_full_cache);
    }

    #[test]
    fn perfect_isolation_only_leaves_capacity_and_freq() {
        let m = machine();
        let model = InterferenceModel::perfect_isolation();
        let p = Pressure {
            cpu: 1.0,
            llc: 1.0,
            dram: 1.0,
            net: 1.0,
        };
        // With all ways still LC-owned and full frequency, inflation from
        // leakage is zero; only cache-capacity deficit could remain, and
        // there is none.
        let f = model.inflation(&mysql(), &p, &m);
        assert!((f - 1.0).abs() < 1e-9, "f={f}");
    }

    #[test]
    fn no_isolation_is_worst() {
        let m = machine();
        let p = Pressure {
            cpu: 0.5,
            llc: 0.5,
            dram: 0.5,
            net: 0.5,
        };
        let none = InterferenceModel::no_isolation().inflation(&mysql(), &p, &m);
        let cal = InterferenceModel::calibrated().inflation(&mysql(), &p, &m);
        let perfect = InterferenceModel::perfect_isolation().inflation(&mysql(), &p, &m);
        assert!(none > cal && cal > perfect);
    }

    #[test]
    fn dvfs_slows_frequency_sensitive_components() {
        let mut m = machine();
        let model = InterferenceModel::calibrated();
        let before = model.inflation(&tomcat(), &Pressure::zero(), &m);
        m.lc_dvfs.set_mhz(1_200);
        let after = model.inflation(&tomcat(), &Pressure::zero(), &m);
        assert!(after > before * 1.3, "{after} vs {before}");
    }

    #[test]
    fn effective_llc_deficit() {
        let model = InterferenceModel::calibrated();
        let comp = mysql(); // 16 MB working set.
        // Plenty of cache, no raw pressure: zero.
        assert_eq!(model.effective_llc(&comp, 0.0, 20.0), 0.0);
        // Half the working set gone.
        let half = model.effective_llc(&comp, 0.0, 8.0);
        assert!((half - 0.5).abs() < 1e-9);
        // No cache at all: full deficit.
        assert_eq!(model.effective_llc(&comp, 0.0, 0.0), 1.0);
    }
}
