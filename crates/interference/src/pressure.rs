//! Machine-wide resource pressure.

use rhythm_machine::machine::BeState;
use rhythm_machine::{Machine, MachineSpec};
use rhythm_workloads::BeSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pressure on each shared resource of one machine, each in `[0, 1]`.
///
/// 1.0 means the resource is fully contended (e.g. stream-dram(big) with
/// enough cores saturates the DRAM channel).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Pressure {
    /// Core / scheduler / socket-level contention.
    pub cpu: f64,
    /// Raw LLC thrash intensity of the BE population (before CAT
    /// attenuation; the model applies the partition).
    pub llc: f64,
    /// DRAM-bandwidth contention.
    pub dram: f64,
    /// NIC contention: fraction of the link the BE class is using.
    pub net: f64,
}

impl Pressure {
    /// No pressure at all.
    pub const fn zero() -> Self {
        Pressure {
            cpu: 0.0,
            llc: 0.0,
            dram: 0.0,
            net: 0.0,
        }
    }

    /// Clamps every channel into `[0, 1]`.
    pub fn clamped(self) -> Self {
        Pressure {
            cpu: self.cpu.clamp(0.0, 1.0),
            llc: self.llc.clamp(0.0, 1.0),
            dram: self.dram.clamp(0.0, 1.0),
            net: self.net.clamp(0.0, 1.0),
        }
    }

    /// Aggregates the pressure exerted by every *running* BE instance on
    /// `machine`, looking up each instance's workload model in `specs`.
    ///
    /// Suspended instances exert no pressure (they hold only memory).
    /// Each channel saturates at 1.0. BE instances running at a reduced
    /// DVFS point exert proportionally less pressure.
    pub fn from_machine(machine: &Machine, specs: &BTreeMap<String, BeSpec>) -> Pressure {
        let mut p = Pressure::zero();
        let be_freq = machine.be_dvfs.speed_fraction();
        for inst in machine.be_instances() {
            if inst.state != BeState::Running || inst.alloc.cores == 0 {
                continue;
            }
            let Some(spec) = specs.get(&inst.workload) else {
                continue;
            };
            let cores = inst.alloc.cores as f64 * be_freq;
            p.cpu += spec.cpu_pressure_per_core * cores;
            p.llc += spec.llc_pressure_per_core * cores;
            p.dram += spec.dram_pressure_per_core * cores;
            // Network demand is per instance, limited by the qdisc BE
            // ceiling across the whole class.
            p.net += spec.net_demand_mbps;
        }
        let link = machine.spec().nic_mbps;
        let be_ceiling = machine.qdisc.be_limit_mbps();
        p.net = (p.net.min(be_ceiling) / link).clamp(0.0, 1.0);
        p.clamped()
    }

    /// Adds the LC service's own DRAM/NIC usage as baseline utilization
    /// pressure (self-load contributes to channel contention at high
    /// request rates).
    pub fn with_lc_usage(mut self, spec: &MachineSpec, lc_membw_mbps: f64, lc_net_mbps: f64) -> Pressure {
        self.dram += (lc_membw_mbps / spec.total_membw_mbps()).max(0.0) * 0.5;
        self.net += (lc_net_mbps / spec.nic_mbps).max(0.0) * 0.25;
        self.clamped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhythm_machine::Allocation;
    use rhythm_workloads::BeKind;

    fn specs() -> BTreeMap<String, BeSpec> {
        let mut m = BTreeMap::new();
        for k in [
            BeKind::CpuStress,
            BeKind::StreamDram { big: true },
            BeKind::StreamLlc { big: true },
            BeKind::Iperf,
        ] {
            let s = BeSpec::of(k);
            m.insert(s.name.clone(), s);
        }
        m
    }

    fn machine() -> Machine {
        Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: 16,
                llc_ways: 0,
                mem_mb: 64 * 1024,
                net_mbps: 1_000.0,
                freq_mhz: 2_000,
            },
        )
    }

    fn grant(cores: u32) -> Allocation {
        Allocation {
            cores,
            llc_ways: 2,
            mem_mb: 2048,
            net_mbps: 0.0,
            freq_mhz: 2_000,
        }
    }

    #[test]
    fn empty_machine_zero_pressure() {
        let m = machine();
        let p = Pressure::from_machine(&m, &specs());
        assert_eq!(p, Pressure::zero());
    }

    #[test]
    fn stream_dram_builds_dram_pressure() {
        let mut m = machine();
        m.admit_be("stream-dram", grant(4)).unwrap();
        let p = Pressure::from_machine(&m, &specs());
        assert!(p.dram > 0.9, "4 cores of stream-dram(big) saturate: {p:?}");
        assert!(p.llc < 0.5);
        assert!(p.cpu < 0.2);
    }

    #[test]
    fn pressure_scales_with_cores() {
        let mut m = machine();
        m.admit_be("CPU-stress", grant(2)).unwrap();
        let p2 = Pressure::from_machine(&m, &specs());
        m.admit_be("CPU-stress", grant(2)).unwrap();
        let p4 = Pressure::from_machine(&m, &specs());
        assert!((p4.cpu - 2.0 * p2.cpu).abs() < 1e-9);
    }

    #[test]
    fn suspended_instances_exert_nothing() {
        let mut m = machine();
        let id = m.admit_be("stream-dram", grant(4)).unwrap();
        m.suspend_be(id).unwrap();
        let p = Pressure::from_machine(&m, &specs());
        assert_eq!(p, Pressure::zero());
    }

    #[test]
    fn be_dvfs_reduces_pressure() {
        let mut m = machine();
        m.admit_be("stream-dram", grant(2)).unwrap();
        let full = Pressure::from_machine(&m, &specs());
        m.be_dvfs.set_mhz(1_200);
        let throttled = Pressure::from_machine(&m, &specs());
        assert!(throttled.dram < full.dram);
    }

    #[test]
    fn net_pressure_limited_by_qdisc() {
        let mut m = machine();
        m.admit_be("iperf", grant(2)).unwrap();
        // No BE network provisioned yet -> zero network pressure.
        let p = Pressure::from_machine(&m, &specs());
        assert_eq!(p.net, 0.0);
        // Provision BE bandwidth; iperf demands 9 Gb of the 10 Gb link.
        m.qdisc.reallocate(500.0);
        let p = Pressure::from_machine(&m, &specs());
        assert!(p.net > 0.8, "net={}", p.net);
    }

    #[test]
    fn unknown_workload_ignored() {
        let mut m = machine();
        m.admit_be("mystery-job", grant(4)).unwrap();
        let p = Pressure::from_machine(&m, &specs());
        assert_eq!(p, Pressure::zero());
    }

    #[test]
    fn channels_saturate_at_one() {
        let mut m = machine();
        for _ in 0..5 {
            m.admit_be("stream-dram", grant(4)).unwrap();
        }
        let p = Pressure::from_machine(&m, &specs());
        assert_eq!(p.dram, 1.0);
    }

    #[test]
    fn lc_usage_adds_baseline() {
        let spec = MachineSpec::paper_testbed();
        let p = Pressure::zero().with_lc_usage(&spec, spec.total_membw_mbps(), 0.0);
        assert!((p.dram - 0.5).abs() < 1e-9);
        let p = Pressure::zero().with_lc_usage(&spec, 0.0, spec.nic_mbps);
        assert!((p.net - 0.25).abs() < 1e-9);
    }
}
