//! A brace-tree / item-level parser on top of the lexer — the layer
//! between "token stream" and "syntax tree" that the semantic rules
//! (S02 field coverage, D05 lossy casts) need and a lexical scanner
//! cannot provide.
//!
//! It extracts, from one file's code tokens (comments excluded):
//!
//! * `struct` definitions with their **named field lists** (name, type
//!   tokens, line, whether the field sits under a `#[cfg(...)]` gate);
//!   tuple and unit structs are recorded without fields,
//! * `enum` definitions (name only — variant payloads are opaque),
//! * `impl` blocks — inherent and `impl <Trait> for <Type>` — with the
//!   trait's terminal name, the self type's head identifier, and the
//!   functions defined inside,
//! * every `fn` with its parameter list and body token range.
//!
//! Like the lexer it never fails: malformed source degrades into
//! skipped tokens, all loops are bounded by the token count, and every
//! recorded span stays inside the input (property-tested on arbitrary
//! token soup in `tests/itemtree_props.rs`). What it deliberately does
//! **not** do: name resolution across files, type inference beyond
//! locally visible annotations, macro expansion, or `cfg` evaluation —
//! see DESIGN.md §10 "what the parser can and cannot see".

use crate::lexer::{Token, TokenKind};

/// Byte extent of an item in the source, plus the half-open range of
/// token indices (into the code slice handed to [`parse`]) it covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first token.
    pub lo: usize,
    /// Byte offset one past the last token.
    pub hi: usize,
    /// Index of the first token.
    pub tok_lo: usize,
    /// Index one past the last token.
    pub tok_hi: usize,
}

/// One named struct field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// The field type's token texts, in order (`["Vec", "<", "i128", ">"]`).
    pub ty: Vec<String>,
    /// 1-based line of the field name.
    pub line: u32,
    /// True when a `#[cfg(...)]` attribute gates the field — coverage
    /// rules must not demand a field the build may not contain.
    pub cfg_gated: bool,
}

/// A `struct` definition.
#[derive(Clone, Debug)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, or `None` for tuple / unit structs.
    pub fields: Option<Vec<Field>>,
    /// Source extent.
    pub span: Span,
}

/// An `enum` definition (variants are not modelled).
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Source extent.
    pub span: Span,
}

/// One `fn`, free or inside an `impl` block.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `(name, type tokens)` for every simple `name: ty` parameter;
    /// `self` receivers and pattern parameters are skipped.
    pub params: Vec<(String, Vec<String>)>,
    /// Token-index range of the body contents (braces excluded);
    /// `None` for body-less signatures (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
    /// Source extent (signature through closing brace or `;`).
    pub span: Span,
}

/// An `impl` block.
#[derive(Clone, Debug)]
pub struct ImplBlock {
    /// Terminal identifier of the trait path (`rhythm_snapshot::Snapshot`
    /// → `Snapshot`); `None` for inherent impls.
    pub trait_name: Option<String>,
    /// Head identifier of the self type (`Vec<T>` → `Vec`); empty when
    /// the self type has no leading identifier (references to tuples,
    /// arrays, ...).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Indices into [`ItemTree::fns`] of the functions in this block.
    pub fns: Vec<usize>,
    /// Source extent.
    pub span: Span,
}

/// The parsed items of one file.
#[derive(Clone, Debug, Default)]
pub struct ItemTree {
    /// `struct` definitions, in source order.
    pub structs: Vec<StructDef>,
    /// `enum` definitions, in source order.
    pub enums: Vec<EnumDef>,
    /// `impl` blocks, in source order.
    pub impls: Vec<ImplBlock>,
    /// Every `fn` (free and impl-resident), in source order.
    pub fns: Vec<FnDef>,
}

impl ItemTree {
    /// The struct named `name`, if defined in this file.
    pub fn struct_named(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// True when `name` is an enum defined in this file.
    pub fn is_enum(&self, name: &str) -> bool {
        self.enums.iter().any(|e| e.name == name)
    }
}

/// Parses one file's code tokens (the comment-free slice the rule
/// engine already builds). Indices in the returned spans refer to this
/// slice.
pub fn parse(code: &[&Token]) -> ItemTree {
    Parser {
        toks: code,
        tree: ItemTree::default(),
    }
    .run()
}

/// Convenience for tests: lex `src`, drop comments, parse.
pub fn parse_source(src: &str) -> ItemTree {
    let toks = crate::lexer::lex(src);
    let code: Vec<&Token> = toks.iter().filter(|t| t.kind != TokenKind::Comment).collect();
    parse(&code)
}

struct Parser<'a> {
    toks: &'a [&'a Token],
    tree: ItemTree,
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn is_kw(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

impl<'a> Parser<'a> {
    fn run(mut self) -> ItemTree {
        let mut i = 0usize;
        while i < self.toks.len() {
            i = self.item(i);
        }
        self.tree
    }

    /// Parses the item starting at `i` (or skips one token) and returns
    /// the index to continue from. Always advances.
    fn item(&mut self, i: usize) -> usize {
        let t = self.toks[i];
        let next = if is_kw(t, "struct") {
            self.parse_struct(i)
        } else if is_kw(t, "enum") {
            self.parse_enum(i)
        } else if is_kw(t, "impl") {
            self.parse_impl(i)
        } else if is_kw(t, "fn") {
            self.parse_fn(i).1
        } else {
            i + 1
        };
        next.max(i + 1)
    }

    fn span(&self, tok_lo: usize, tok_hi: usize) -> Span {
        let tok_hi = tok_hi.min(self.toks.len()).max(tok_lo);
        let lo = self.toks.get(tok_lo).map_or(0, |t| t.offset);
        let hi = if tok_hi > tok_lo {
            self.toks.get(tok_hi - 1).map_or(lo, |t| t.end)
        } else {
            lo
        };
        Span { lo, hi, tok_lo, tok_hi }
    }

    /// Skips a balanced `<...>` group starting at `i` (which must point
    /// at `<`), tolerating `->` / `=>` arrows whose `>` is not a closer.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0usize;
        let mut k = i;
        while k < self.toks.len() {
            let t = self.toks[k];
            if is_punct(t, '<') {
                depth += 1;
            } else if is_punct(t, '>') && !self.arrow_tail(k) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        self.toks.len()
    }

    /// True when the `>` at `k` is the tail of `->` or `=>`.
    fn arrow_tail(&self, k: usize) -> bool {
        k > 0 && (is_punct(self.toks[k - 1], '-') || is_punct(self.toks[k - 1], '='))
    }

    /// Skips a balanced delimiter group starting at `i` (which must
    /// point at the opener). Returns the index after the closer.
    fn skip_group(&self, i: usize, open: char, close: char) -> usize {
        let mut depth = 0usize;
        let mut k = i;
        while k < self.toks.len() {
            let t = self.toks[k];
            if is_punct(t, open) {
                depth += 1;
            } else if is_punct(t, close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        self.toks.len()
    }

    /// Scans forward from `i` for the first token satisfying `stop` at
    /// angle/paren/bracket depth 0. Returns `toks.len()` if none.
    fn scan_to(&self, i: usize, stop: impl Fn(&Token) -> bool) -> usize {
        let mut k = i;
        let mut angle = 0usize;
        let mut paren = 0usize;
        let mut bracket = 0usize;
        while k < self.toks.len() {
            let t = self.toks[k];
            if angle == 0 && paren == 0 && bracket == 0 && stop(t) {
                return k;
            }
            if is_punct(t, '<') {
                angle += 1;
            } else if is_punct(t, '>') && !self.arrow_tail(k) {
                angle = angle.saturating_sub(1);
            } else if is_punct(t, '(') {
                paren += 1;
            } else if is_punct(t, ')') {
                paren = paren.saturating_sub(1);
            } else if is_punct(t, '[') {
                bracket += 1;
            } else if is_punct(t, ']') {
                bracket = bracket.saturating_sub(1);
            }
            k += 1;
        }
        self.toks.len()
    }

    fn parse_struct(&mut self, i: usize) -> usize {
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if j < self.toks.len() && is_punct(self.toks[j], '<') {
            j = self.skip_angles(j);
        }
        // Body opener: `{` named fields, `(` tuple, `;` unit. A `where`
        // clause may intervene before `{`.
        j = self.scan_to(j, |t| {
            is_punct(t, '{') || is_punct(t, '(') || is_punct(t, ';')
        });
        if j >= self.toks.len() {
            return self.record_struct(name, line, None, i, j);
        }
        if is_punct(self.toks[j], ';') {
            return self.record_struct(name, line, None, i, j + 1);
        }
        if is_punct(self.toks[j], '(') {
            let after = self.skip_group(j, '(', ')');
            // Trailing `;` of the tuple struct, if present.
            let end = if self.toks.get(after).is_some_and(|t| is_punct(t, ';')) {
                after + 1
            } else {
                after
            };
            return self.record_struct(name, line, None, i, end);
        }
        let close = self.skip_group(j, '{', '}');
        let fields = self.parse_fields(j + 1, close.saturating_sub(1));
        self.record_struct(name, line, Some(fields), i, close)
    }

    fn record_struct(
        &mut self,
        name: String,
        line: u32,
        fields: Option<Vec<Field>>,
        tok_lo: usize,
        tok_hi: usize,
    ) -> usize {
        let span = self.span(tok_lo, tok_hi);
        self.tree.structs.push(StructDef { name, line, fields, span });
        tok_hi
    }

    /// Parses `name: Type,` fields between `lo` and `hi` (exclusive,
    /// inside the struct braces). Attributes are consumed per field;
    /// anything unrecognized is skipped a token at a time.
    fn parse_fields(&self, lo: usize, hi: usize) -> Vec<Field> {
        let mut out = Vec::new();
        let mut k = lo;
        let hi = hi.min(self.toks.len());
        while k < hi {
            // Attributes: `#[...]`, noting `cfg` gates.
            let mut cfg_gated = false;
            while k + 1 < hi && is_punct(self.toks[k], '#') && is_punct(self.toks[k + 1], '[') {
                let close = self.skip_group(k + 1, '[', ']').min(hi);
                if self.toks[k + 1..close].iter().any(|t| is_kw(t, "cfg")) {
                    cfg_gated = true;
                }
                k = close;
            }
            // Visibility: `pub`, `pub(crate)`, `pub(in path)`.
            if k < hi && is_kw(self.toks[k], "pub") {
                k += 1;
                if k < hi && is_punct(self.toks[k], '(') {
                    k = self.skip_group(k, '(', ')').min(hi);
                }
            }
            // `name : Type` up to a depth-0 comma or the brace end.
            let (Some(name_tok), Some(colon)) = (self.toks.get(k), self.toks.get(k + 1)) else {
                break;
            };
            if name_tok.kind == TokenKind::Ident && is_punct(colon, ':') {
                let ty_end = self.scan_to(k + 2, |t| is_punct(t, ',')).min(hi);
                let ty = self.toks[(k + 2).min(ty_end)..ty_end]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect();
                out.push(Field {
                    name: name_tok.text.clone(),
                    ty,
                    line: name_tok.line,
                    cfg_gated,
                });
                k = ty_end + 1; // past the comma
            } else {
                k += 1; // malformed; resynchronize
            }
        }
        out
    }

    fn parse_enum(&mut self, i: usize) -> usize {
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if j < self.toks.len() && is_punct(self.toks[j], '<') {
            j = self.skip_angles(j);
        }
        j = self.scan_to(j, |t| is_punct(t, '{') || is_punct(t, ';'));
        let end = if j < self.toks.len() && is_punct(self.toks[j], '{') {
            self.skip_group(j, '{', '}')
        } else {
            (j + 1).min(self.toks.len())
        };
        let span = self.span(i, end);
        self.tree.enums.push(EnumDef { name, line, span });
        end
    }

    fn parse_impl(&mut self, i: usize) -> usize {
        let line = self.toks[i].line;
        let mut j = i + 1;
        if j < self.toks.len() && is_punct(self.toks[j], '<') {
            j = self.skip_angles(j);
        }
        // Head: everything to the body brace (or a terminating `;`),
        // split at a depth-0 `for` if present.
        let head_start = j;
        let body_open = self.scan_to(j, |t| is_punct(t, '{') || is_punct(t, ';'));
        if body_open >= self.toks.len() || is_punct(self.toks[body_open], ';') {
            return (body_open + 1).min(self.toks.len());
        }
        let for_at = self.scan_to(head_start, |t| is_kw(t, "for") || is_punct(t, '{'));
        let (trait_part, type_part) = if for_at < body_open && is_kw(self.toks[for_at], "for") {
            (
                &self.toks[head_start..for_at],
                &self.toks[for_at + 1..body_open],
            )
        } else {
            (&self.toks[head_start..head_start], &self.toks[head_start..body_open])
        };
        let trait_name = trait_part
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
        // Self-type head: last plain identifier before any generic args,
        // skipping `&`, `mut`, `dyn` and path segments.
        let mut type_name = String::new();
        for t in type_part.iter() {
            if is_punct(t, '<') {
                break;
            }
            if t.kind == TokenKind::Ident && t.text != "mut" && t.text != "dyn" {
                type_name = t.text.clone();
            }
        }
        // Body: collect `fn` items at impl depth, skipping their bodies.
        let close = self.skip_group(body_open, '{', '}');
        let mut fns = Vec::new();
        let mut k = body_open + 1;
        while k < close.saturating_sub(1) {
            let t = self.toks[k];
            if is_kw(t, "fn") {
                let (idx, next) = self.parse_fn(k);
                if let Some(idx) = idx {
                    fns.push(idx);
                }
                k = next.max(k + 1);
            } else if is_punct(t, '{') {
                k = self.skip_group(k, '{', '}');
            } else {
                k += 1;
            }
        }
        let span = self.span(i, close);
        self.tree.impls.push(ImplBlock {
            trait_name,
            type_name,
            line,
            fns,
            span,
        });
        close
    }

    /// Parses the `fn` at `i`; returns the index of the recorded
    /// [`FnDef`] (if one was recognized) and the continuation index.
    fn parse_fn(&mut self, i: usize) -> (Option<usize>, usize) {
        let Some(name_tok) = self.toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            return (None, i + 1);
        };
        let name = name_tok.text.clone();
        let line = self.toks[i].line;
        let mut j = i + 2;
        if j < self.toks.len() && is_punct(self.toks[j], '<') {
            j = self.skip_angles(j);
        }
        if j >= self.toks.len() || !is_punct(self.toks[j], '(') {
            return (None, j.min(self.toks.len()));
        }
        let params_close = self.skip_group(j, '(', ')');
        let params = self.parse_params(j + 1, params_close.saturating_sub(1));
        // Return type / where clause, then body `{` or signature-only `;`.
        let opener = self.scan_to(params_close, |t| is_punct(t, '{') || is_punct(t, ';'));
        if opener >= self.toks.len() {
            let span = self.span(i, opener);
            self.tree.fns.push(FnDef { name, line, params, body: None, span });
            return (Some(self.tree.fns.len() - 1), opener);
        }
        if is_punct(self.toks[opener], ';') {
            let span = self.span(i, opener + 1);
            self.tree.fns.push(FnDef { name, line, params, body: None, span });
            return (Some(self.tree.fns.len() - 1), opener + 1);
        }
        let close = self.skip_group(opener, '{', '}');
        let body = (opener + 1, close.saturating_sub(1).max(opener + 1));
        let span = self.span(i, close);
        self.tree.fns.push(FnDef {
            name,
            line,
            params,
            body: Some(body),
            span,
        });
        (Some(self.tree.fns.len() - 1), close)
    }

    /// Parses `name: Type` parameters between `lo` and `hi` (exclusive).
    /// `self` receivers and destructuring patterns are skipped — only
    /// bindings a later type-inference pass can use are kept.
    fn parse_params(&self, lo: usize, hi: usize) -> Vec<(String, Vec<String>)> {
        let mut out = Vec::new();
        let mut k = lo;
        let hi = hi.min(self.toks.len());
        while k < hi {
            // One parameter: tokens to the next depth-0 comma.
            let end = self.scan_to(k, |t| is_punct(t, ',')).min(hi);
            let mut p = k;
            // Attributes and `mut` prefixes.
            while p + 1 < end && is_punct(self.toks[p], '#') && is_punct(self.toks[p + 1], '[') {
                p = self.skip_group(p + 1, '[', ']').min(end);
            }
            if p < end && is_kw(self.toks[p], "mut") {
                p += 1;
            }
            if p + 1 < end
                && self.toks[p].kind == TokenKind::Ident
                && self.toks[p].text != "self"
                && is_punct(self.toks[p + 1], ':')
            {
                let ty = self.toks[p + 2..end].iter().map(|t| t.text.clone()).collect();
                out.push((self.toks[p].text.clone(), ty));
            }
            k = end + 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_fields_with_types_and_lines() {
        let t = parse_source(
            "pub struct State {\n\
             \x20   pub jobs: Vec<u64>,\n\
             \x20   seq: u32,\n\
             \x20   map: BTreeMap<(u64, u64), String>,\n\
             }\n",
        );
        let s = t.struct_named("State").expect("parsed");
        let f = s.fields.as_ref().expect("named fields");
        let names: Vec<&str> = f.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names, vec!["jobs", "seq", "map"]);
        assert_eq!(f[0].ty, vec!["Vec", "<", "u64", ">"]);
        assert_eq!(f[1].line, 3);
        assert!(!f[2].cfg_gated);
    }

    #[test]
    fn shift_like_nested_generics_terminate() {
        // `>>` lexes as two `>` puncts; depth tracking must close both.
        let t = parse_source(
            "struct Deep { inner: Vec<Vec<Option<u8>>>, tail: u8 }\n\
             fn after() {}\n",
        );
        let s = t.struct_named("Deep").expect("parsed");
        let f = s.fields.as_ref().expect("fields");
        assert_eq!(f.len(), 2);
        assert_eq!(f[1].name, "tail");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "after");
    }

    #[test]
    fn generic_impl_for_generic_type() {
        let t = parse_source(
            "impl<T: Snapshot> Snapshot for Vec<T> {\n\
             \x20   fn encode(&self, w: &mut Writer) { body(); }\n\
             \x20   fn decode(r: &mut Reader<'_>) -> Result<Self, E> { x() }\n\
             }\n",
        );
        assert_eq!(t.impls.len(), 1);
        let imp = &t.impls[0];
        assert_eq!(imp.trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(imp.type_name, "Vec");
        let names: Vec<&str> = imp.fns.iter().map(|&i| t.fns[i].name.as_str()).collect();
        assert_eq!(names, vec!["encode", "decode"]);
        assert!(t.fns[imp.fns[0]].body.is_some());
    }

    #[test]
    fn qualified_trait_path_keeps_terminal_name() {
        let t = parse_source(
            "impl rhythm_snapshot::Snapshot for TailPoint { fn encode(&self) {} }",
        );
        assert_eq!(t.impls[0].trait_name.as_deref(), Some("Snapshot"));
        assert_eq!(t.impls[0].type_name, "TailPoint");
    }

    #[test]
    fn inherent_impl_has_no_trait() {
        let t = parse_source("impl NodeTables { fn encode_node(&self, i: usize) {} }");
        assert_eq!(t.impls[0].trait_name, None);
        assert_eq!(t.impls[0].type_name, "NodeTables");
        assert_eq!(t.fns[0].params, vec![("i".to_string(), vec!["usize".to_string()])]);
    }

    #[test]
    fn cfg_gated_fields_are_marked() {
        let t = parse_source(
            "struct S {\n\
             \x20   a: u8,\n\
             \x20   #[cfg(feature = \"x\")]\n\
             \x20   b: u16,\n\
             \x20   #[serde(skip)]\n\
             \x20   c: u32,\n\
             }\n",
        );
        let f = t.struct_named("S").and_then(|s| s.fields.clone()).expect("fields");
        assert_eq!(
            f.iter().map(|x| (x.name.as_str(), x.cfg_gated)).collect::<Vec<_>>(),
            vec![("a", false), ("b", true), ("c", false)]
        );
    }

    #[test]
    fn tuple_and_unit_structs_have_no_field_list() {
        let t = parse_source("struct T(u64, u8);\nstruct U;\nstruct N { x: u8 }");
        assert!(t.struct_named("T").expect("T").fields.is_none());
        assert!(t.struct_named("U").expect("U").fields.is_none());
        assert!(t.struct_named("N").expect("N").fields.is_some());
    }

    #[test]
    fn fn_arrow_return_does_not_break_generics() {
        let t = parse_source(
            "fn apply<F: Fn(u32) -> u64>(f: F, seed: u32) -> u64 { f(seed) }",
        );
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "apply");
        // `seed: u32` survives; `f: F` too.
        assert_eq!(t.fns[0].params.len(), 2);
    }

    #[test]
    fn where_clause_and_unit_struct_body() {
        let t = parse_source("struct W<T> where T: Clone { v: T }\nenum E { A, B(u8) }");
        let f = t.struct_named("W").and_then(|s| s.fields.clone()).expect("fields");
        assert_eq!(f[0].name, "v");
        assert!(t.is_enum("E"));
    }

    #[test]
    fn spans_are_well_formed() {
        let src = "struct A { x: u8 }\nimpl A { fn f(&self) -> u8 { self.x } }\n";
        let t = parse_source(src);
        for s in &t.structs {
            assert!(s.span.lo < s.span.hi && s.span.hi <= src.len());
        }
        for i in &t.impls {
            assert!(i.span.lo < i.span.hi && i.span.hi <= src.len());
        }
        let body = t.fns[0].body.expect("body");
        assert!(body.0 <= body.1);
    }
}
