//! A small hand-rolled Rust lexer — just enough token structure for the
//! rule engine, with none of the grammar.
//!
//! The registry is offline, so there is no `syn`; what the rules need is
//! not a syntax tree anyway but a token stream that *correctly skips the
//! places source text is inert*: line comments, (nested) block comments,
//! string/char/byte literals and raw strings with any number of hashes.
//! A `HashMap` inside a comment or a `"thread_rng"` inside a string
//! literal must never reach a rule.
//!
//! Comments are kept as tokens (rules U01/H01 and the `lint:allow`
//! pragma parser read them); literals are kept as opaque tokens so D04
//! can still see an `f32` suffix on a numeric literal.

/// What a token is. Deliberately coarse: rules match on identifier text
/// and single-character punctuation, nothing finer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without the
    /// `r#` prefix).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — text excludes the quote.
    Lifetime,
    /// A numeric literal, suffix included (`1_000u64`, `1.5f32`, `0x1f`).
    Num,
    /// A string, raw-string, byte-string or character literal. Text is
    /// the raw source slice, quotes included.
    Str,
    /// A single punctuation character (`#`, `[`, `:`, `.`, ...).
    Punct,
    /// A line or block comment, text included (`//...` / `/*...*/`).
    Comment,
}

/// One lexed token with the 1-based line it starts on and its byte span
/// in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Coarse token class.
    pub kind: TokenKind,
    /// Source text (see [`TokenKind`] for what each class carries).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// Byte offset of the token's first character in the source.
    pub offset: usize,
    /// Byte offset one past the token's last character. `src[offset..end]`
    /// is the exact source extent — note it can differ from `text` for
    /// raw identifiers (`r#type` → text `type`) and lifetimes (the
    /// leading quote is in the span but not the text).
    pub end: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into a token stream. Never fails: malformed source
/// degrades into punctuation tokens rather than an error, which is the
/// right behavior for a linter that must keep scanning.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        off: 0,
        start: 0,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    /// Byte offset of the cursor (`self.i`) in the source.
    off: usize,
    /// Byte offset where the token currently being lexed started.
    start: usize,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            self.off += c.len_utf8();
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        let (offset, end) = (self.start, self.off);
        self.out.push(Token {
            kind,
            text,
            line,
            offset,
            end,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            self.start = self.off;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(0),
                '\'' => self.char_or_lifetime(),
                'b' if self.peek(1) == Some('"') => {
                    let line = self.line;
                    self.bump();
                    self.string_from_quote(line, String::from("b"));
                }
                'b' if self.peek(1) == Some('\'') => self.byte_char(),
                'b' if self.peek(1) == Some('r') && self.raw_string_ahead(2) => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.raw_string(line, String::from("br"));
                }
                'r' if self.raw_string_ahead(1) => {
                    let line = self.line;
                    self.bump();
                    self.raw_string(line, String::from("r"));
                }
                'r' if self.peek(1) == Some('#')
                    && self.peek(2).is_some_and(is_ident_start) =>
                {
                    // Raw identifier `r#type`: token text is the bare name.
                    let line = self.line;
                    self.bump();
                    self.bump();
                    let name = self.ident_text();
                    self.push(TokenKind::Ident, name, line);
                }
                c if is_ident_start(c) => {
                    let line = self.line;
                    let name = self.ident_text();
                    self.push(TokenKind::Ident, name, line);
                }
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().expect("peeked");
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn ident_text(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Consume the opening `/*`.
        text.push(self.bump().expect("peeked"));
        text.push(self.bump().expect("peeked"));
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                Some('/') if self.peek(1) == Some('*') => {
                    depth += 1;
                    text.push(self.bump().expect("peeked"));
                    text.push(self.bump().expect("peeked"));
                }
                Some('*') if self.peek(1) == Some('/') => {
                    depth -= 1;
                    text.push(self.bump().expect("peeked"));
                    text.push(self.bump().expect("peeked"));
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => break, // unterminated; tolerate
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    /// True when `#* "` starts at `self.i + ahead` (a raw-string head).
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut k = ahead;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    /// Lexes `#*"..."#*` starting at the first `#` or `"`; `prefix` is
    /// the already-consumed `r` / `br`.
    fn raw_string(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push(self.bump().expect("peeked"));
        }
        if self.peek(0) == Some('"') {
            text.push(self.bump().expect("peeked"));
        }
        loop {
            match self.peek(0) {
                Some('"') => {
                    // Closing candidate: needs `hashes` trailing hashes.
                    let mut k = 1;
                    while k <= hashes && self.peek(k) == Some('#') {
                        k += 1;
                    }
                    if k == hashes + 1 {
                        for _ in 0..=hashes {
                            text.push(self.bump().expect("peeked"));
                        }
                        break;
                    }
                    text.push(self.bump().expect("peeked"));
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => break, // unterminated; tolerate
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    fn string_literal(&mut self, _unused: usize) {
        let line = self.line;
        self.string_from_quote(line, String::new());
    }

    /// Lexes a `"..."` (escapes honored, newlines allowed) whose opening
    /// quote is at the cursor; `prefix` is an already-consumed `b`.
    fn string_from_quote(&mut self, line: u32, prefix: String) {
        let mut text = prefix;
        text.push(self.bump().expect("opening quote")); // `"`
        loop {
            match self.peek(0) {
                Some('\\') => {
                    text.push(self.bump().expect("peeked"));
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                Some('"') => {
                    text.push(self.bump().expect("peeked"));
                    break;
                }
                Some(c) => {
                    text.push(c);
                    self.bump();
                }
                None => break, // unterminated; tolerate
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// `'a` (lifetime) vs `'a'` (char literal): consume identifier
    /// characters after the quote; a closing quote right after them makes
    /// it a char literal, anything else a lifetime.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        if self.peek(1).is_some_and(is_ident_start) {
            let mut k = 1;
            while self.peek(k).is_some_and(is_ident_continue) {
                k += 1;
            }
            if self.peek(k) == Some('\'') {
                // `'a'` or `'\u{..}'`-free simple char.
                let mut text = String::new();
                for _ in 0..=k {
                    text.push(self.bump().expect("peeked"));
                }
                self.push(TokenKind::Str, text, line);
            } else {
                let mut text = String::new();
                self.bump(); // the quote
                while self.peek(0).is_some_and(is_ident_continue) {
                    text.push(self.bump().expect("peeked"));
                }
                self.push(TokenKind::Lifetime, text, line);
            }
        } else {
            // Escaped or non-identifier char literal: `'\n'`, `' '`, `'\''`.
            let mut text = String::new();
            text.push(self.bump().expect("opening quote"));
            if self.peek(0) == Some('\\') {
                text.push(self.bump().expect("peeked"));
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if let Some(c) = self.bump() {
                text.push(c);
            }
            if self.peek(0) == Some('\'') {
                text.push(self.bump().expect("peeked"));
            }
            self.push(TokenKind::Str, text, line);
        }
    }

    fn byte_char(&mut self) {
        let line = self.line;
        let mut text = String::new();
        text.push(self.bump().expect("peeked")); // `b`
        text.push(self.bump().expect("peeked")); // `'`
        if self.peek(0) == Some('\\') {
            text.push(self.bump().expect("peeked"));
            if let Some(e) = self.bump() {
                text.push(e);
            }
        } else if let Some(c) = self.bump() {
            text.push(c);
        }
        if self.peek(0) == Some('\'') {
            text.push(self.bump().expect("peeked"));
        }
        self.push(TokenKind::Str, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` but not `1..5` (range) and not `1.max(2)`.
                text.push(c);
                self.bump();
            } else if (c == '+' || c == '-')
                && matches!(text.chars().last(), Some('e') | Some('E'))
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // Exponent sign: `1e-5`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unsafe_inside_string_literal_is_not_a_token() {
        let toks = lex(r#"let s = "unsafe { *p }"; call(s);"#);
        assert!(!idents(r#"let s = "unsafe { *p }"; call(s);"#).contains(&"unsafe".to_string()));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn hashmap_inside_comments_is_invisible() {
        let src = "// a HashMap here\n/* and a HashSet\n there */\nlet x = 1;";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"HashSet".to_string()));
        assert_eq!(ids, vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let src = "/* outer /* inner */ still comment */ after";
        let toks = lex(src);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert_eq!(toks[1].text, "after");
    }

    #[test]
    fn raw_strings_with_hashes_are_opaque() {
        let src = r###"let s = r#"HashMap "quoted" thread_rng"#; done"###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn raw_string_closing_needs_matching_hash_count() {
        // The `"#` inside must not close an `r##` string.
        let src = "let s = r##\"inner \"# not closed yet\"##; tail";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "tail"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'a'", "'\\n'"]);
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = lex("&'static str; &'_ u8");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["static", "_"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = \"two\nlines\";\n/* block\nspanning\nlines */\nlast";
        let toks = lex(src);
        let last = toks.last().expect("tokens");
        assert_eq!(last.text, "last");
        assert_eq!(last.line, 6);
    }

    #[test]
    fn numeric_literals_keep_suffixes() {
        let toks = lex("let x = 1.5f32 + 1_000u64 + 0x1f + 1e-5;");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1.5f32", "1_000u64", "0x1f", "1e-5"]);
    }

    #[test]
    fn range_does_not_eat_dots() {
        let toks = lex("for i in 0..10 {}");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_names() {
        let ids = idents("let r#type = 1; let r#fn = 2;");
        assert_eq!(ids, vec!["let", "type", "let", "fn"]);
    }

    #[test]
    fn byte_strings_and_byte_chars_are_opaque() {
        let ids = idents(r##"let a = b"unsafe"; let c = b'x'; let r = br#"HashMap"#;"##);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn byte_spans_tile_the_source() {
        let src = "let r#type = \"s\"; 'a 'b' /* c */ é_ident 1.5f32";
        let toks = lex(src);
        let mut last_end = 0usize;
        for t in &toks {
            assert!(t.offset >= last_end, "overlap at {:?}", t);
            assert!(t.offset < t.end, "empty span at {:?}", t);
            assert!(t.end <= src.len());
            assert!(src.is_char_boundary(t.offset) && src.is_char_boundary(t.end));
            last_end = t.end;
        }
        // Raw identifier: the span covers `r#type`, the text is bare.
        let raw = toks.iter().find(|t| t.text == "type").expect("raw ident");
        assert_eq!(&src[raw.offset..raw.end], "r#type");
        // Lifetime: the span includes the quote the text drops.
        let lt = toks.iter().find(|t| t.kind == TokenKind::Lifetime).expect("lifetime");
        assert_eq!(&src[lt.offset..lt.end], "'a");
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = lex(r"let q = '\''; let b = '\\'; after");
        assert_eq!(toks.last().expect("tokens").text, "after");
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
    }
}
