//! `rhythm-lint` — determinism & invariant static analysis for the
//! Rhythm workspace.
//!
//! Every guarantee this repository sells — bit-identical golden
//! fixtures, byte-identical telemetry for any worker-thread count,
//! reproducible Rhythm-vs-Heracles numbers — rests on determinism
//! invariants that ordinary tests only catch *after* a fingerprint
//! scrambles. This crate enforces them at the source level: a
//! dependency-free lexer (the registry is offline, so no `syn`) feeds a
//! rule engine that walks every workspace `.rs` file and reports
//! findings as `file:line: rule-id message`.
//!
//! Rules and their crate-scope policy live in [`rules`]; the escape
//! hatch is an inline pragma that *requires* a reason:
//!
//! ```text
//! // lint:allow(D01) -- lookup-only, never iterated
//! let mut idx: HashMap<Key, Row> = HashMap::new();
//! ```
//!
//! Three integrations keep the pass from rotting: the `repro lint`
//! subcommand (writes `results/lint.{txt,json}`), the tier-1 test
//! `tests/lint.rs` (fails the build on any unsuppressed finding), and a
//! dedicated CI job. See `DESIGN.md` §10 for the rule table and how to
//! add a rule.

#![forbid(unsafe_code)]

pub mod itemtree;
pub mod lexer;
pub mod rules;
pub mod scope;

pub use rules::{Finding, FileLint, RuleInfo, Suppressed, RULES};
pub use scope::{FileKind, FileScope};

use std::io;
use std::path::{Path, PathBuf};

/// Directory names the workspace walk never descends into: build
/// output, vendored stand-ins, VCS metadata, and `fixtures` directories
/// (test data — including this linter's own known-bad fixtures — is not
/// production source).
pub const SKIP_DIRS: &[&str] = &["target", "vendor", "results", "fixtures"];

/// The outcome of linting a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Pragma-suppressed findings, same order, with their reasons.
    pub suppressed: Vec<Suppressed>,
}

impl WorkspaceReport {
    /// True when the workspace is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Lints one file's source under a workspace-relative path label. The
/// label alone decides the policy scope, so tests can lint fixture text
/// as if it lived anywhere in the tree.
pub fn lint_source(rel_path: &str, src: &str) -> FileLint {
    rules::lint_tokens(rel_path, &lexer::lex(src))
}

/// Walks every workspace `.rs` file under `root` (skipping
/// [`SKIP_DIRS`] and hidden directories) and lints each one. File order
/// — hence finding order — is deterministic: paths are compared as
/// UTF-8 byte strings.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = WorkspaceReport {
        files_scanned: files.len(),
        ..WorkspaceReport::default()
    };
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let one = lint_source(rel, &src);
        report.findings.extend(one.findings);
        report.suppressed.extend(one.suppressed);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report.suppressed.sort_by(|a, b| {
        (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
            &b.finding.file,
            b.finding.line,
            b.finding.rule,
        ))
    });
    Ok(report)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Renders findings in the canonical `file:line: rule message` form,
/// one per line, with a trailing summary line.
pub fn render_text(report: &WorkspaceReport) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&f.render());
        s.push('\n');
    }
    s.push_str(&format!(
        "{} file(s) scanned, {} finding(s), {} suppressed\n",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    ));
    s
}

/// Escapes a value for a GitHub Actions workflow-command *message*
/// (the part after `::`): `%`, `\r`, `\n` become `%25`, `%0D`, `%0A`.
fn gh_escape_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes a value for a workflow-command *property* (`file=`,
/// `title=`): data escaping plus `:` and `,`, which delimit properties.
fn gh_escape_prop(s: &str) -> String {
    gh_escape_data(s).replace(':', "%3A").replace(',', "%2C")
}

/// Renders findings as GitHub Actions error annotations
/// (`::error file=...,line=...,title=...::message`), one per line, in
/// the report's sorted order. Suppressed findings are not annotated.
/// Empty when the workspace is clean.
pub fn render_github(report: &WorkspaceReport) -> String {
    let mut s = String::new();
    for f in &report.findings {
        s.push_str(&format!(
            "::error file={},line={},title=rhythm-lint {}::{}\n",
            gh_escape_prop(&f.file),
            f.line,
            f.rule,
            gh_escape_data(&f.message)
        ));
    }
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a stable JSON document (one finding per line;
/// byte-identical across runs on identical sources).
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"rhythm-lint\",\n");
    s.push_str("  \"schema\": \"rhythm-lint/v1\",\n");
    s.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    s.push_str(&format!("  \"unsuppressed\": {},\n", report.findings.len()));
    s.push_str(&format!("  \"suppressed\": {},\n", report.suppressed.len()));
    s.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    s.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    s.push_str("  \"suppressed_findings\": [");
    for (i, sp) in report.suppressed.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&sp.finding.file),
            sp.finding.line,
            sp.finding.rule,
            json_escape(&sp.reason)
        ));
    }
    s.push_str(if report.suppressed.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_reports_canonical_form() {
        let l = lint_source(
            "crates/sim/src/bad.rs",
            "fn f() { let m: HashSet<u8> = HashSet::new(); }",
        );
        assert_eq!(l.findings.len(), 2);
        let line = l.findings[0].render();
        assert!(
            line.starts_with("crates/sim/src/bad.rs:1: D01 "),
            "unexpected render: {line}"
        );
    }

    #[test]
    fn render_json_is_stable_and_escapes() {
        let report = WorkspaceReport {
            files_scanned: 1,
            findings: vec![Finding {
                file: "a\"b.rs".to_string(),
                line: 3,
                rule: "D01",
                message: "quote \" and backslash \\".to_string(),
            }],
            suppressed: vec![],
        };
        let a = render_json(&report);
        let b = render_json(&report);
        assert_eq!(a, b);
        assert!(a.contains("a\\\"b.rs"));
        assert!(a.contains("backslash \\\\"));
    }

    #[test]
    fn render_github_escapes_workflow_commands() {
        let report = WorkspaceReport {
            files_scanned: 1,
            findings: vec![Finding {
                file: "crates/core/src/a.rs".to_string(),
                line: 7,
                rule: "P01",
                message: "50% done\nnext".to_string(),
            }],
            suppressed: vec![],
        };
        assert_eq!(
            render_github(&report),
            "::error file=crates/core/src/a.rs,line=7,title=rhythm-lint P01::50%25 done%0Anext\n"
        );
        let clean = WorkspaceReport::default();
        assert!(render_github(&clean).is_empty());
    }

    #[test]
    fn walker_skips_fixture_and_vendor_dirs() {
        let tmp = std::env::temp_dir().join("rhythm-lint-walk-test");
        let _ = std::fs::remove_dir_all(&tmp);
        std::fs::create_dir_all(tmp.join("src")).unwrap();
        std::fs::create_dir_all(tmp.join("vendor/x")).unwrap();
        std::fs::create_dir_all(tmp.join("tests/fixtures")).unwrap();
        std::fs::write(tmp.join("src/a.rs"), "fn a() {}").unwrap();
        std::fs::write(tmp.join("vendor/x/b.rs"), "fn b() { thread_rng(); }").unwrap();
        std::fs::write(
            tmp.join("tests/fixtures/bad.rs"),
            "fn c() { thread_rng(); }",
        )
        .unwrap();
        let report = lint_workspace(&tmp).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert!(report.is_clean());
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
