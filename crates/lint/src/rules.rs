//! The rule engine: determinism and hygiene invariants over one file's
//! token stream.
//!
//! Every rule carries a *crate-scope policy* — the set of crates and
//! target kinds (lib / example / test) it applies to — so the same pass
//! runs over the whole workspace and each file only answers for the
//! contracts its layer actually sells. `#[cfg(test)]` modules inside
//! library files are excluded from the determinism rules (D-rules) the
//! same way `tests/` directories are.
//!
//! | rule | invariant | scope |
//! |------|-----------|-------|
//! | D01  | no `HashMap`/`HashSet` (iteration order is nondeterministic) | deterministic crates, lib code |
//! | D02  | no wall clock (`Instant::now`, `SystemTime`) | all lib code except `crates/bench` |
//! | D03  | no entropy randomness (`thread_rng`, `rand::random`, `from_entropy`) | everywhere outside tests |
//! | D04  | no `f32` (mixed-width accumulation reorders; fingerprints are f64) | `sim`, `cluster`, `core` lib code |
//! | U01  | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | H01  | every `#[allow(...)]` needs a justification | everywhere |
//! | A01  | every `// lint:allow(...)` pragma needs a reason | everywhere |
//! | S01  | no hash containers or raw-pointer fields in snapshot state types | snapshot-tagged lib modules |
//!
//! A module is *snapshot-tagged* when its file is named `snapshot.rs` or
//! it carries a `// lint:snapshot-state` marker comment: its types are
//! durable state with a canonical byte encoding, so fields must have a
//! deterministic encode order (no `HashMap`/`HashSet`) and must not key
//! on addresses that die with the process (no `*const`/`*mut`).
//!
//! The escape hatch is `// lint:allow(<rule>) -- <reason>` on the
//! finding's line or the line above; the reason is mandatory (A01).

use crate::lexer::{Token, TokenKind};
use crate::scope::{FileKind, FileScope};

/// Crates whose library code must be bit-reproducible: golden fixtures,
/// byte-identical telemetry and cluster determinism all flow through
/// them.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "core",
    "machine",
    "controller",
    "cluster",
    "chaos",
    "telemetry",
    "tracer",
    "analyzer",
    "interference",
    "workloads",
    "rhythm", // the root facade
];

/// Crates whose hot paths accumulate into f64 fingerprints; a stray
/// `f32` reorders mixed-width accumulation.
pub const F64_ONLY_CRATES: &[&str] = &["sim", "cluster", "core"];

/// One registered rule, for documentation and reports.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (`D01`...).
    pub id: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// The rule registry. Pragmas naming ids outside this table are A01
/// findings.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "no HashMap/HashSet in deterministic crates (iteration order)",
    },
    RuleInfo {
        id: "D02",
        summary: "no wall clock (Instant::now / SystemTime) outside bench and examples",
    },
    RuleInfo {
        id: "D03",
        summary: "no entropy randomness (thread_rng / rand::random / from_entropy) outside tests",
    },
    RuleInfo {
        id: "D04",
        summary: "no f32 in sim/cluster/core hot paths (fingerprints are f64)",
    },
    RuleInfo {
        id: "U01",
        summary: "unsafe requires a // SAFETY: comment",
    },
    RuleInfo {
        id: "H01",
        summary: "#[allow(...)] requires a justification",
    },
    RuleInfo {
        id: "A01",
        summary: "lint:allow pragma requires a reason and known rule ids",
    },
    RuleInfo {
        id: "S01",
        summary: "no hash containers or raw-pointer fields in snapshot state types",
    },
];

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D01`...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical `file:line: rule message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A finding silenced by a `lint:allow` pragma, with the pragma's reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The reason given after `--` in the pragma.
    pub reason: String,
}

/// The outcome of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileLint {
    /// Unsuppressed findings, sorted by (line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed pragma, same order.
    pub suppressed: Vec<Suppressed>,
}

/// A parsed, well-formed `// lint:allow(<ids>) -- <reason>` pragma.
struct Pragma {
    line: u32,
    rules: Vec<String>,
    reason: String,
}

/// Runs every rule over one file's tokens.
pub fn lint_tokens(rel_path: &str, tokens: &[Token]) -> FileLint {
    let scope = FileScope::classify(rel_path);
    let comments: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Comment)
        .collect();
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let test_regions = find_test_regions(&code);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let (pragmas, mut raw) = parse_pragmas(rel_path, &comments);

    if d01_applies(&scope) {
        d01_hash_containers(rel_path, &scope, &code, &in_test, &mut raw);
    }
    if d02_applies(&scope) {
        d02_wall_clock(rel_path, &code, &in_test, &mut raw);
    }
    if d03_applies(&scope) {
        d03_entropy(rel_path, &code, &in_test, &mut raw);
    }
    if d04_applies(&scope) {
        d04_f32(rel_path, &scope, &code, &in_test, &mut raw);
    }
    u01_unsafe_safety(rel_path, &code, &comments, &mut raw);
    h01_allow_justified(rel_path, &code, &comments, &mut raw);
    if s01_applies(&scope, rel_path, &comments) {
        s01_snapshot_state(rel_path, &code, &in_test, &mut raw);
    }

    // Apply suppression: a well-formed pragma covers its own line and the
    // line below it.
    let mut out = FileLint::default();
    for f in raw {
        let hit = pragmas.iter().find(|p| {
            (p.line == f.line || p.line + 1 == f.line) && p.rules.iter().any(|r| r == f.rule)
        });
        match hit {
            Some(p) => out.suppressed.push(Suppressed {
                finding: f,
                reason: p.reason.clone(),
            }),
            None => out.findings.push(f),
        }
    }
    out.findings
        .sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out.suppressed.sort_by(|a, b| {
        (a.finding.line, a.finding.rule).cmp(&(b.finding.line, b.finding.rule))
    });
    out
}

fn d01_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && DETERMINISTIC_CRATES.contains(&scope.crate_name.as_str())
}

fn d02_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && scope.crate_name != "bench"
}

fn d03_applies(scope: &FileScope) -> bool {
    scope.kind != FileKind::Test
}

fn d04_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && F64_ONLY_CRATES.contains(&scope.crate_name.as_str())
}

/// Marker comment that tags a whole module's types as snapshot state.
const SNAPSHOT_TAG: &str = "lint:snapshot-state";

/// S01 covers lib modules whose types are durable snapshot state: files
/// named `snapshot.rs`, or any file carrying a `lint:snapshot-state`
/// marker comment.
fn s01_applies(scope: &FileScope, rel_path: &str, comments: &[&Token]) -> bool {
    if scope.kind != FileKind::Lib {
        return false;
    }
    rel_path.rsplit('/').next() == Some("snapshot.rs")
        || comments.iter().any(|c| {
            c.text
                .trim_start_matches(['/', '!', '*', ' ', '\t'])
                .starts_with(SNAPSHOT_TAG)
        })
}

/// S01: inside a snapshot-tagged module, `struct`/`enum` bodies must not
/// contain hash containers (no canonical encode order) or raw pointers
/// (addresses do not survive encode/decode).
fn s01_snapshot_state(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < code.len() {
        if !(is_ident(code[i], "struct") || is_ident(code[i], "enum")) {
            i += 1;
            continue;
        }
        let name = code
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map_or("_", |t| t.text.as_str())
            .to_string();
        // Find the body opener: `{` (fields/variants), `(` (tuple
        // struct), or `;` (unit struct — nothing to check).
        let mut j = i + 1;
        let mut open = None;
        while j < code.len() {
            if is_punct(code[j], '{') {
                open = Some(('{', '}'));
                break;
            }
            if is_punct(code[j], '(') {
                open = Some(('(', ')'));
                break;
            }
            if is_punct(code[j], ';') {
                break;
            }
            j += 1;
        }
        let Some((open, close)) = open else {
            i = j.max(i + 1);
            continue;
        };
        let body_start = j;
        let mut depth = 0usize;
        while j < code.len() {
            if is_punct(code[j], open) {
                depth += 1;
            } else if is_punct(code[j], close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        for k in body_start..j.min(code.len()) {
            let t = code[k];
            if in_test(t.line) {
                continue;
            }
            if t.kind == TokenKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: "S01",
                    message: format!(
                        "`{}` field in snapshot state type `{name}` — hash containers have no \
                         canonical encode order; use BTreeMap/BTreeSet",
                        t.text
                    ),
                });
            }
            if is_punct(t, '*')
                && k + 1 < j
                && (is_ident(code[k + 1], "const") || is_ident(code[k + 1], "mut"))
            {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: "S01",
                    message: format!(
                        "raw pointer field in snapshot state type `{name}` — addresses do not \
                         survive encode/decode; key by stable index or id",
                    ),
                });
            }
        }
        i = j.max(i + 1);
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Line spans (inclusive) of `#[cfg(test)] mod <name> { ... }` bodies.
fn find_test_regions(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < code.len() {
        let attr = is_punct(code[i], '#')
            && is_punct(code[i + 1], '[')
            && is_ident(code[i + 2], "cfg")
            && is_punct(code[i + 3], '(')
            && is_ident(code[i + 4], "test")
            && is_punct(code[i + 5], ')')
            && is_punct(code[i + 6], ']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = i + 7;
        while j + 1 < code.len() && is_punct(code[j], '#') && is_punct(code[j + 1], '[') {
            let mut depth = 0usize;
            while j < code.len() {
                if is_punct(code[j], '[') {
                    depth += 1;
                } else if is_punct(code[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Only `mod` bodies form a region; other cfg(test) items are rare
        // and stay subject to the rules.
        if j < code.len() && is_ident(code[j], "mod") {
            // Find the opening brace, then match it.
            while j < code.len() && !is_punct(code[j], '{') {
                j += 1;
            }
            if j < code.len() {
                let start_line = code[j].line;
                let mut depth = 0usize;
                while j < code.len() {
                    if is_punct(code[j], '{') {
                        depth += 1;
                    } else if is_punct(code[j], '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = code[j.min(code.len() - 1)].line;
                regions.push((start_line, end_line));
            }
        }
        i = j.max(i + 7);
    }
    regions
}

/// Parses `lint:allow` pragmas out of the comment stream. A comment is
/// a pragma only when its text *starts* with `lint:allow` (after the
/// comment markers) — prose that merely mentions the syntax is inert.
/// Malformed pragmas (missing reason, unknown rule id) become A01
/// findings and do not suppress anything.
fn parse_pragmas(rel_path: &str, comments: &[&Token]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let stripped = c
            .text
            .trim_start_matches(['/', '!', '*', ' ', '\t']);
        if !stripped.starts_with("lint:allow") {
            continue;
        }
        let rest = &stripped["lint:allow".len()..];
        let Some(open) = rest.find('(') else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message: "malformed lint:allow pragma: expected `lint:allow(<rule>) -- <reason>`"
                    .to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message: "malformed lint:allow pragma: missing `)`".to_string(),
            });
            continue;
        };
        let ids: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut ok = !ids.is_empty();
        for id in &ids {
            if !known_rule(id) {
                ok = false;
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "A01",
                    message: format!("unknown rule id `{id}` in lint:allow pragma"),
                });
            }
        }
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix("--")
            .map(|r| r.trim().trim_end_matches("*/").trim())
            .unwrap_or("");
        if reason.is_empty() {
            ok = false;
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message:
                    "lint:allow pragma requires a reason: `// lint:allow(<rule>) -- <reason>`"
                        .to_string(),
            });
        }
        if ok {
            pragmas.push(Pragma {
                line: c.line,
                rules: ids,
                reason: reason.to_string(),
            });
        }
    }
    (pragmas, findings)
}

/// True when the identifier at `i` sits inside a `use` statement (an
/// import is not a use site; flagging it would double-report).
fn in_use_statement(code: &[&Token], i: usize) -> bool {
    let lo = i.saturating_sub(40);
    for j in (lo..i).rev() {
        if is_punct(code[j], ';') {
            return false;
        }
        if is_ident(code[j], "use") {
            return true;
        }
    }
    false
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn d01_hash_containers(
    rel_path: &str,
    scope: &FileScope,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    // Pass A: every non-import mention of a hash container is a finding,
    // and named bindings are registered for the iteration pass.
    let mut bound: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if in_use_statement(code, i) || in_test(t.line) {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: t.line,
            rule: "D01",
            message: format!(
                "`{}` in deterministic crate `{}` — iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet, or `lint:allow(D01)` with a reason if lookup-only",
                t.text, scope.crate_name
            ),
        });
        // `name: HashMap<...>` or `name = HashMap::new()` (skipping `&`,
        // `mut` between) registers `name`.
        let mut j = i;
        while j > 0 && (is_punct(code[j - 1], '&') || is_ident(code[j - 1], "mut")) {
            j -= 1;
        }
        if j >= 2
            && (is_punct(code[j - 1], ':') || is_punct(code[j - 1], '='))
            && code[j - 2].kind == TokenKind::Ident
        {
            let name = code[j - 2].text.clone();
            if !bound.contains(&name) {
                bound.push(name);
            }
        }
    }
    // Pass B: iteration over a registered binding.
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !bound.contains(&t.text) || in_test(t.line) {
            continue;
        }
        // `name.keys()` / `.values()` / `.drain()` / ...
        if i + 3 < code.len()
            && is_punct(code[i + 1], '.')
            && code[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && is_punct(code[i + 3], '(')
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: code[i + 2].line,
                rule: "D01",
                message: format!(
                    "iteration `.{}()` over hash container `{}` — order is nondeterministic",
                    code[i + 2].text, t.text
                ),
            });
        }
        // `for x in &name {` / `for x in name {`
        let mut j = i;
        while j > 0 && (is_punct(code[j - 1], '&') || is_ident(code[j - 1], "mut")) {
            j -= 1;
        }
        if j > 0
            && is_ident(code[j - 1], "in")
            && i + 1 < code.len()
            && is_punct(code[i + 1], '{')
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D01",
                message: format!(
                    "`for ... in` over hash container `{}` — order is nondeterministic",
                    t.text
                ),
            });
        }
    }
}

fn d02_wall_clock(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        if t.text == "SystemTime" && !in_use_statement(code, i) {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D02",
                message: "wall clock `SystemTime` in deterministic code — use virtual `SimTime`"
                    .to_string(),
            });
        }
        if t.text == "Instant"
            && i + 3 < code.len()
            && is_punct(code[i + 1], ':')
            && is_punct(code[i + 2], ':')
            && is_ident(code[i + 3], "now")
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D02",
                message: "wall clock `Instant::now` in deterministic code — use virtual `SimTime`"
                    .to_string(),
            });
        }
    }
}

fn d03_entropy(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D03",
                message: format!(
                    "entropy randomness `{}` — seed a `SimRng` instead",
                    t.text
                ),
            });
        }
        if t.text == "rand"
            && i + 3 < code.len()
            && is_punct(code[i + 1], ':')
            && is_punct(code[i + 2], ':')
            && is_ident(code[i + 3], "random")
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D03",
                message: "entropy randomness `rand::random` — seed a `SimRng` instead".to_string(),
            });
        }
    }
}

fn d04_f32(
    rel_path: &str,
    scope: &FileScope,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for t in code {
        if in_test(t.line) {
            continue;
        }
        let hit = (t.kind == TokenKind::Ident && t.text == "f32")
            || (t.kind == TokenKind::Num && t.text.ends_with("f32"));
        if hit {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D04",
                message: format!(
                    "`f32` in `{}` hot path — fingerprints accumulate in f64; \
                     mixed-width accumulation reorders",
                    scope.crate_name
                ),
            });
        }
    }
}

fn u01_unsafe_safety(
    rel_path: &str,
    code: &[&Token],
    comments: &[&Token],
    out: &mut Vec<Finding>,
) {
    for t in code {
        if !is_ident(t, "unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let justified = comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !justified {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "U01",
                message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
            });
        }
    }
}

fn h01_allow_justified(
    rel_path: &str,
    code: &[&Token],
    comments: &[&Token],
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        // `#[allow(` or `#![allow(`.
        let attr_head = is_ident(t, "allow")
            && i >= 2
            && is_punct(code[i - 1], '[')
            && (is_punct(code[i - 2], '#')
                || (is_punct(code[i - 2], '!') && i >= 3 && is_punct(code[i - 3], '#')))
            && i + 1 < code.len()
            && is_punct(code[i + 1], '(');
        if !attr_head {
            continue;
        }
        // Find the attribute's closing `]` (bounded scan).
        let mut close_line = t.line;
        let mut reason_arg = false;
        for tok in code.iter().skip(i).take(50) {
            if is_ident(tok, "reason") {
                reason_arg = true;
            }
            if is_punct(tok, ']') {
                close_line = tok.line;
                break;
            }
        }
        let start_line = t.line.saturating_sub(1);
        let justified = reason_arg
            || comments
                .iter()
                .any(|c| c.line >= start_line && c.line <= close_line);
        if !justified {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "H01",
                message: "`#[allow(...)]` without a justification — add a trailing `// why` \
                          comment (or one on the line above)"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> FileLint {
        lint_tokens(path, &lex(src))
    }

    fn rules_of(l: &FileLint) -> Vec<&'static str> {
        l.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d01_flags_declaration_and_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   for (k, v) in &m {}\n\
                   let _ = m.keys();\n\
                   }\n";
        let l = run("crates/sim/src/x.rs", src);
        // Two type mentions on line 3, the for-loop, and `.keys()`.
        assert_eq!(rules_of(&l), vec!["D01", "D01", "D01", "D01"]);
        assert_eq!(l.findings[0].line, 3);
        assert_eq!(l.findings[2].line, 4);
        assert_eq!(l.findings[3].line, 5);
    }

    #[test]
    fn d01_ignores_use_lines_tests_and_other_crates() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   }\n";
        assert!(run("crates/sim/src/x.rs", src).findings.is_empty());
        let decl = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        assert!(run("crates/bench/src/x.rs", decl).findings.is_empty());
        assert!(run("crates/sim/tests/x.rs", decl).findings.is_empty());
        assert!(run("crates/sim/examples/x.rs", decl).findings.is_empty());
    }

    #[test]
    fn d01_suppression_needs_matching_rule_and_line() {
        let src = "// lint:allow(D01) -- lookup-only\n\
                   fn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   fn g() { let n: HashSet<u8> = HashSet::new(); }\n";
        let l = run("crates/core/src/x.rs", src);
        assert_eq!(l.suppressed.len(), 2); // both mentions on line 2
        assert_eq!(l.suppressed[0].reason, "lookup-only");
        assert_eq!(rules_of(&l), vec!["D01", "D01"]); // line 3 not covered
        assert_eq!(l.findings[0].line, 3);
    }

    #[test]
    fn d02_wall_clock_scoped() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let l = run("crates/controller/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["D02", "D02"]);
        assert!(run("crates/bench/src/x.rs", src).findings.is_empty());
        assert!(run("crates/sim/examples/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d03_entropy_everywhere_but_tests() {
        let src = "fn f() { let r = thread_rng(); let x: u8 = rand::random(); }";
        assert_eq!(
            rules_of(&run("crates/bench/src/x.rs", src)),
            vec!["D03", "D03"]
        );
        assert_eq!(rules_of(&run("examples/x.rs", src)), vec!["D03", "D03"]);
        assert!(run("tests/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d04_f32_including_literal_suffix() {
        let src = "fn f(x: f32) -> f64 { (x as f64) + 1.5f32 as f64 }";
        let l = run("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["D04", "D04"]);
        assert!(run("crates/machine/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn u01_safety_comment_window() {
        let bad = "fn f() { unsafe { core(); } }";
        let l = run("crates/sim/src/x.rs", bad);
        assert_eq!(rules_of(&l), vec!["U01"]);
        let good = "fn f() {\n// SAFETY: ptr is valid for the call\nunsafe { core(); } }";
        assert!(run("crates/sim/src/x.rs", good).findings.is_empty());
    }

    #[test]
    fn h01_allow_needs_justification() {
        let bad = "#[allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_of(&run("crates/sim/src/x.rs", bad)), vec!["H01"]);
        let trailing = "#[allow(dead_code)] // kept for the ffi table\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", trailing).findings.is_empty());
        let above = "// scaffolding for the next PR\n#[allow(dead_code)]\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", above).findings.is_empty());
        let reason = "#[allow(dead_code, reason = \"scaffolding\")]\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", reason).findings.is_empty());
        let inner = "#![allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_of(&run("crates/sim/src/x.rs", inner)), vec!["H01"]);
    }

    #[test]
    fn a01_pragma_requires_reason_and_known_rule() {
        let src = "// lint:allow(D01)\n// lint:allow(Z99) -- whatever\nfn f() {}";
        let l = run("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["A01", "A01"]);
        assert!(l.findings[0].message.contains("requires a reason"));
        assert!(l.findings[1].message.contains("unknown rule id `Z99`"));
    }

    #[test]
    fn prose_mentioning_the_pragma_syntax_is_inert() {
        // Doc comments *about* the pragma (like this engine's own docs)
        // must not parse as pragma attempts.
        let src = "//! The escape hatch is `// lint:allow(D01) -- why`.\n\
                   // see lint:allow(...) in DESIGN.md\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn malformed_pragma_does_not_suppress() {
        let src = "// lint:allow(D01)\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let l = run("crates/sim/src/x.rs", src);
        // A01 for the pragma plus the two unsuppressed D01s.
        assert_eq!(rules_of(&l), vec!["A01", "D01", "D01"]);
        assert!(l.suppressed.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_line_then_rule() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let l = run("crates/sim/src/x.rs", src);
        let lines: Vec<u32> = l.findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn s01_flags_hash_and_pointer_fields_in_snapshot_modules() {
        // `snapshot.rs` is tagged by name; the `snapshot` crate is not in
        // DETERMINISTIC_CRATES, so the findings here are purely S01.
        let src = "pub struct State {\n\
                   \x20   pub index: HashMap<u64, u64>,\n\
                   \x20   pub owner: *const u8,\n\
                   \x20   pub order: BTreeMap<u64, u64>,\n\
                   }\n";
        let l = run("crates/snapshot/src/snapshot.rs", src);
        assert_eq!(
            l.findings.iter().map(Finding::render).collect::<Vec<_>>(),
            vec![
                "crates/snapshot/src/snapshot.rs:2: S01 `HashMap` field in snapshot state type \
                 `State` — hash containers have no canonical encode order; use \
                 BTreeMap/BTreeSet"
                    .to_string(),
                "crates/snapshot/src/snapshot.rs:3: S01 raw pointer field in snapshot state type \
                 `State` — addresses do not survive encode/decode; key by stable index or id"
                    .to_string(),
            ],
        );
    }

    #[test]
    fn s01_marker_comment_tags_any_lib_module() {
        let src = "// lint:snapshot-state\n\
                   pub enum Slot { Empty, Full(HashSet<u8>) }\n\
                   fn local() { let m: *mut u8 = std::ptr::null_mut(); }\n";
        let l = run("crates/snapshot/src/queue.rs", src);
        // Only the enum body is checked: the raw pointer inside `local`
        // is transient, not snapshot state.
        assert_eq!(rules_of(&l), vec!["S01"]);
        assert_eq!(l.findings[0].line, 2);
        // Without the marker (and not named snapshot.rs) the same source
        // is out of S01's scope.
        let untagged = "pub enum Slot { Empty, Full(HashSet<u8>) }\n";
        assert!(run("crates/snapshot/src/queue.rs", untagged).findings.is_empty());
    }

    #[test]
    fn s01_clean_snapshot_state_and_tests_pass() {
        let src = "pub struct State { pub order: BTreeMap<u64, u64>, pub ids: Vec<u64> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   struct Probe { m: HashMap<u8, u8> }\n\
                   }\n";
        assert!(run("crates/snapshot/src/snapshot.rs", src).findings.is_empty());
    }

    #[test]
    fn s01_suppressible_like_any_rule() {
        let src = "// lint:allow(S01) -- legacy layout, encode sorts explicitly\n\
                   pub struct State { pub index: HashMap<u64, u64> }\n";
        let l = run("crates/snapshot/src/snapshot.rs", src);
        assert!(l.findings.is_empty());
        assert_eq!(l.suppressed.len(), 1);
        assert_eq!(l.suppressed[0].finding.rule, "S01");
    }
}
