//! The rule engine: determinism and hygiene invariants over one file's
//! token stream.
//!
//! Every rule carries a *crate-scope policy* — the set of crates and
//! target kinds (lib / example / test) it applies to — so the same pass
//! runs over the whole workspace and each file only answers for the
//! contracts its layer actually sells. `#[cfg(test)]` modules inside
//! library files are excluded from the determinism rules (D-rules) the
//! same way `tests/` directories are.
//!
//! | rule | invariant | scope |
//! |------|-----------|-------|
//! | D01  | no `HashMap`/`HashSet` (iteration order is nondeterministic) | deterministic crates, lib code |
//! | D02  | no wall clock (`Instant::now`, `SystemTime`) | all lib code except `crates/bench` |
//! | D03  | no entropy randomness (`thread_rng`, `rand::random`, `from_entropy`) | everywhere outside tests |
//! | D04  | no `f32` (mixed-width accumulation reorders; fingerprints are f64) | `sim`, `cluster`, `core` lib code |
//! | U01  | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | H01  | every `#[allow(...)]` needs a justification | everywhere |
//! | A01  | every `// lint:allow(...)` pragma needs a reason | everywhere |
//! | S01  | no hash containers or raw-pointer fields in snapshot state types | snapshot-tagged lib modules |
//! | S02  | snapshot encode/decode cover every struct field, same order | lib code (syntactic, via [`crate::itemtree`]) |
//! | D05  | no lossy `as` casts (truncation / signedness change) | deterministic crates + `snapshot`, lib code |
//! | P01  | `unwrap`/`expect`/`panic!` need a `// PANIC:` justification | `core`, `cluster`, `snapshot` lib code |
//!
//! A module is *snapshot-tagged* when its file is named `snapshot.rs` or
//! it carries a `// lint:snapshot-state` marker comment: its types are
//! durable state with a canonical byte encoding, so fields must have a
//! deterministic encode order (no `HashMap`/`HashSet`) and must not key
//! on addresses that die with the process (no `*const`/`*mut`).
//!
//! The escape hatch is `// lint:allow(<rule>) -- <reason>` on the
//! finding's line or the line above; the reason is mandatory (A01).

use crate::lexer::{Token, TokenKind};
use crate::scope::{FileKind, FileScope};

/// Crates whose library code must be bit-reproducible: golden fixtures,
/// byte-identical telemetry and cluster determinism all flow through
/// them.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim",
    "core",
    "machine",
    "controller",
    "cluster",
    "chaos",
    "telemetry",
    "tracer",
    "analyzer",
    "interference",
    "workloads",
    "rhythm", // the root facade
];

/// Crates whose hot paths accumulate into f64 fingerprints; a stray
/// `f32` reorders mixed-width accumulation.
pub const F64_ONLY_CRATES: &[&str] = &["sim", "cluster", "core"];

/// One registered rule, for documentation and reports.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (`D01`...).
    pub id: &'static str,
    /// One-line summary of the invariant.
    pub summary: &'static str,
}

/// The rule registry. Pragmas naming ids outside this table are A01
/// findings.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D01",
        summary: "no HashMap/HashSet in deterministic crates (iteration order)",
    },
    RuleInfo {
        id: "D02",
        summary: "no wall clock (Instant::now / SystemTime) outside bench and examples",
    },
    RuleInfo {
        id: "D03",
        summary: "no entropy randomness (thread_rng / rand::random / from_entropy) outside tests",
    },
    RuleInfo {
        id: "D04",
        summary: "no f32 in sim/cluster/core hot paths (fingerprints are f64)",
    },
    RuleInfo {
        id: "U01",
        summary: "unsafe requires a // SAFETY: comment",
    },
    RuleInfo {
        id: "H01",
        summary: "#[allow(...)] requires a justification",
    },
    RuleInfo {
        id: "A01",
        summary: "lint:allow pragma requires a reason and known rule ids",
    },
    RuleInfo {
        id: "S01",
        summary: "no hash containers or raw-pointer fields in snapshot state types",
    },
    RuleInfo {
        id: "S02",
        summary: "snapshot encode/decode must cover every struct field in the same order",
    },
    RuleInfo {
        id: "D05",
        summary: "no lossy numeric `as` casts (truncation or signedness change) in deterministic crates",
    },
    RuleInfo {
        id: "P01",
        summary: "unwrap/expect/panic! in core/cluster/snapshot lib code requires a // PANIC: comment",
    },
];

fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// One reported violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D01`...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The canonical `file:line: rule message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// A finding silenced by a `lint:allow` pragma, with the pragma's reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The reason given after `--` in the pragma.
    pub reason: String,
}

/// The outcome of linting one file.
#[derive(Clone, Debug, Default)]
pub struct FileLint {
    /// Unsuppressed findings, sorted by (line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed pragma, same order.
    pub suppressed: Vec<Suppressed>,
}

/// A parsed, well-formed `// lint:allow(<ids>) -- <reason>` pragma.
struct Pragma {
    line: u32,
    rules: Vec<String>,
    reason: String,
}

/// Runs every rule over one file's tokens.
pub fn lint_tokens(rel_path: &str, tokens: &[Token]) -> FileLint {
    let scope = FileScope::classify(rel_path);
    let comments: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Comment)
        .collect();
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let test_regions = find_test_regions(&code);
    let in_test = |line: u32| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let (pragmas, mut raw) = parse_pragmas(rel_path, &comments);

    if d01_applies(&scope) {
        d01_hash_containers(rel_path, &scope, &code, &in_test, &mut raw);
    }
    if d02_applies(&scope) {
        d02_wall_clock(rel_path, &code, &in_test, &mut raw);
    }
    if d03_applies(&scope) {
        d03_entropy(rel_path, &code, &in_test, &mut raw);
    }
    if d04_applies(&scope) {
        d04_f32(rel_path, &scope, &code, &in_test, &mut raw);
    }
    u01_unsafe_safety(rel_path, &code, &comments, &mut raw);
    h01_allow_justified(rel_path, &code, &comments, &mut raw);
    if s01_applies(&scope, rel_path, &comments) {
        s01_snapshot_state(rel_path, &code, &in_test, &mut raw);
    }
    // The syntactic rules share one item-tree parse per file.
    if s02_applies(&scope) || d05_applies(&scope) {
        let tree = crate::itemtree::parse(&code);
        if s02_applies(&scope) {
            s02_field_coverage(rel_path, &tree, &code, &in_test, &mut raw);
        }
        if d05_applies(&scope) {
            d05_lossy_casts(rel_path, &tree, &code, &in_test, &mut raw);
        }
    }
    if p01_applies(&scope) {
        p01_panic_paths(rel_path, &code, &comments, &in_test, &mut raw);
    }

    // Apply suppression: a well-formed pragma covers its own line and the
    // line below it.
    let mut out = FileLint::default();
    for f in raw {
        let hit = pragmas.iter().find(|p| {
            (p.line == f.line || p.line + 1 == f.line) && p.rules.iter().any(|r| r == f.rule)
        });
        match hit {
            Some(p) => out.suppressed.push(Suppressed {
                finding: f,
                reason: p.reason.clone(),
            }),
            None => out.findings.push(f),
        }
    }
    out.findings
        .sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    out.suppressed.sort_by(|a, b| {
        (a.finding.line, a.finding.rule).cmp(&(b.finding.line, b.finding.rule))
    });
    out
}

fn d01_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && DETERMINISTIC_CRATES.contains(&scope.crate_name.as_str())
}

fn d02_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && scope.crate_name != "bench"
}

fn d03_applies(scope: &FileScope) -> bool {
    scope.kind != FileKind::Test
}

fn d04_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && F64_ONLY_CRATES.contains(&scope.crate_name.as_str())
}

/// Marker comment that tags a whole module's types as snapshot state.
const SNAPSHOT_TAG: &str = "lint:snapshot-state";

/// S01 covers lib modules whose types are durable snapshot state: files
/// named `snapshot.rs`, or any file carrying a `lint:snapshot-state`
/// marker comment.
fn s01_applies(scope: &FileScope, rel_path: &str, comments: &[&Token]) -> bool {
    if scope.kind != FileKind::Lib {
        return false;
    }
    rel_path.rsplit('/').next() == Some("snapshot.rs")
        || comments.iter().any(|c| {
            c.text
                .trim_start_matches(['/', '!', '*', ' ', '\t'])
                .starts_with(SNAPSHOT_TAG)
        })
}

/// S01: inside a snapshot-tagged module, `struct`/`enum` bodies must not
/// contain hash containers (no canonical encode order) or raw pointers
/// (addresses do not survive encode/decode).
fn s01_snapshot_state(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let mut i = 0usize;
    while i < code.len() {
        if !(is_ident(code[i], "struct") || is_ident(code[i], "enum")) {
            i += 1;
            continue;
        }
        let name = code
            .get(i + 1)
            .filter(|t| t.kind == TokenKind::Ident)
            .map_or("_", |t| t.text.as_str())
            .to_string();
        // Find the body opener: `{` (fields/variants), `(` (tuple
        // struct), or `;` (unit struct — nothing to check).
        let mut j = i + 1;
        let mut open = None;
        while j < code.len() {
            if is_punct(code[j], '{') {
                open = Some(('{', '}'));
                break;
            }
            if is_punct(code[j], '(') {
                open = Some(('(', ')'));
                break;
            }
            if is_punct(code[j], ';') {
                break;
            }
            j += 1;
        }
        let Some((open, close)) = open else {
            i = j.max(i + 1);
            continue;
        };
        let body_start = j;
        let mut depth = 0usize;
        while j < code.len() {
            if is_punct(code[j], open) {
                depth += 1;
            } else if is_punct(code[j], close) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        for k in body_start..j.min(code.len()) {
            let t = code[k];
            if in_test(t.line) {
                continue;
            }
            if t.kind == TokenKind::Ident && HASH_TYPES.contains(&t.text.as_str()) {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: "S01",
                    message: format!(
                        "`{}` field in snapshot state type `{name}` — hash containers have no \
                         canonical encode order; use BTreeMap/BTreeSet",
                        t.text
                    ),
                });
            }
            if is_punct(t, '*')
                && k + 1 < j
                && (is_ident(code[k + 1], "const") || is_ident(code[k + 1], "mut"))
            {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: t.line,
                    rule: "S01",
                    message: format!(
                        "raw pointer field in snapshot state type `{name}` — addresses do not \
                         survive encode/decode; key by stable index or id",
                    ),
                });
            }
        }
        i = j.max(i + 1);
    }
}

/// S02 is purely syntactic: it needs the struct definition and the
/// encode/decode bodies in the same lib file, wherever that file lives.
fn s02_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib
}

/// D05 guards the integer identities (busy integrals, fingerprints) in
/// the deterministic crates plus the snapshot codec itself.
fn d05_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib
        && (DETERMINISTIC_CRATES.contains(&scope.crate_name.as_str())
            || scope.crate_name == "snapshot")
}

/// Crates whose lib code must justify every panic path: they run inside
/// the resumable engine/scheduler where an abort corrupts nothing only
/// because snapshots exist — each panic must argue its impossibility.
pub const PANIC_AUDITED_CRATES: &[&str] = &["core", "cluster", "snapshot"];

fn p01_applies(scope: &FileScope) -> bool {
    scope.kind == FileKind::Lib && PANIC_AUDITED_CRATES.contains(&scope.crate_name.as_str())
}

/// S02: for every encode/decode pair of a struct defined in this file —
/// `impl Snapshot for T { fn encode / fn decode }` or an inherent
/// `fn encode_<x>` / `fn decode_<x>` pair — every non-`cfg`-gated field
/// of `T` must appear in both bodies (encode as `self.<field>`, decode
/// as any mention of the field name), and the fields' first-occurrence
/// order in decode must match encode: the wire format reads what was
/// written, in the order it was written. Findings anchor at the field's
/// declaration line so a per-field `lint:allow(S02)` pragma (derived /
/// reconstructed fields) sits next to the field it excuses.
fn s02_field_coverage(
    rel_path: &str,
    tree: &crate::itemtree::ItemTree,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    // (struct, encode fn, decode fn) pairs discovered in this file.
    let mut pairs: Vec<(&crate::itemtree::StructDef, &crate::itemtree::FnDef, &crate::itemtree::FnDef)> =
        Vec::new();
    for imp in &tree.impls {
        if in_test(imp.line) {
            continue;
        }
        let Some(strukt) = tree.struct_named(&imp.type_name) else {
            continue;
        };
        if strukt.fields.is_none() || in_test(strukt.line) {
            continue;
        }
        let fn_named = |name: &str| {
            imp.fns
                .iter()
                .map(|&i| &tree.fns[i])
                .find(|f| f.name == name && f.body.is_some())
        };
        if imp.trait_name.as_deref() == Some("Snapshot") {
            if let (Some(enc), Some(dec)) = (fn_named("encode"), fn_named("decode")) {
                pairs.push((strukt, enc, dec));
            }
        } else if imp.trait_name.is_none() {
            // Inherent `encode_<x>` pairs with `decode_<x>` (same suffix),
            // in this impl block; the plain `encode`/`decode` pair too.
            for &fi in &imp.fns {
                let enc = &tree.fns[fi];
                let Some(suffix) = enc.name.strip_prefix("encode") else {
                    continue;
                };
                if enc.body.is_none() || (!suffix.is_empty() && !suffix.starts_with('_')) {
                    continue;
                }
                if let Some(dec) = fn_named(&format!("decode{suffix}")) {
                    pairs.push((strukt, enc, dec));
                }
            }
        }
    }
    for (strukt, enc, dec) in pairs {
        check_snapshot_pair(rel_path, strukt, enc, dec, code, out);
    }
}

/// First token index in `body` where `self.<name>` occurs, for each
/// name; plus the `self.<ident>` mentions that are *not* fields and not
/// method calls (no `(` after the ident).
fn self_field_mentions(
    code: &[&Token],
    body: (usize, usize),
    fields: &[String],
) -> (Vec<Option<usize>>, Vec<(usize, String)>) {
    let mut firsts: Vec<Option<usize>> = vec![None; fields.len()];
    let mut extras = Vec::new();
    let (lo, hi) = body;
    for k in lo..hi.min(code.len()) {
        if k < 2
            || code[k].kind != TokenKind::Ident
            || !is_punct(code[k - 1], '.')
            || !is_ident(code[k - 2], "self")
        {
            continue;
        }
        if let Some(fi) = fields.iter().position(|f| f == &code[k].text) {
            if firsts[fi].is_none() {
                firsts[fi] = Some(k);
            }
        } else if !code.get(k + 1).is_some_and(|t| is_punct(t, '(')) {
            extras.push((k, code[k].text.clone()));
        }
    }
    (firsts, extras)
}

fn check_snapshot_pair(
    rel_path: &str,
    strukt: &crate::itemtree::StructDef,
    enc: &crate::itemtree::FnDef,
    dec: &crate::itemtree::FnDef,
    code: &[&Token],
    out: &mut Vec<Finding>,
) {
    let all_fields = strukt.fields.as_deref().unwrap_or(&[]);
    let covered: Vec<&crate::itemtree::Field> =
        all_fields.iter().filter(|f| !f.cfg_gated).collect();
    let names: Vec<String> = covered.iter().map(|f| f.name.clone()).collect();
    let enc_body = enc.body.unwrap_or((0, 0));
    let dec_body = dec.body.unwrap_or((0, 0));
    let (enc_first, enc_extras) = self_field_mentions(code, enc_body, &names);
    // Decode has no `self`: a field counts as mentioned at its first
    // appearance as a bare identifier (`let jobs = ...; Self { jobs }`).
    let mut dec_first: Vec<Option<usize>> = vec![None; names.len()];
    let dec_range = dec_body.0..dec_body.1.min(code.len());
    for (k, tok) in code.iter().enumerate().take(dec_range.end).skip(dec_range.start) {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if let Some(fi) = names.iter().position(|n| n == &tok.text) {
            if dec_first[fi].is_none() {
                dec_first[fi] = Some(k);
            }
        }
    }
    for (fi, field) in covered.iter().enumerate() {
        if enc_first[fi].is_none() {
            out.push(Finding {
                file: rel_path.to_string(),
                line: field.line,
                rule: "S02",
                message: format!(
                    "snapshot field `{}` of `{}` is never written in `{}` — resume would lose \
                     it; encode it or `lint:allow(S02)` with a reason if derived",
                    field.name, strukt.name, enc.name
                ),
            });
        }
        if dec_first[fi].is_none() {
            out.push(Finding {
                file: rel_path.to_string(),
                line: field.line,
                rule: "S02",
                message: format!(
                    "snapshot field `{}` of `{}` is never read in `{}` — decode must consume \
                     every encoded field; or `lint:allow(S02)` with a reason if reconstructed",
                    field.name, strukt.name, dec.name
                ),
            });
        }
    }
    for (k, name) in enc_extras {
        out.push(Finding {
            file: rel_path.to_string(),
            line: code[k].line,
            rule: "S02",
            message: format!(
                "`self.{name}` written in `{}` is not a field of `{}` — encode and struct \
                 definition disagree",
                enc.name, strukt.name
            ),
        });
    }
    // Ordering: among fields present in both bodies, decode's
    // first-occurrence order must be monotone in encode's.
    let mut both: Vec<(usize, usize, usize)> = covered
        .iter()
        .enumerate()
        .filter_map(|(fi, _)| Some((fi, enc_first[fi]?, dec_first[fi]?)))
        .collect();
    both.sort_by_key(|&(_, e, _)| e);
    let mut max_dec = 0usize;
    for &(fi, _, d) in &both {
        if d < max_dec {
            out.push(Finding {
                file: rel_path.to_string(),
                line: covered[fi].line,
                rule: "S02",
                message: format!(
                    "snapshot field `{}` of `{}` is decoded out of encode order — `{}` must \
                     read fields in the order `{}` writes them",
                    covered[fi].name, strukt.name, dec.name, enc.name
                ),
            });
        }
        max_dec = max_dec.max(d);
    }
}

/// Integer primitive → (bit width, signed). `usize`/`isize` are treated
/// as 64-bit: every supported target is 64-bit and the snapshot wire
/// format already assumes it.
fn int_prim(ty: &str) -> Option<(u16, bool)> {
    Some(match ty {
        "u8" => (8, false),
        "u16" => (16, false),
        "u32" => (32, false),
        "u64" => (64, false),
        "u128" => (128, false),
        "usize" => (64, false),
        "i8" => (8, true),
        "i16" => (16, true),
        "i32" => (32, true),
        "i64" => (64, true),
        "i128" => (128, true),
        "isize" => (64, true),
        _ => return None,
    })
}

fn float_prim(ty: &str) -> Option<u16> {
    match ty {
        "f32" => Some(32),
        "f64" => Some(64),
        _ => None,
    }
}

/// Why `src as dst` can lose information, or `None` when it cannot.
fn cast_loss(src: &str, dst: &str) -> Option<&'static str> {
    if let (Some((sb, ss)), Some((db, ds))) = (int_prim(src), int_prim(dst)) {
        if db < sb {
            return Some("truncates high bits");
        }
        if ss && !ds {
            return Some("negative values wrap");
        }
        if !ss && ds && db <= sb {
            return Some("large values change sign");
        }
        return None;
    }
    if float_prim(src).is_some() && int_prim(dst).is_some() {
        return Some("truncates the fraction and saturates");
    }
    if let (Some(sb), Some(db)) = (float_prim(src), float_prim(dst)) {
        if db < sb {
            return Some("loses precision");
        }
    }
    // int → float is deliberate policy: rounding above 2^53 is a
    // metrics concern, not a truncation, and flagging it would bury the
    // report in reporting-path noise.
    None
}

/// The primitive named by a type annotation like `u64` (a single
/// token, ignoring a leading `&`).
fn prim_head(ty: &[String]) -> Option<&str> {
    let ty = if ty.first().is_some_and(|t| t == "&") { &ty[1..] } else { ty };
    match ty {
        [p] if int_prim(p).is_some() || float_prim(p).is_some() => Some(p),
        _ => None,
    }
}

/// The element primitive of `Vec<prim>` or `[prim; N]`.
fn elem_prim(ty: &[String]) -> Option<&str> {
    match ty {
        [v, lt, p, ..] if v == "Vec" && lt == "<" => {
            (int_prim(p).is_some() || float_prim(p).is_some()).then_some(p.as_str())
        }
        [lb, p, semi, ..] if lb == "[" && semi == ";" => {
            (int_prim(p).is_some() || float_prim(p).is_some()).then_some(p.as_str())
        }
        _ => None,
    }
}

/// The numeric suffix of a literal token (`42u128` → `u128`).
fn literal_suffix(text: &str) -> Option<&'static str> {
    const SUFFIXES: &[&str] = &[
        "u128", "usize", "u16", "u32", "u64", "u8", "i128", "isize", "i16", "i32", "i64", "i8",
        "f32", "f64",
    ];
    SUFFIXES.iter().find(|s| text.ends_with(**s)).copied()
}

/// One locally-visible typed binding inside a fn body: a parameter or a
/// `let <name>: <ty>` statement, at token index `at`.
struct LocalBinding {
    at: usize,
    name: String,
    ty: Vec<String>,
}

/// D05: flag `as` casts whose source type is locally evident and whose
/// (source, target) pair can truncate or change signedness. Source
/// types come from literal suffixes, `let name: ty` bindings, fn
/// parameters, `self.field` / `self.field[...]` against same-file
/// struct definitions, `.len()`/`.capacity()` (→ `usize`), and `as T1
/// as T2` chains. Anything the file does not annotate is skipped — a
/// syntactic pass must under-approximate, not guess (DESIGN.md §10).
fn d05_lossy_casts(
    rel_path: &str,
    tree: &crate::itemtree::ItemTree,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    // Map each fn to its enclosing impl's self-type fields (if any).
    let mut fn_self_fields: Vec<Option<&Vec<crate::itemtree::Field>>> = vec![None; tree.fns.len()];
    for imp in &tree.impls {
        let fields = tree
            .struct_named(&imp.type_name)
            .and_then(|s| s.fields.as_ref());
        for &fi in &imp.fns {
            fn_self_fields[fi] = fields;
        }
    }
    for (fi, f) in tree.fns.iter().enumerate() {
        let Some((lo, hi)) = f.body else { continue };
        let hi = hi.min(code.len());
        // Locally-visible typed bindings: params first, then `let`s.
        let mut env: Vec<LocalBinding> = f
            .params
            .iter()
            .map(|(name, ty)| LocalBinding { at: lo, name: name.clone(), ty: ty.clone() })
            .collect();
        let mut k = lo;
        while k < hi {
            if is_ident(code[k], "let") {
                let mut j = k + 1;
                if j < hi && is_ident(code[j], "mut") {
                    j += 1;
                }
                if j + 1 < hi && code[j].kind == TokenKind::Ident && is_punct(code[j + 1], ':') {
                    let ty_end = scan_past_type(code, j + 2, hi);
                    env.push(LocalBinding {
                        at: j,
                        name: code[j].text.clone(),
                        ty: code[j + 2..ty_end].iter().map(|t| t.text.clone()).collect(),
                    });
                }
            }
            k += 1;
        }
        for k in lo..hi {
            if !is_ident(code[k], "as") || in_test(code[k].line) {
                continue;
            }
            let Some(dst) = code.get(k + 1).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            if int_prim(&dst.text).is_none() && float_prim(&dst.text).is_none() {
                continue;
            }
            let Some(src) = resolve_cast_source(code, lo, k, &env, fn_self_fields[fi]) else {
                continue;
            };
            if let Some(why) = cast_loss(&src, &dst.text) {
                out.push(Finding {
                    file: rel_path.to_string(),
                    line: code[k].line,
                    rule: "D05",
                    message: format!(
                        "lossy cast `{src} as {}` — {why}; use `try_into` or widen the target",
                        dst.text
                    ),
                });
            }
        }
    }
}

/// Advances past a type annotation starting at `j`: stops at a depth-0
/// `=`, `;`, or `)` (tracking `<>`, `()`, `[]`).
fn scan_past_type(code: &[&Token], j: usize, hi: usize) -> usize {
    let mut k = j;
    let mut angle = 0usize;
    let mut paren = 0usize;
    let mut bracket = 0usize;
    while k < hi {
        let t = code[k];
        if angle == 0 && paren == 0 && bracket == 0 {
            if is_punct(t, '=') || is_punct(t, ';') {
                return k;
            }
            if is_punct(t, ')') {
                return k;
            }
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle = angle.saturating_sub(1);
        } else if is_punct(t, '(') {
            paren += 1;
        } else if is_punct(t, ')') {
            paren = paren.saturating_sub(1);
        } else if is_punct(t, '[') {
            bracket += 1;
        } else if is_punct(t, ']') {
            bracket = bracket.saturating_sub(1);
        }
        k += 1;
    }
    hi
}

/// The matching opener index for the closer at `b`, scanning back no
/// further than `lo`.
fn match_back(code: &[&Token], lo: usize, b: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = b;
    loop {
        if is_punct(code[k], close) {
            depth += 1;
        } else if is_punct(code[k], open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        if k == lo {
            return None;
        }
        k -= 1;
    }
}

/// Resolves the source type of the cast whose `as` sits at `as_idx`,
/// looking only at the token(s) immediately before it. Returns `None`
/// when the type is not locally evident.
fn resolve_cast_source(
    code: &[&Token],
    lo: usize,
    as_idx: usize,
    env: &[LocalBinding],
    self_fields: Option<&Vec<crate::itemtree::Field>>,
) -> Option<String> {
    if as_idx == 0 || as_idx <= lo {
        return None;
    }
    let b = as_idx - 1;
    let t = code[b];
    // `42u128 as u64`
    if t.kind == TokenKind::Num {
        return literal_suffix(&t.text).map(str::to_string);
    }
    if t.kind == TokenKind::Ident {
        // `x as u128 as u64` — the chained source is the previous target.
        if b > lo && is_ident(code[b - 1], "as")
            && (int_prim(&t.text).is_some() || float_prim(&t.text).is_some())
        {
            return Some(t.text.clone());
        }
        // `self.field as _`
        if b >= 2 && is_punct(code[b - 1], '.') && is_ident(code[b - 2], "self") {
            let f = self_fields?.iter().find(|f| f.name == t.text)?;
            return prim_head(&f.ty).map(str::to_string);
        }
        // An annotated local or parameter: nearest binding before use.
        let bind = env
            .iter()
            .filter(|e| e.name == t.text && e.at <= b)
            .max_by_key(|e| e.at)?;
        return prim_head(&bind.ty).map(str::to_string);
    }
    if is_punct(t, ')') {
        let open = match_back(code, lo, b, '(', ')')?;
        // `x.len() as _` / `x.capacity() as _`
        if open >= 2
            && open + 1 == b
            && code[open - 1].kind == TokenKind::Ident
            && (code[open - 1].text == "len" || code[open - 1].text == "capacity")
            && is_punct(code[open - 2], '.')
        {
            return Some("usize".to_string());
        }
        // `(x) as _` — a grouping paren (no call head) around one token.
        let call_head = open > lo
            && (code[open - 1].kind == TokenKind::Ident
                || is_punct(code[open - 1], ')')
                || is_punct(code[open - 1], ']'));
        if !call_head && open + 2 == b {
            return resolve_cast_source(code, lo, open + 2, env, self_fields);
        }
        return None;
    }
    if is_punct(t, ']') {
        let open = match_back(code, lo, b, '[', ']')?;
        if open == lo || open == 0 {
            return None;
        }
        let head = open - 1;
        if code[head].kind != TokenKind::Ident {
            return None;
        }
        // `self.field[i] as _`
        if head >= 2 && is_punct(code[head - 1], '.') && is_ident(code[head - 2], "self") {
            let f = self_fields?.iter().find(|f| f.name == code[head].text)?;
            return elem_prim(&f.ty).map(str::to_string);
        }
        // `local[i] as _`
        let bind = env
            .iter()
            .filter(|e| e.name == code[head].text && e.at <= head)
            .max_by_key(|e| e.at)?;
        return elem_prim(&bind.ty).map(str::to_string);
    }
    None
}

/// P01: in the panic-audited crates, every `.unwrap()`, `.expect(` and
/// `panic!` in lib code needs a `// PANIC:` comment on its line or
/// within the three lines above — the justification that this path is
/// unreachable or that aborting beats corrupting resumable state.
fn p01_panic_paths(
    rel_path: &str,
    code: &[&Token],
    comments: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let justified = |line: u32| {
        let lo = line.saturating_sub(3);
        comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains("PANIC:"))
    };
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        let call = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && is_punct(code[i - 1], '.')
            && code.get(i + 1).is_some_and(|n| is_punct(n, '('));
        let mac = t.text == "panic" && code.get(i + 1).is_some_and(|n| is_punct(n, '!'));
        if (call || mac) && !justified(t.line) {
            let what = if mac {
                "panic!".to_string()
            } else {
                format!(".{}()", t.text)
            };
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "P01",
                message: format!(
                    "`{what}` without a `// PANIC:` justification — document why this cannot \
                     fail (or return an error instead)"
                ),
            });
        }
    }
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Line spans (inclusive) of `#[cfg(test)] mod <name> { ... }` bodies.
fn find_test_regions(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i + 6 < code.len() {
        let attr = is_punct(code[i], '#')
            && is_punct(code[i + 1], '[')
            && is_ident(code[i + 2], "cfg")
            && is_punct(code[i + 3], '(')
            && is_ident(code[i + 4], "test")
            && is_punct(code[i + 5], ')')
            && is_punct(code[i + 6], ']');
        if !attr {
            i += 1;
            continue;
        }
        // Skip any further attributes between #[cfg(test)] and the item.
        let mut j = i + 7;
        while j + 1 < code.len() && is_punct(code[j], '#') && is_punct(code[j + 1], '[') {
            let mut depth = 0usize;
            while j < code.len() {
                if is_punct(code[j], '[') {
                    depth += 1;
                } else if is_punct(code[j], ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Only `mod` bodies form a region; other cfg(test) items are rare
        // and stay subject to the rules.
        if j < code.len() && is_ident(code[j], "mod") {
            // Find the opening brace, then match it.
            while j < code.len() && !is_punct(code[j], '{') {
                j += 1;
            }
            if j < code.len() {
                let start_line = code[j].line;
                let mut depth = 0usize;
                while j < code.len() {
                    if is_punct(code[j], '{') {
                        depth += 1;
                    } else if is_punct(code[j], '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end_line = code[j.min(code.len() - 1)].line;
                regions.push((start_line, end_line));
            }
        }
        i = j.max(i + 7);
    }
    regions
}

/// Parses `lint:allow` pragmas out of the comment stream. A comment is
/// a pragma only when its text *starts* with `lint:allow` (after the
/// comment markers) — prose that merely mentions the syntax is inert.
/// Malformed pragmas (missing reason, unknown rule id) become A01
/// findings and do not suppress anything.
fn parse_pragmas(rel_path: &str, comments: &[&Token]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let stripped = c
            .text
            .trim_start_matches(['/', '!', '*', ' ', '\t']);
        if !stripped.starts_with("lint:allow") {
            continue;
        }
        let rest = &stripped["lint:allow".len()..];
        let Some(open) = rest.find('(') else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message: "malformed lint:allow pragma: expected `lint:allow(<rule>) -- <reason>`"
                    .to_string(),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message: "malformed lint:allow pragma: missing `)`".to_string(),
            });
            continue;
        };
        let ids: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let mut ok = !ids.is_empty();
        for id in &ids {
            if !known_rule(id) {
                ok = false;
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: c.line,
                    rule: "A01",
                    message: format!("unknown rule id `{id}` in lint:allow pragma"),
                });
            }
        }
        let after = rest[close + 1..].trim_start();
        let reason = after
            .strip_prefix("--")
            .map(|r| r.trim().trim_end_matches("*/").trim())
            .unwrap_or("");
        if reason.is_empty() {
            ok = false;
            findings.push(Finding {
                file: rel_path.to_string(),
                line: c.line,
                rule: "A01",
                message:
                    "lint:allow pragma requires a reason: `// lint:allow(<rule>) -- <reason>`"
                        .to_string(),
            });
        }
        if ok {
            pragmas.push(Pragma {
                line: c.line,
                rules: ids,
                reason: reason.to_string(),
            });
        }
    }
    (pragmas, findings)
}

/// True when the identifier at `i` sits inside a `use` statement (an
/// import is not a use site; flagging it would double-report).
fn in_use_statement(code: &[&Token], i: usize) -> bool {
    let lo = i.saturating_sub(40);
    for j in (lo..i).rev() {
        if is_punct(code[j], ';') {
            return false;
        }
        if is_ident(code[j], "use") {
            return true;
        }
    }
    false
}

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

fn d01_hash_containers(
    rel_path: &str,
    scope: &FileScope,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    // Pass A: every non-import mention of a hash container is a finding,
    // and named bindings are registered for the iteration pass.
    let mut bound: Vec<String> = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        if in_use_statement(code, i) || in_test(t.line) {
            continue;
        }
        out.push(Finding {
            file: rel_path.to_string(),
            line: t.line,
            rule: "D01",
            message: format!(
                "`{}` in deterministic crate `{}` — iteration order is nondeterministic; \
                 use BTreeMap/BTreeSet, or `lint:allow(D01)` with a reason if lookup-only",
                t.text, scope.crate_name
            ),
        });
        // `name: HashMap<...>` or `name = HashMap::new()` (skipping `&`,
        // `mut` between) registers `name`.
        let mut j = i;
        while j > 0 && (is_punct(code[j - 1], '&') || is_ident(code[j - 1], "mut")) {
            j -= 1;
        }
        if j >= 2
            && (is_punct(code[j - 1], ':') || is_punct(code[j - 1], '='))
            && code[j - 2].kind == TokenKind::Ident
        {
            let name = code[j - 2].text.clone();
            if !bound.contains(&name) {
                bound.push(name);
            }
        }
    }
    // Pass B: iteration over a registered binding.
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !bound.contains(&t.text) || in_test(t.line) {
            continue;
        }
        // `name.keys()` / `.values()` / `.drain()` / ...
        if i + 3 < code.len()
            && is_punct(code[i + 1], '.')
            && code[i + 2].kind == TokenKind::Ident
            && ITER_METHODS.contains(&code[i + 2].text.as_str())
            && is_punct(code[i + 3], '(')
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: code[i + 2].line,
                rule: "D01",
                message: format!(
                    "iteration `.{}()` over hash container `{}` — order is nondeterministic",
                    code[i + 2].text, t.text
                ),
            });
        }
        // `for x in &name {` / `for x in name {`
        let mut j = i;
        while j > 0 && (is_punct(code[j - 1], '&') || is_ident(code[j - 1], "mut")) {
            j -= 1;
        }
        if j > 0
            && is_ident(code[j - 1], "in")
            && i + 1 < code.len()
            && is_punct(code[i + 1], '{')
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D01",
                message: format!(
                    "`for ... in` over hash container `{}` — order is nondeterministic",
                    t.text
                ),
            });
        }
    }
}

fn d02_wall_clock(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        if t.text == "SystemTime" && !in_use_statement(code, i) {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D02",
                message: "wall clock `SystemTime` in deterministic code — use virtual `SimTime`"
                    .to_string(),
            });
        }
        if t.text == "Instant"
            && i + 3 < code.len()
            && is_punct(code[i + 1], ':')
            && is_punct(code[i + 2], ':')
            && is_ident(code[i + 3], "now")
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D02",
                message: "wall clock `Instant::now` in deterministic code — use virtual `SimTime`"
                    .to_string(),
            });
        }
    }
}

fn d03_entropy(
    rel_path: &str,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || in_test(t.line) {
            continue;
        }
        if t.text == "thread_rng" || t.text == "from_entropy" {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D03",
                message: format!(
                    "entropy randomness `{}` — seed a `SimRng` instead",
                    t.text
                ),
            });
        }
        if t.text == "rand"
            && i + 3 < code.len()
            && is_punct(code[i + 1], ':')
            && is_punct(code[i + 2], ':')
            && is_ident(code[i + 3], "random")
        {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D03",
                message: "entropy randomness `rand::random` — seed a `SimRng` instead".to_string(),
            });
        }
    }
}

fn d04_f32(
    rel_path: &str,
    scope: &FileScope,
    code: &[&Token],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    for t in code {
        if in_test(t.line) {
            continue;
        }
        let hit = (t.kind == TokenKind::Ident && t.text == "f32")
            || (t.kind == TokenKind::Num && t.text.ends_with("f32"));
        if hit {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "D04",
                message: format!(
                    "`f32` in `{}` hot path — fingerprints accumulate in f64; \
                     mixed-width accumulation reorders",
                    scope.crate_name
                ),
            });
        }
    }
}

fn u01_unsafe_safety(
    rel_path: &str,
    code: &[&Token],
    comments: &[&Token],
    out: &mut Vec<Finding>,
) {
    for t in code {
        if !is_ident(t, "unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let justified = comments
            .iter()
            .any(|c| c.line >= lo && c.line <= t.line && c.text.contains("SAFETY:"));
        if !justified {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "U01",
                message: "`unsafe` without a `// SAFETY:` comment on or above it".to_string(),
            });
        }
    }
}

fn h01_allow_justified(
    rel_path: &str,
    code: &[&Token],
    comments: &[&Token],
    out: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        // `#[allow(` or `#![allow(`.
        let attr_head = is_ident(t, "allow")
            && i >= 2
            && is_punct(code[i - 1], '[')
            && (is_punct(code[i - 2], '#')
                || (is_punct(code[i - 2], '!') && i >= 3 && is_punct(code[i - 3], '#')))
            && i + 1 < code.len()
            && is_punct(code[i + 1], '(');
        if !attr_head {
            continue;
        }
        // Find the attribute's closing `]` (bounded scan).
        let mut close_line = t.line;
        let mut reason_arg = false;
        for tok in code.iter().skip(i).take(50) {
            if is_ident(tok, "reason") {
                reason_arg = true;
            }
            if is_punct(tok, ']') {
                close_line = tok.line;
                break;
            }
        }
        let start_line = t.line.saturating_sub(1);
        let justified = reason_arg
            || comments
                .iter()
                .any(|c| c.line >= start_line && c.line <= close_line);
        if !justified {
            out.push(Finding {
                file: rel_path.to_string(),
                line: t.line,
                rule: "H01",
                message: "`#[allow(...)]` without a justification — add a trailing `// why` \
                          comment (or one on the line above)"
                    .to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> FileLint {
        lint_tokens(path, &lex(src))
    }

    fn rules_of(l: &FileLint) -> Vec<&'static str> {
        l.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d01_flags_declaration_and_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f() {\n\
                   let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   for (k, v) in &m {}\n\
                   let _ = m.keys();\n\
                   }\n";
        let l = run("crates/sim/src/x.rs", src);
        // Two type mentions on line 3, the for-loop, and `.keys()`.
        assert_eq!(rules_of(&l), vec!["D01", "D01", "D01", "D01"]);
        assert_eq!(l.findings[0].line, 3);
        assert_eq!(l.findings[2].line, 4);
        assert_eq!(l.findings[3].line, 5);
    }

    #[test]
    fn d01_ignores_use_lines_tests_and_other_crates() {
        let src = "use std::collections::{HashMap, HashSet};\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   }\n";
        assert!(run("crates/sim/src/x.rs", src).findings.is_empty());
        let decl = "fn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        assert!(run("crates/bench/src/x.rs", decl).findings.is_empty());
        assert!(run("crates/sim/tests/x.rs", decl).findings.is_empty());
        assert!(run("crates/sim/examples/x.rs", decl).findings.is_empty());
    }

    #[test]
    fn d01_suppression_needs_matching_rule_and_line() {
        let src = "// lint:allow(D01) -- lookup-only\n\
                   fn f() { let m: HashMap<u8, u8> = HashMap::new(); }\n\
                   fn g() { let n: HashSet<u8> = HashSet::new(); }\n";
        let l = run("crates/core/src/x.rs", src);
        assert_eq!(l.suppressed.len(), 2); // both mentions on line 2
        assert_eq!(l.suppressed[0].reason, "lookup-only");
        assert_eq!(rules_of(&l), vec!["D01", "D01"]); // line 3 not covered
        assert_eq!(l.findings[0].line, 3);
    }

    #[test]
    fn d02_wall_clock_scoped() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let l = run("crates/controller/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["D02", "D02"]);
        assert!(run("crates/bench/src/x.rs", src).findings.is_empty());
        assert!(run("crates/sim/examples/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d03_entropy_everywhere_but_tests() {
        let src = "fn f() { let r = thread_rng(); let x: u8 = rand::random(); }";
        assert_eq!(
            rules_of(&run("crates/bench/src/x.rs", src)),
            vec!["D03", "D03"]
        );
        assert_eq!(rules_of(&run("examples/x.rs", src)), vec!["D03", "D03"]);
        assert!(run("tests/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d04_f32_including_literal_suffix() {
        let src = "fn f(x: f32) -> f64 { (x as f64) + 1.5f32 as f64 }";
        let l = run("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["D04", "D04"]);
        assert!(run("crates/machine/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn u01_safety_comment_window() {
        let bad = "fn f() { unsafe { core(); } }";
        let l = run("crates/sim/src/x.rs", bad);
        assert_eq!(rules_of(&l), vec!["U01"]);
        let good = "fn f() {\n// SAFETY: ptr is valid for the call\nunsafe { core(); } }";
        assert!(run("crates/sim/src/x.rs", good).findings.is_empty());
    }

    #[test]
    fn h01_allow_needs_justification() {
        let bad = "#[allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_of(&run("crates/sim/src/x.rs", bad)), vec!["H01"]);
        let trailing = "#[allow(dead_code)] // kept for the ffi table\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", trailing).findings.is_empty());
        let above = "// scaffolding for the next PR\n#[allow(dead_code)]\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", above).findings.is_empty());
        let reason = "#[allow(dead_code, reason = \"scaffolding\")]\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", reason).findings.is_empty());
        let inner = "#![allow(dead_code)]\nfn f() {}";
        assert_eq!(rules_of(&run("crates/sim/src/x.rs", inner)), vec!["H01"]);
    }

    #[test]
    fn a01_pragma_requires_reason_and_known_rule() {
        let src = "// lint:allow(D01)\n// lint:allow(Z99) -- whatever\nfn f() {}";
        let l = run("crates/sim/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["A01", "A01"]);
        assert!(l.findings[0].message.contains("requires a reason"));
        assert!(l.findings[1].message.contains("unknown rule id `Z99`"));
    }

    #[test]
    fn prose_mentioning_the_pragma_syntax_is_inert() {
        // Doc comments *about* the pragma (like this engine's own docs)
        // must not parse as pragma attempts.
        let src = "//! The escape hatch is `// lint:allow(D01) -- why`.\n\
                   // see lint:allow(...) in DESIGN.md\nfn f() {}";
        assert!(run("crates/sim/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn malformed_pragma_does_not_suppress() {
        let src = "// lint:allow(D01)\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let l = run("crates/sim/src/x.rs", src);
        // A01 for the pragma plus the two unsuppressed D01s.
        assert_eq!(rules_of(&l), vec!["A01", "D01", "D01"]);
        assert!(l.suppressed.is_empty());
    }

    #[test]
    fn findings_are_sorted_by_line_then_rule() {
        let src = "fn f() { let t = Instant::now(); }\n\
                   fn g() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let l = run("crates/sim/src/x.rs", src);
        let lines: Vec<u32> = l.findings.iter().map(|f| f.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn s01_flags_hash_and_pointer_fields_in_snapshot_modules() {
        // `snapshot.rs` is tagged by name; the `snapshot` crate is not in
        // DETERMINISTIC_CRATES, so the findings here are purely S01.
        let src = "pub struct State {\n\
                   \x20   pub index: HashMap<u64, u64>,\n\
                   \x20   pub owner: *const u8,\n\
                   \x20   pub order: BTreeMap<u64, u64>,\n\
                   }\n";
        let l = run("crates/snapshot/src/snapshot.rs", src);
        assert_eq!(
            l.findings.iter().map(Finding::render).collect::<Vec<_>>(),
            vec![
                "crates/snapshot/src/snapshot.rs:2: S01 `HashMap` field in snapshot state type \
                 `State` — hash containers have no canonical encode order; use \
                 BTreeMap/BTreeSet"
                    .to_string(),
                "crates/snapshot/src/snapshot.rs:3: S01 raw pointer field in snapshot state type \
                 `State` — addresses do not survive encode/decode; key by stable index or id"
                    .to_string(),
            ],
        );
    }

    #[test]
    fn s01_marker_comment_tags_any_lib_module() {
        let src = "// lint:snapshot-state\n\
                   pub enum Slot { Empty, Full(HashSet<u8>) }\n\
                   fn local() { let m: *mut u8 = std::ptr::null_mut(); }\n";
        let l = run("crates/snapshot/src/queue.rs", src);
        // Only the enum body is checked: the raw pointer inside `local`
        // is transient, not snapshot state.
        assert_eq!(rules_of(&l), vec!["S01"]);
        assert_eq!(l.findings[0].line, 2);
        // Without the marker (and not named snapshot.rs) the same source
        // is out of S01's scope.
        let untagged = "pub enum Slot { Empty, Full(HashSet<u8>) }\n";
        assert!(run("crates/snapshot/src/queue.rs", untagged).findings.is_empty());
    }

    #[test]
    fn s01_clean_snapshot_state_and_tests_pass() {
        let src = "pub struct State { pub order: BTreeMap<u64, u64>, pub ids: Vec<u64> }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   struct Probe { m: HashMap<u8, u8> }\n\
                   }\n";
        assert!(run("crates/snapshot/src/snapshot.rs", src).findings.is_empty());
    }

    #[test]
    fn s01_suppressible_like_any_rule() {
        let src = "// lint:allow(S01) -- legacy layout, encode sorts explicitly\n\
                   pub struct State { pub index: HashMap<u64, u64> }\n";
        let l = run("crates/snapshot/src/snapshot.rs", src);
        assert!(l.findings.is_empty());
        assert_eq!(l.suppressed.len(), 1);
        assert_eq!(l.suppressed[0].finding.rule, "S01");
    }

    // ---- S02: snapshot field coverage -------------------------------

    const S02_OK: &str = "\
pub struct P { pub a: u64, pub b: u32 }\n\
impl Snapshot for P {\n\
    fn encode(&self, w: &mut Writer) { w.u64(self.a); w.u32(self.b); }\n\
    fn decode(r: &mut Reader) -> Result<Self, E> {\n\
        let a = r.u64()?;\n\
        let b = r.u32()?;\n\
        Ok(Self { a, b })\n\
    }\n\
}\n";

    #[test]
    fn s02_clean_pair_passes() {
        assert!(run("crates/cluster/src/snapshot.rs", S02_OK).findings.is_empty());
    }

    #[test]
    fn s02_missing_encode_field_is_found_at_field_line() {
        let src = S02_OK.replace("w.u32(self.b); ", "");
        let l = run("crates/cluster/src/snapshot.rs", &src);
        assert_eq!(
            l.findings.iter().map(Finding::render).collect::<Vec<_>>(),
            vec![
                "crates/cluster/src/snapshot.rs:1: S02 snapshot field `b` of `P` is never \
                 written in `encode` — resume would lose it; encode it or `lint:allow(S02)` \
                 with a reason if derived"
                    .to_string()
            ]
        );
    }

    #[test]
    fn s02_missing_decode_field_is_found() {
        let src = S02_OK
            .replace("let b = r.u32()?;\n", "")
            .replace("Ok(Self { a, b })", "Ok(Self { a, b: 0 })");
        // `b: 0` still mentions `b`, so drop it entirely:
        let src = src.replace("Ok(Self { a, b: 0 })", "Ok(Self { a, ..Default::default() })");
        let l = run("crates/cluster/src/snapshot.rs", &src);
        assert_eq!(rules_of(&l), vec!["S02"]);
        assert!(l.findings[0].message.contains("`b` of `P` is never read in `decode`"));
    }

    #[test]
    fn s02_reordered_decode_is_found() {
        let src = S02_OK
            .replace(
                "let a = r.u64()?;\nlet b = r.u32()?;",
                "let b = r.u32()?;\nlet a = r.u64()?;",
            );
        let l = run("crates/cluster/src/snapshot.rs", &src);
        assert_eq!(rules_of(&l), vec!["S02"]);
        assert!(l.findings[0].message.contains("decoded out of encode order"));
        assert_eq!(l.findings[0].line, 1); // anchored at the field declaration
    }

    #[test]
    fn s02_extra_encode_field_is_found() {
        let src = S02_OK.replace("w.u32(self.b);", "w.u32(self.b); w.u8(self.ghost);");
        let l = run("crates/cluster/src/snapshot.rs", &src);
        assert_eq!(rules_of(&l), vec!["S02"]);
        assert!(l.findings[0].message.contains("`self.ghost`"));
        assert_eq!(l.findings[0].line, 3); // anchored at the stray write
    }

    #[test]
    fn s02_inherent_encode_decode_pair_is_checked() {
        let src = "\
pub struct T { pub x: u64, pub y: u64 }\n\
impl T {\n\
    pub fn encode_node(&self, w: &mut W) { w.u64(self.x); }\n\
    pub fn decode_node(r: &mut R) -> T { let x = r.u64(); T { x, y: 0 } }\n\
}\n";
        let l = run("crates/core/src/runtime.rs", src);
        // `y` missing from encode; mentioned in decode (`y: 0`).
        assert_eq!(rules_of(&l), vec!["S02"]);
        assert!(l.findings[0].message.contains("`y` of `T` is never written in `encode_node`"));
    }

    #[test]
    fn s02_field_pragma_suppresses_derived_fields() {
        let src = "\
pub struct T {\n\
    pub x: u64,\n\
    // lint:allow(S02) -- derived: recomputed from x on decode\n\
    pub cache: u64,\n\
}\n\
impl Snapshot for T {\n\
    fn encode(&self, w: &mut W) { w.u64(self.x); }\n\
    fn decode(r: &mut R) -> Result<Self, E> { let x = r.u64()?; Ok(Self { x, cache: 0 }) }\n\
}\n";
        let l = run("crates/core/src/state.rs", src);
        assert!(l.findings.is_empty(), "unexpected: {:?}", l.findings);
        assert_eq!(l.suppressed.len(), 1);
        assert_eq!(l.suppressed[0].finding.rule, "S02");
    }

    #[test]
    fn s02_cfg_gated_fields_and_methods_are_exempt() {
        let src = "\
pub struct T {\n\
    pub x: u64,\n\
    #[cfg(feature = \"extra\")]\n\
    pub opt: u64,\n\
}\n\
impl Snapshot for T {\n\
    fn encode(&self, w: &mut W) { w.u64(self.x); w.u64(self.derived_sum()); }\n\
    fn decode(r: &mut R) -> Result<Self, E> { let x = r.u64()?; Ok(Self { x }) }\n\
}\n";
        assert!(run("crates/core/src/state.rs", src).findings.is_empty());
    }

    #[test]
    fn s02_only_lib_files_are_checked() {
        let bad = S02_OK.replace("w.u32(self.b); ", "");
        assert!(run("crates/cluster/tests/snap.rs", &bad).findings.is_empty());
        assert!(run("crates/cluster/examples/snap.rs", &bad).findings.is_empty());
    }

    // ---- D05: lossy casts -------------------------------------------

    #[test]
    fn d05_flags_annotated_lossy_casts() {
        let src = "\
fn f(x: u128, y: i64) -> u64 {\n\
    let a: i128 = 5;\n\
    let _ = a as i64;\n\
    let _ = y as u64;\n\
    (x as u64) + 2u128 as u64\n\
}\n";
        let l = run("crates/core/src/x.rs", src);
        let lines: Vec<(u32, &str)> = l.findings.iter().map(|f| (f.line, f.rule)).collect();
        assert_eq!(lines, vec![(3, "D05"), (4, "D05"), (5, "D05"), (5, "D05")]);
        assert!(l.findings[0].message.contains("lossy cast `i128 as i64`"));
        assert!(l.findings[1].message.contains("negative values wrap"));
    }

    #[test]
    fn d05_widening_and_unknown_sources_pass() {
        let src = "\
fn f(x: u32, v: Vec<u64>) -> u128 {\n\
    let a = x as u64;\n\
    let b = helper() as u64;\n\
    let c = v[0] as u128;\n\
    (a as u128) + b as u128 + c\n\
}\n";
        assert!(run("crates/core/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn d05_len_and_field_sources() {
        let src = "\
struct S { counts: Vec<u128>, total: u64 }\n\
impl S {\n\
    fn f(&self, v: Vec<u8>) -> u32 {\n\
        let a = v.len() as u32;\n\
        let b = self.counts[0] as u64;\n\
        let c = self.total as u32;\n\
        a + b as u32 + c\n\
    }\n\
}\n";
        let l = run("crates/sim/src/x.rs", src);
        let lines: Vec<u32> = l.findings.iter().map(|f| f.line).collect();
        // len() → usize as u32; counts elem u128 as u64; total u64 as u32;
        // b (annotated via let? no — b is unannotated) … only the three.
        assert_eq!(lines, vec![4, 5, 6]);
        assert!(l.findings.iter().all(|f| f.rule == "D05"));
    }

    #[test]
    fn d05_scope_is_deterministic_crates_plus_snapshot() {
        let src = "fn f(x: u128) -> u64 { x as u64 }";
        assert_eq!(rules_of(&run("crates/snapshot/src/lib.rs", src)), vec!["D05"]);
        assert!(run("crates/bench/src/x.rs", src).findings.is_empty());
        assert!(run("crates/core/tests/x.rs", src).findings.is_empty());
    }

    // ---- P01: panic paths -------------------------------------------

    #[test]
    fn p01_flags_unjustified_panics_in_audited_crates() {
        let src = "\
fn f(o: Option<u8>) -> u8 {\n\
    let a = o.unwrap();\n\
    let b = o.expect(\"present\");\n\
    if a > b { panic!(\"impossible\"); }\n\
    a\n\
}\n";
        let l = run("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&l), vec!["P01", "P01", "P01"]);
        assert!(l.findings[0].message.contains("`.unwrap()`"));
        assert!(l.findings[2].message.contains("`panic!`"));
        // Outside the audited crates the same code is fine.
        assert!(run("crates/sim/src/x.rs", src).findings.is_empty());
        assert!(run("crates/core/tests/x.rs", src).findings.is_empty());
    }

    #[test]
    fn p01_panic_comment_window_justifies() {
        let src = "\
fn f(o: Option<u8>) -> u8 {\n\
    // PANIC: o is Some by construction — caller checked is_some()\n\
    o.unwrap()\n\
}\n\
fn g(o: Option<u8>) -> u8 {\n\
    o.unwrap() // PANIC: infallible, o seeded above\n\
}\n";
        assert!(run("crates/cluster/src/x.rs", src).findings.is_empty());
    }

    #[test]
    fn p01_cfg_test_modules_are_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn t() { None::<u8>.unwrap(); panic!(\"boom\"); }\n\
}\n";
        assert!(run("crates/snapshot/src/lib.rs", src).findings.is_empty());
    }
}
