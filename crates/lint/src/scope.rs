//! Path → policy-scope classification.
//!
//! Rules apply per *scope*, derived purely from a file's workspace-
//! relative path: which crate it belongs to and whether it is library
//! code, an example, or test/bench code. `#[cfg(test)]` modules inside
//! library files are handled separately by the rule engine (they are a
//! token-level, not a path-level, property).

/// What kind of target a file belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source (`src/`).
    Lib,
    /// An example (`examples/` at the root or under a crate).
    Example,
    /// Integration tests or benches (`tests/`, `benches/`).
    Test,
}

/// The policy scope of one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileScope {
    /// Short crate name (`"sim"`, `"bench"`, ...). The root facade and
    /// its `tests/` / `examples/` classify as `"rhythm"`.
    pub crate_name: String,
    /// Library / example / test.
    pub kind: FileKind,
}

impl FileScope {
    /// Classifies a workspace-relative path (forward slashes).
    pub fn classify(rel_path: &str) -> FileScope {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("rhythm")
            .to_string();
        let kind = if rel_path.contains("/examples/") || rel_path.starts_with("examples/") {
            FileKind::Example
        } else if rel_path.contains("/tests/")
            || rel_path.starts_with("tests/")
            || rel_path.contains("/benches/")
        {
            FileKind::Test
        } else {
            FileKind::Lib
        };
        FileScope { crate_name, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_crate_lib() {
        let s = FileScope::classify("crates/sim/src/calendar.rs");
        assert_eq!(s.crate_name, "sim");
        assert_eq!(s.kind, FileKind::Lib);
    }

    #[test]
    fn classifies_crate_example_and_tests() {
        assert_eq!(
            FileScope::classify("crates/sim/examples/calbench.rs").kind,
            FileKind::Example
        );
        assert_eq!(
            FileScope::classify("crates/lint/tests/rules.rs").kind,
            FileKind::Test
        );
        assert_eq!(
            FileScope::classify("crates/bench/benches/pipeline.rs").kind,
            FileKind::Test
        );
    }

    #[test]
    fn classifies_root_targets_as_facade() {
        let s = FileScope::classify("src/lib.rs");
        assert_eq!(s.crate_name, "rhythm");
        assert_eq!(s.kind, FileKind::Lib);
        assert_eq!(FileScope::classify("tests/golden.rs").kind, FileKind::Test);
        assert_eq!(
            FileScope::classify("examples/quickstart.rs").kind,
            FileKind::Example
        );
    }
}
