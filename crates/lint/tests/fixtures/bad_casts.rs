//! Known-bad fixture for D05: lossy numeric casts whose source type is
//! locally evident, plus value-preserving and unresolvable casts that
//! must stay silent.

pub struct Totals {
    pub area: Vec<u128>,
    pub grand: u128,
}

impl Totals {
    pub fn squeeze(&self, moment: i128, count: u64) -> u64 {
        let a = self.grand as u64;
        let b = moment as i64;
        let c = self.area[0] as u64;
        let d = 7u128 as u64;
        let e = count as i64;
        let f = self.area.len() as u32;
        let ok_widen = count as u128;
        let ok_unknown = helper() as u16;
        a + b as u64 + c + d + e as u64 + f as u64 + ok_widen as u64 + ok_unknown as u64
    }
}
