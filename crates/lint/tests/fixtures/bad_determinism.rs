//! Known-bad fixture: determinism-rule violations with pinned line
//! numbers. Linted by `tests/rules.rs` under the label
//! `crates/sim/src/bad_determinism.rs`; never compiled, and the
//! workspace walk skips `fixtures` directories.

use std::collections::HashMap;

fn hash_iteration() {
    let mut m: HashMap<u32, u32> = HashMap::new();
    m.insert(1, 2);
    for (k, v) in &m {
        let _ = (k, v);
    }
    let _keys = m.keys();
}

fn wall_clock() {
    let _t = Instant::now();
    let _s = SystemTime::now();
}

fn entropy() {
    let _r = thread_rng();
    let _x: u64 = rand::random();
}

fn narrow(x: f32) -> f64 {
    x as f64 + 1.5f32 as f64
}
