//! Known-bad fixture: hygiene-rule violations (U01 / H01 / A01) with
//! pinned line numbers. Never compiled; see `tests/rules.rs`.

fn no_safety_comment(p: *const u32) -> u32 {
    unsafe { *p }
}

#[allow(dead_code)]
fn unjustified_allow() {}

// lint:allow(D01)
fn pragma_without_reason() {}

// lint:allow(Z99) -- suppressing a rule that does not exist
fn pragma_unknown_rule() {}
