//! Known-bad fixture for P01: unwrap/expect/panic! without a
//! justifying audit comment, plus one properly justified site.

pub fn take(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn demand(v: Option<u64>) -> u64 {
    v.expect("value present")
}

pub fn refuse(flag: bool) {
    if flag {
        panic!("refused");
    }
}

pub fn justified(v: Option<u64>) -> u64 {
    // PANIC: v is Some by construction — the caller checked is_some().
    v.unwrap()
}
