//! Known-bad fixture for S02: a `Snapshot` impl that forgets one field.
//!
//! `encode` writes `gens` and `free` but never `slots` (line 9 is the
//! field declaration the finding anchors to) — exactly the
//! silent-resume-corruption class the rule exists to catch. Also seeds
//! an extra-field write (`self.ghost`).

pub struct ShardLedger {
    pub slots: Vec<u64>,
    pub gens: Vec<u32>,
    pub free: Vec<u32>,
}

impl Snapshot for ShardLedger {
    fn encode(&self, w: &mut Writer) {
        self.gens.encode(w);
        self.free.encode(w);
        w.u64(self.ghost);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let gens = Snapshot::decode(r)?;
        let free = Snapshot::decode(r)?;
        Ok(ShardLedger { slots: Vec::new(), gens, free })
    }
}
