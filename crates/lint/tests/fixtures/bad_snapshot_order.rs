//! Known-bad fixture for S02 ordering: every field is covered, but
//! `decode` reads `seq` before `jobs` while `encode` writes `jobs`
//! first — the restored value silently swaps the two wire slots.

pub struct EpochState {
    pub jobs: Vec<u64>,
    pub seq: u64,
}

impl Snapshot for EpochState {
    fn encode(&self, w: &mut Writer) {
        self.jobs.encode(w);
        w.u64(self.seq);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let seq = r.u64()?;
        let jobs = Snapshot::decode(r)?;
        Ok(EpochState { jobs, seq })
    }
}
