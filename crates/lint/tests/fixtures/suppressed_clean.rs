//! Fixture: every violation carries a well-formed pragma, so the file
//! is clean (zero unsuppressed findings) but the suppressions are
//! visible in the report. See `tests/rules.rs`.

use std::collections::HashMap;

struct Index {
    // lint:allow(D01) -- lookup-only, never iterated
    by_id: HashMap<u64, usize>,
}

impl Index {
    fn get(&self, id: u64) -> Option<usize> {
        self.by_id.get(&id).copied()
    }
}

fn measured() {
    // lint:allow(D02) -- operator-facing stopwatch, not sim time
    let _t = Instant::now();
}
