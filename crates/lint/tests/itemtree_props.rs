//! Property tests for the item-tree parser: whatever byte soup or
//! token shuffle the lexer hands it, `parse` must never panic, must
//! terminate, and every span it reports must tile inside the input.
//!
//! `PROPTEST_CASES` scales the case count (the vendored proptest
//! honours it via the default config).

use proptest::prelude::*;
use rhythm_lint::itemtree::{self, ItemTree};
use rhythm_lint::lexer::{self, Token, TokenKind};

/// Fragments that stress the parser's recovery paths: item keywords in
/// bogus positions, unbalanced delimiters, generics soup, arrows, and
/// plain identifiers. Random concatenations of these reach far more
/// parser states than uniformly random characters would.
const FRAGMENTS: &[&str] = &[
    "struct", "enum", "impl", "fn", "for", "where", "pub", "<", ">", ">>", "->", "=>", "{", "}",
    "(", ")", "[", "]", ",", ";", ":", "::", "&", "'a", "#", "#[cfg(test)]",
    "#[cfg(feature = \"x\")]", "self", ".", "=", "-", "Vec", "u64", "T", "ident", "x1",
    "Snapshot", "\"str{lit\"", "0u128", "as", "let", "//c\n", "\n",
];

/// Lexes `src`, parses the comment-free token slice, and asserts every
/// structural invariant the rule engine relies on: spans are ordered,
/// bounded by the token slice, and byte offsets round-trip into the
/// source text.
fn parse_and_check(src: &str) {
    let toks = lexer::lex(src);
    let code: Vec<&Token> = toks.iter().filter(|t| t.kind != TokenKind::Comment).collect();
    let tree: ItemTree = itemtree::parse(&code);
    let spans = tree
        .structs
        .iter()
        .map(|s| &s.span)
        .chain(tree.enums.iter().map(|e| &e.span))
        .chain(tree.impls.iter().map(|i| &i.span))
        .chain(tree.fns.iter().map(|f| &f.span));
    for span in spans {
        assert!(span.tok_lo <= span.tok_hi, "token span order: {span:?}");
        assert!(span.tok_hi <= code.len(), "token span bound: {span:?}");
        assert!(span.lo <= span.hi, "byte span order: {span:?}");
        assert!(span.hi <= src.len(), "byte span bound: {span:?}");
        if span.tok_lo < span.tok_hi {
            // The byte span is exactly the bytes of the tokens it claims.
            assert_eq!(span.lo, code[span.tok_lo].offset, "{span:?}");
            assert_eq!(span.hi, code[span.tok_hi - 1].end, "{span:?}");
            assert!(src.get(span.lo..span.hi).is_some(), "span splits UTF-8: {span:?}");
        }
    }
    for imp in &tree.impls {
        for &fi in &imp.fns {
            assert!(fi < tree.fns.len(), "impl fn index out of range");
        }
    }
    for f in &tree.fns {
        if let Some((lo, hi)) = f.body {
            assert!(lo <= hi && hi <= code.len(), "fn body range: {lo}..{hi}");
        }
    }
    let lines = src.lines().count().max(1) as u32;
    for s in &tree.structs {
        assert!(s.line >= 1 && s.line <= lines);
        for fld in s.fields.iter().flatten() {
            assert!(fld.line >= 1 && fld.line <= lines, "field line: {}", fld.line);
        }
    }
}

proptest! {
    /// Arbitrary Rust-flavoured token soup: parse never panics and all
    /// spans stay inside the input.
    #[test]
    fn parser_survives_token_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..120)
    ) {
        let src: String = picks
            .iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ");
        parse_and_check(&src);
    }

    /// Arbitrary unicode scalar streams: the lexer + parser front end
    /// is total over any valid UTF-8 input, multibyte included.
    #[test]
    fn parser_survives_arbitrary_strings(
        points in prop::collection::vec(1u32..0x0300, 0..200)
    ) {
        let src: String = points
            .iter()
            .filter_map(|&p| char::from_u32(p))
            .collect();
        parse_and_check(&src);
    }

    /// Truncating well-formed source at any byte boundary must not
    /// derail the parser — half-open braces and split tokens are the
    /// common editor-state inputs a lint pass sees.
    #[test]
    fn parser_survives_truncated_real_source(cut in 0usize..400) {
        let full = "pub struct State {\n    pub jobs: Vec<u64>,\n    #[cfg(test)]\n    pub probe: u32,\n}\n\
                    impl<T: Snapshot> Snapshot for Vec<T> {\n    fn encode(&self, w: &mut Writer) { self.jobs.encode(w); }\n\
                    fn decode(r: &mut Reader<'_>) -> Result<Self, E> { Ok(Self { jobs: d(r)? }) }\n}\n";
        parse_and_check(&full[..cut.min(full.len())]);
    }
}

/// Deterministic regression net alongside the random sweeps: degenerate
/// inputs parse to empty, well-formed trees rather than looping or
/// indexing off the end.
#[test]
fn degenerate_inputs_parse_well_formed_trees() {
    for src in ["", "struct", "impl", "fn", "#[", "{ } } {", "impl for {", "struct X<"] {
        parse_and_check(src);
    }
}
