//! Fixture-based rule-engine tests: known-bad sources with pinned
//! `file:line: rule` output.
//!
//! The fixtures live under `tests/fixtures/` (which the workspace walk
//! skips) and are linted under synthetic `crates/sim/src/...` labels so
//! the deterministic-crate policy applies to them.

use rhythm_lint::lint_source;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(p).expect("fixture readable")
}

#[test]
fn determinism_fixture_pins_exact_findings() {
    let src = fixture("bad_determinism.rs");
    let label = "crates/sim/src/bad_determinism.rs";
    let l = lint_source(label, &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.rule))
        .collect();
    let want = [
        "crates/sim/src/bad_determinism.rs:9:D01",  // HashMap type annotation
        "crates/sim/src/bad_determinism.rs:9:D01",  // HashMap::new()
        "crates/sim/src/bad_determinism.rs:11:D01", // for ... in &m
        "crates/sim/src/bad_determinism.rs:14:D01", // m.keys()
        "crates/sim/src/bad_determinism.rs:18:D02", // Instant::now
        "crates/sim/src/bad_determinism.rs:19:D02", // SystemTime
        "crates/sim/src/bad_determinism.rs:23:D03", // thread_rng
        "crates/sim/src/bad_determinism.rs:24:D03", // rand::random
        "crates/sim/src/bad_determinism.rs:27:D04", // x: f32
        "crates/sim/src/bad_determinism.rs:28:D04", // 1.5f32 literal
    ];
    assert_eq!(got, want, "full findings: {:#?}", l.findings);
    assert!(l.suppressed.is_empty());
}

#[test]
fn hygiene_fixture_pins_exact_findings() {
    let src = fixture("bad_hygiene.rs");
    let l = lint_source("crates/sim/src/bad_hygiene.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec!["5:U01", "8:H01", "11:A01", "14:A01"],
        "full findings: {:#?}",
        l.findings
    );
    assert!(l.findings[2].message.contains("requires a reason"));
    assert!(l.findings[3].message.contains("unknown rule id `Z99`"));
}

#[test]
fn suppressed_fixture_is_clean_but_audited() {
    let src = fixture("suppressed_clean.rs");
    let l = lint_source("crates/sim/src/suppressed_clean.rs", &src);
    assert!(
        l.findings.is_empty(),
        "expected clean, got: {:#?}",
        l.findings
    );
    let got: Vec<String> = l
        .suppressed
        .iter()
        .map(|s| format!("{}:{}:{}", s.finding.line, s.finding.rule, s.reason))
        .collect();
    assert_eq!(
        got,
        vec![
            "9:D01:lookup-only, never iterated",
            "20:D02:operator-facing stopwatch, not sim time",
        ]
    );
}

#[test]
fn same_source_under_exempt_scope_is_clean() {
    // The identical bad source linted as bench code or an example only
    // answers for the rules scoped there (D03 still applies to examples).
    let src = fixture("bad_determinism.rs");
    let as_bench = lint_source("crates/bench/src/bad.rs", &src);
    assert!(
        as_bench
            .findings
            .iter()
            .all(|f| f.rule == "D03"),
        "bench scope should only keep D03: {:#?}",
        as_bench.findings
    );
    let as_test = lint_source("crates/sim/tests/bad.rs", &src);
    assert!(as_test.findings.is_empty());
}
