//! Fixture-based rule-engine tests: known-bad sources with pinned
//! `file:line: rule` output.
//!
//! The fixtures live under `tests/fixtures/` (which the workspace walk
//! skips) and are linted under synthetic `crates/sim/src/...` labels so
//! the deterministic-crate policy applies to them.

use rhythm_lint::lint_source;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(p).expect("fixture readable")
}

#[test]
fn determinism_fixture_pins_exact_findings() {
    let src = fixture("bad_determinism.rs");
    let label = "crates/sim/src/bad_determinism.rs";
    let l = lint_source(label, &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.rule))
        .collect();
    let want = [
        "crates/sim/src/bad_determinism.rs:9:D01",  // HashMap type annotation
        "crates/sim/src/bad_determinism.rs:9:D01",  // HashMap::new()
        "crates/sim/src/bad_determinism.rs:11:D01", // for ... in &m
        "crates/sim/src/bad_determinism.rs:14:D01", // m.keys()
        "crates/sim/src/bad_determinism.rs:18:D02", // Instant::now
        "crates/sim/src/bad_determinism.rs:19:D02", // SystemTime
        "crates/sim/src/bad_determinism.rs:23:D03", // thread_rng
        "crates/sim/src/bad_determinism.rs:24:D03", // rand::random
        "crates/sim/src/bad_determinism.rs:27:D04", // x: f32
        "crates/sim/src/bad_determinism.rs:28:D04", // 1.5f32 literal
    ];
    assert_eq!(got, want, "full findings: {:#?}", l.findings);
    assert!(l.suppressed.is_empty());
}

#[test]
fn hygiene_fixture_pins_exact_findings() {
    let src = fixture("bad_hygiene.rs");
    let l = lint_source("crates/sim/src/bad_hygiene.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec!["5:U01", "8:H01", "11:A01", "14:A01"],
        "full findings: {:#?}",
        l.findings
    );
    assert!(l.findings[2].message.contains("requires a reason"));
    assert!(l.findings[3].message.contains("unknown rule id `Z99`"));
}

#[test]
fn suppressed_fixture_is_clean_but_audited() {
    let src = fixture("suppressed_clean.rs");
    let l = lint_source("crates/sim/src/suppressed_clean.rs", &src);
    assert!(
        l.findings.is_empty(),
        "expected clean, got: {:#?}",
        l.findings
    );
    let got: Vec<String> = l
        .suppressed
        .iter()
        .map(|s| format!("{}:{}:{}", s.finding.line, s.finding.rule, s.reason))
        .collect();
    assert_eq!(
        got,
        vec![
            "9:D01:lookup-only, never iterated",
            "20:D02:operator-facing stopwatch, not sim time",
        ]
    );
}

#[test]
fn same_source_under_exempt_scope_is_clean() {
    // The identical bad source linted as bench code or an example only
    // answers for the rules scoped there (D03 still applies to examples).
    let src = fixture("bad_determinism.rs");
    let as_bench = lint_source("crates/bench/src/bad.rs", &src);
    assert!(
        as_bench
            .findings
            .iter()
            .all(|f| f.rule == "D03"),
        "bench scope should only keep D03: {:#?}",
        as_bench.findings
    );
    let as_test = lint_source("crates/sim/tests/bad.rs", &src);
    assert!(as_test.findings.is_empty());
}

#[test]
fn snapshot_missing_field_fixture_pins_exact_findings() {
    let src = fixture("bad_snapshot_missing.rs");
    let l = lint_source("crates/cluster/src/bad_snapshot_missing.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.rule))
        .collect();
    let want = [
        "crates/cluster/src/bad_snapshot_missing.rs:9:S02",  // `slots` never encoded
        "crates/cluster/src/bad_snapshot_missing.rs:18:S02", // `self.ghost` is not a field
    ];
    assert_eq!(got, want, "full findings: {:#?}", l.findings);
    assert!(l.findings[0].message.contains("`slots` of `ShardLedger` is never written"));
    assert!(l.findings[1].message.contains("`self.ghost`"));
    assert!(l.suppressed.is_empty());
}

#[test]
fn snapshot_reorder_fixture_pins_exact_finding() {
    let src = fixture("bad_snapshot_order.rs");
    let l = lint_source("crates/cluster/src/bad_snapshot_order.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}:{}", f.file, f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        ["crates/cluster/src/bad_snapshot_order.rs:7:S02"],
        "full findings: {:#?}",
        l.findings
    );
    assert!(l.findings[0].message.contains("decoded out of encode order"));
}

#[test]
fn panic_fixture_pins_exact_findings() {
    let src = fixture("bad_panics.rs");
    let l = lint_source("crates/core/src/bad_panics.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.line, f.rule))
        .collect();
    assert_eq!(got, vec!["5:P01", "9:P01", "14:P01"], "full: {:#?}", l.findings);
    // The justified unwrap at the bottom stays silent.
    assert!(l.findings.iter().all(|f| f.line < 20));
    // Outside the audited crates the fixture is clean.
    assert!(lint_source("crates/sim/src/bad_panics.rs", &src).findings.is_empty());
}

#[test]
fn cast_fixture_pins_exact_findings() {
    let src = fixture("bad_casts.rs");
    let l = lint_source("crates/core/src/bad_casts.rs", &src);
    let got: Vec<String> = l
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec!["12:D05", "13:D05", "14:D05", "15:D05", "16:D05", "17:D05"],
        "full: {:#?}",
        l.findings
    );
    assert!(l.findings[0].message.contains("`u128 as u64`"));
    assert!(l.findings[4].message.contains("`u64 as i64`"));
    assert!(l.findings[5].message.contains("`usize as u32`"));
}

/// The acceptance drill for S02: take the real scheduler snapshot impl,
/// delete one field's encode line, and the lint pass must catch it —
/// before any runtime test would.
#[test]
fn deleting_a_real_encode_line_trips_s02() {
    let real = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../cluster/src/snapshot.rs");
    let src = std::fs::read_to_string(real).expect("real snapshot source");
    let label = "crates/cluster/src/snapshot.rs";
    // Pristine source: no unsuppressed findings of any rule.
    let clean = lint_source(label, &src);
    assert!(
        clean.findings.is_empty(),
        "real snapshot.rs should be clean: {:#?}",
        clean.findings
    );
    // Drop the `steals` write from SchedulerState::encode.
    let broken: String = src
        .lines()
        .filter(|l| !l.contains("w.u64(self.steals);"))
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(src, broken, "the drill line must exist in the real source");
    let l = lint_source(label, &broken);
    assert!(
        l.findings
            .iter()
            .any(|f| f.rule == "S02" && f.message.contains("`steals`")),
        "expected an S02 finding for the deleted field: {:#?}",
        l.findings
    );
}

/// Golden pin for the summary-line format. `results/lint.txt` and the
/// CI log grep both key off this exact shape — change it and this test
/// (plus the checked-in report) must change with it.
#[test]
fn summary_line_format_is_pinned() {
    use rhythm_lint::{render_text, Finding, WorkspaceReport};
    let report = WorkspaceReport {
        files_scanned: 3,
        findings: vec![Finding {
            file: "crates/sim/src/a.rs".into(),
            line: 4,
            rule: "D01",
            message: "no".into(),
        }],
        suppressed: Vec::new(),
    };
    let text = render_text(&report);
    assert!(text.ends_with("3 file(s) scanned, 1 finding(s), 0 suppressed\n"));

    // The checked-in artifact carries a line of the same shape.
    let artifact = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/lint.txt");
    let txt = std::fs::read_to_string(artifact).expect("results/lint.txt checked in");
    let summary = txt
        .lines()
        .find(|l| l.ends_with("suppressed") && l.contains("file(s) scanned"))
        .expect("summary line present");
    let parts: Vec<&str> = summary.split(", ").collect();
    assert_eq!(parts.len(), 3, "summary: {summary}");
    assert!(parts[0].ends_with(" file(s) scanned"), "summary: {summary}");
    assert!(parts[1].ends_with(" finding(s)"), "summary: {summary}");
    assert!(parts[2].ends_with(" suppressed"), "summary: {summary}");
    for (part, suffix) in parts.iter().zip([" file(s) scanned", " finding(s)", " suppressed"]) {
        let n = part.strip_suffix(suffix).expect("numeric prefix");
        assert!(n.chars().all(|c| c.is_ascii_digit()), "summary: {summary}");
    }
}
