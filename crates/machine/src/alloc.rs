//! A resource grant for one job on one machine.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The bundle of machine resources granted to a job (LC Servpod or one BE
/// instance).
///
/// Units follow the paper's controller granularities (§3.5.2): whole cores,
/// whole LLC ways (10% of a 20-way socket LLC = 2 ways), memory in MB
/// (BE jobs start at 2 GB and step by 100 MB), network in Mbit/s, and a
/// DVFS frequency in MHz.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Number of physical cores.
    pub cores: u32,
    /// Number of LLC ways (machine-wide count).
    pub llc_ways: u32,
    /// DRAM in MB.
    pub mem_mb: u64,
    /// Network bandwidth in Mbit/s.
    pub net_mbps: f64,
    /// Operating frequency in MHz (0 means "machine default").
    pub freq_mhz: u32,
}

impl Allocation {
    /// The empty grant.
    pub const fn none() -> Self {
        Allocation {
            cores: 0,
            llc_ways: 0,
            mem_mb: 0,
            net_mbps: 0.0,
            freq_mhz: 0,
        }
    }

    /// Creates a grant with the given cores and LLC ways and nothing else.
    pub fn cores_and_llc(cores: u32, llc_ways: u32) -> Self {
        Allocation {
            cores,
            llc_ways,
            ..Allocation::none()
        }
    }

    /// True if every field is zero.
    pub fn is_empty(&self) -> bool {
        self.cores == 0
            && self.llc_ways == 0
            && self.mem_mb == 0
            && self.net_mbps == 0.0
            && self.freq_mhz == 0
    }

    /// Component-wise saturating subtraction (frequency is kept from
    /// `self`: cutting resources does not change the DVFS point).
    pub fn saturating_sub(&self, other: &Allocation) -> Allocation {
        Allocation {
            cores: self.cores.saturating_sub(other.cores),
            llc_ways: self.llc_ways.saturating_sub(other.llc_ways),
            mem_mb: self.mem_mb.saturating_sub(other.mem_mb),
            net_mbps: (self.net_mbps - other.net_mbps).max(0.0),
            freq_mhz: self.freq_mhz,
        }
    }

    /// True if every component of `self` fits within `other`.
    pub fn fits_within(&self, other: &Allocation) -> bool {
        self.cores <= other.cores
            && self.llc_ways <= other.llc_ways
            && self.mem_mb <= other.mem_mb
            && self.net_mbps <= other.net_mbps + 1e-9
    }
}

impl rhythm_snapshot::Snapshot for Allocation {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u32(self.cores);
        w.u32(self.llc_ways);
        w.u64(self.mem_mb);
        w.f64(self.net_mbps);
        w.u32(self.freq_mhz);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(Allocation {
            cores: r.u32()?,
            llc_ways: r.u32()?,
            mem_mb: r.u64()?,
            net_mbps: r.f64()?,
            freq_mhz: r.u32()?,
        })
    }
}

impl Add for Allocation {
    type Output = Allocation;

    fn add(self, rhs: Allocation) -> Allocation {
        Allocation {
            cores: self.cores + rhs.cores,
            llc_ways: self.llc_ways + rhs.llc_ways,
            mem_mb: self.mem_mb + rhs.mem_mb,
            net_mbps: self.net_mbps + rhs.net_mbps,
            freq_mhz: self.freq_mhz.max(rhs.freq_mhz),
        }
    }
}

impl AddAssign for Allocation {
    fn add_assign(&mut self, rhs: Allocation) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Allocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}c/{}w/{}MB/{:.0}Mbps@{}MHz",
            self.cores, self.llc_ways, self.mem_mb, self.net_mbps, self.freq_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty() {
        assert!(Allocation::none().is_empty());
        assert!(!Allocation::cores_and_llc(1, 0).is_empty());
    }

    #[test]
    fn addition_sums_components() {
        let a = Allocation {
            cores: 2,
            llc_ways: 4,
            mem_mb: 1000,
            net_mbps: 100.0,
            freq_mhz: 1800,
        };
        let b = Allocation {
            cores: 1,
            llc_ways: 2,
            mem_mb: 500,
            net_mbps: 50.0,
            freq_mhz: 2000,
        };
        let c = a + b;
        assert_eq!(c.cores, 3);
        assert_eq!(c.llc_ways, 6);
        assert_eq!(c.mem_mb, 1500);
        assert_eq!(c.net_mbps, 150.0);
        assert_eq!(c.freq_mhz, 2000, "addition keeps the higher frequency");
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = Allocation::cores_and_llc(1, 1);
        let b = Allocation::cores_and_llc(5, 5);
        let d = a.saturating_sub(&b);
        assert_eq!(d.cores, 0);
        assert_eq!(d.llc_ways, 0);
    }

    #[test]
    fn fits_within() {
        let small = Allocation::cores_and_llc(2, 2);
        let big = Allocation {
            cores: 4,
            llc_ways: 4,
            mem_mb: 0,
            net_mbps: 0.0,
            freq_mhz: 0,
        };
        assert!(small.fits_within(&big));
        assert!(!big.fits_within(&small));
    }

    #[test]
    fn display_is_compact() {
        let a = Allocation {
            cores: 2,
            llc_ways: 4,
            mem_mb: 2048,
            net_mbps: 100.0,
            freq_mhz: 2000,
        };
        assert_eq!(format!("{a}"), "2c/4w/2048MB/100Mbps@2000MHz");
    }
}
