//! LLC way partitioning (Intel Cache Allocation Technology).
//!
//! Rhythm splits the last-level cache into an LC part and a BE part
//! (paper §4, isolation mechanism 2). CAT operates at way granularity:
//! a class of service owns a contiguous bitmap of ways. The paper's
//! CPU/LLC subcontroller steps BE cache in units of "10% LLC", i.e. 2 of
//! the 20 ways of one socket.

use serde::{Deserialize, Serialize};

/// A two-class (LC / BE) LLC way partition for one machine.
///
/// Invariant: `lc_ways + be_ways <= total_ways`, and the LC class always
/// keeps at least one way (a CLOS with an empty mask is invalid on real
/// hardware).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatPartition {
    total_ways: u32,
    lc_ways: u32,
    be_ways: u32,
}

/// Errors from repartitioning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatError {
    /// Growing the BE class would leave the LC class without its
    /// mandatory way (a CLOS with an empty mask is invalid on real
    /// hardware), or the request simply exceeds what LC can cede.
    LcMinimum,
}

impl std::fmt::Display for CatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatError::LcMinimum => write!(f, "LC class must keep at least one way"),
        }
    }
}

impl std::error::Error for CatError {}

impl CatPartition {
    /// Creates a partition with everything assigned to LC and nothing to
    /// BE (the configuration before any BE job is admitted).
    ///
    /// # Panics
    ///
    /// Panics if `total_ways == 0`.
    pub fn all_lc(total_ways: u32) -> Self {
        assert!(total_ways > 0, "LLC must have at least one way");
        CatPartition {
            total_ways,
            lc_ways: total_ways,
            be_ways: 0,
        }
    }

    /// Total ways on the machine.
    pub fn total_ways(&self) -> u32 {
        self.total_ways
    }

    /// Ways currently owned by the LC class.
    pub fn lc_ways(&self) -> u32 {
        self.lc_ways
    }

    /// Ways currently owned by the BE class.
    pub fn be_ways(&self) -> u32 {
        self.be_ways
    }

    /// Unassigned ways (kept as slack; count toward LC's effective share
    /// on real CAT, but tracked separately here for clarity).
    pub fn free_ways(&self) -> u32 {
        self.total_ways - self.lc_ways - self.be_ways
    }

    /// Fraction of the LLC owned by the BE class.
    pub fn be_fraction(&self) -> f64 {
        self.be_ways as f64 / self.total_ways as f64
    }

    /// Moves `n` ways from the LC class to the BE class.
    pub fn grow_be(&mut self, n: u32) -> Result<(), CatError> {
        if self.lc_ways < n + 1 {
            return Err(CatError::LcMinimum);
        }
        self.lc_ways -= n;
        self.be_ways += n;
        Ok(())
    }

    /// Returns `n` ways from the BE class to the LC class (saturating:
    /// returns however many BE actually had).
    pub fn shrink_be(&mut self, n: u32) -> u32 {
        let taken = n.min(self.be_ways);
        self.be_ways -= taken;
        self.lc_ways += taken;
        taken
    }

    /// Releases the entire BE class back to LC (StopBE).
    pub fn release_all_be(&mut self) {
        self.lc_ways += self.be_ways;
        self.be_ways = 0;
    }

    /// Checks the partition invariants.
    pub fn is_consistent(&self) -> bool {
        self.lc_ways >= 1 && self.lc_ways + self.be_ways <= self.total_ways
    }
}

impl rhythm_snapshot::Snapshot for CatPartition {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u32(self.total_ways);
        w.u32(self.lc_ways);
        w.u32(self.be_ways);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let p = CatPartition {
            total_ways: r.u32()?,
            lc_ways: r.u32()?,
            be_ways: r.u32()?,
        };
        if !p.is_consistent() {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "CAT partition violates its way-count invariant".into(),
            ));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_lc() {
        let p = CatPartition::all_lc(20);
        assert_eq!(p.lc_ways(), 20);
        assert_eq!(p.be_ways(), 0);
        assert_eq!(p.free_ways(), 0);
        assert!(p.is_consistent());
    }

    #[test]
    fn grow_and_shrink() {
        let mut p = CatPartition::all_lc(20);
        p.grow_be(2).unwrap();
        assert_eq!(p.be_ways(), 2);
        assert_eq!(p.lc_ways(), 18);
        assert!((p.be_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(p.shrink_be(1), 1);
        assert_eq!(p.be_ways(), 1);
        assert!(p.is_consistent());
    }

    #[test]
    fn lc_keeps_one_way() {
        let mut p = CatPartition::all_lc(4);
        p.grow_be(3).unwrap();
        assert_eq!(p.lc_ways(), 1);
        assert_eq!(p.grow_be(1), Err(CatError::LcMinimum));
    }

    #[test]
    fn shrink_saturates() {
        let mut p = CatPartition::all_lc(10);
        p.grow_be(4).unwrap();
        assert_eq!(p.shrink_be(100), 4);
        assert_eq!(p.be_ways(), 0);
        assert_eq!(p.lc_ways(), 10);
    }

    #[test]
    fn release_all() {
        let mut p = CatPartition::all_lc(10);
        p.grow_be(5).unwrap();
        p.release_all_be();
        assert_eq!(p.lc_ways(), 10);
        assert_eq!(p.be_ways(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_panics() {
        CatPartition::all_lc(0);
    }
}
