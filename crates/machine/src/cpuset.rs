//! Core-pinning sets (the `cpuset` cgroup interface).
//!
//! Rhythm binds LC and BE jobs to disjoint physical cores (paper §4,
//! isolation mechanism 1). A [`CpuSet`] is a bitmask over the machine's
//! cores; the machine hands out disjoint sets and checks for overlap.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of physical core ids on one machine (up to 128 cores).
#[derive(Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CpuSet {
    bits: u128,
}

impl CpuSet {
    /// The empty set.
    pub const fn empty() -> Self {
        CpuSet { bits: 0 }
    }

    /// The contiguous range `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds 128 cores.
    pub fn range(start: u32, count: u32) -> Self {
        assert!(start + count <= 128, "CpuSet supports up to 128 cores");
        if count == 0 {
            return CpuSet::empty();
        }
        let mask = if count == 128 {
            u128::MAX
        } else {
            ((1u128 << count) - 1) << start
        };
        CpuSet { bits: mask }
    }

    /// Inserts core `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 128`.
    pub fn insert(&mut self, id: u32) {
        assert!(id < 128, "core id out of range");
        self.bits |= 1u128 << id;
    }

    /// Removes core `id` if present.
    pub fn remove(&mut self, id: u32) {
        if id < 128 {
            self.bits &= !(1u128 << id);
        }
    }

    /// True if core `id` is in the set.
    pub fn contains(&self, id: u32) -> bool {
        id < 128 && (self.bits >> id) & 1 == 1
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.bits.count_ones()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// True if the two sets share no core.
    pub fn is_disjoint(&self, other: &CpuSet) -> bool {
        self.bits & other.bits == 0
    }

    /// Set union.
    pub fn union(&self, other: &CpuSet) -> CpuSet {
        CpuSet {
            bits: self.bits | other.bits,
        }
    }

    /// Set difference (`self` minus `other`).
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        CpuSet {
            bits: self.bits & !other.bits,
        }
    }

    /// Iterates over core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..128).filter(|&i| self.contains(i))
    }

    /// Takes the `n` lowest-numbered cores out of the set, returning them
    /// as a new set. Returns `None` (and leaves `self` unchanged) if fewer
    /// than `n` cores are available.
    pub fn take_lowest(&mut self, n: u32) -> Option<CpuSet> {
        if self.count() < n {
            return None;
        }
        let mut taken = CpuSet::empty();
        let mut remaining = n;
        for id in 0..128 {
            if remaining == 0 {
                break;
            }
            if self.contains(id) {
                taken.insert(id);
                remaining -= 1;
            }
        }
        *self = self.difference(&taken);
        Some(taken)
    }
}

impl rhythm_snapshot::Snapshot for CpuSet {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u128(self.bits);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(CpuSet { bits: r.u128()? })
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CpuSet{{")?;
        let mut first = true;
        for id in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_count() {
        let s = CpuSet::range(4, 6);
        assert_eq!(s.count(), 6);
        assert!(s.contains(4));
        assert!(s.contains(9));
        assert!(!s.contains(3));
        assert!(!s.contains(10));
    }

    #[test]
    fn empty_range() {
        assert!(CpuSet::range(5, 0).is_empty());
    }

    #[test]
    fn full_width_range() {
        let s = CpuSet::range(0, 128);
        assert_eq!(s.count(), 128);
    }

    #[test]
    fn insert_remove() {
        let mut s = CpuSet::empty();
        s.insert(7);
        assert!(s.contains(7));
        s.remove(7);
        assert!(!s.contains(7));
        s.remove(7); // Idempotent.
        assert!(s.is_empty());
    }

    #[test]
    fn disjoint_and_union() {
        let a = CpuSet::range(0, 4);
        let b = CpuSet::range(4, 4);
        assert!(a.is_disjoint(&b));
        let u = a.union(&b);
        assert_eq!(u.count(), 8);
        assert!(!u.is_disjoint(&a));
    }

    #[test]
    fn difference() {
        let a = CpuSet::range(0, 8);
        let b = CpuSet::range(0, 4);
        let d = a.difference(&b);
        assert_eq!(d.count(), 4);
        assert!(d.contains(4));
        assert!(!d.contains(3));
    }

    #[test]
    fn take_lowest_takes_in_order() {
        let mut free = CpuSet::range(0, 10);
        let t = free.take_lowest(3).unwrap();
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(free.count(), 7);
        assert!(!free.contains(0));
    }

    #[test]
    fn take_lowest_insufficient() {
        let mut free = CpuSet::range(0, 2);
        assert!(free.take_lowest(3).is_none());
        assert_eq!(free.count(), 2, "failed take must not mutate");
    }

    #[test]
    fn iter_ascending() {
        let mut s = CpuSet::empty();
        s.insert(9);
        s.insert(1);
        s.insert(100);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 9, 100]);
    }

    #[test]
    #[should_panic(expected = "128")]
    fn range_overflow_panics() {
        CpuSet::range(120, 16);
    }
}
