//! Per-domain dynamic voltage and frequency scaling.
//!
//! The frequency subcontroller (paper §3.5.2) lowers the BE cores'
//! operating point in 100 MHz steps when the socket power exceeds 80% of
//! TDP, and never lets the LC cores drop below the minimum frequency that
//! still meets the SLA.

use crate::spec::MachineSpec;
use serde::{Deserialize, Serialize};

/// A frequency domain (one group of cores sharing a DVFS operating point).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsDomain {
    min_mhz: u32,
    max_mhz: u32,
    step_mhz: u32,
    current_mhz: u32,
}

impl DvfsDomain {
    /// Creates a domain at the machine's maximum frequency.
    pub fn from_spec(spec: &MachineSpec) -> Self {
        DvfsDomain {
            min_mhz: spec.min_freq_mhz,
            max_mhz: spec.max_freq_mhz,
            step_mhz: spec.freq_step_mhz,
            current_mhz: spec.max_freq_mhz,
        }
    }

    /// The current operating point in MHz.
    pub fn current_mhz(&self) -> u32 {
        self.current_mhz
    }

    /// The domain's floor in MHz.
    pub fn min_mhz(&self) -> u32 {
        self.min_mhz
    }

    /// The domain's ceiling in MHz.
    pub fn max_mhz(&self) -> u32 {
        self.max_mhz
    }

    /// Current frequency as a fraction of the maximum (1.0 = full speed).
    pub fn speed_fraction(&self) -> f64 {
        self.current_mhz as f64 / self.max_mhz as f64
    }

    /// Steps the frequency down by one step; returns the new frequency.
    /// Saturates at the floor.
    pub fn step_down(&mut self) -> u32 {
        self.current_mhz = self
            .current_mhz
            .saturating_sub(self.step_mhz)
            .max(self.min_mhz);
        self.current_mhz
    }

    /// Steps the frequency up by one step; returns the new frequency.
    /// Saturates at the ceiling.
    pub fn step_up(&mut self) -> u32 {
        self.current_mhz = (self.current_mhz + self.step_mhz).min(self.max_mhz);
        self.current_mhz
    }

    /// Sets the frequency to the nearest valid operating point at or below
    /// `mhz`, clamped to the domain range. Returns the resulting point.
    pub fn set_mhz(&mut self, mhz: u32) -> u32 {
        let clamped = mhz.clamp(self.min_mhz, self.max_mhz);
        // Snap down to the operating-point grid.
        let steps = (clamped - self.min_mhz) / self.step_mhz;
        self.current_mhz = self.min_mhz + steps * self.step_mhz;
        self.current_mhz
    }

    /// Resets to the maximum frequency.
    pub fn reset(&mut self) {
        self.current_mhz = self.max_mhz;
    }

    /// True if the domain is at its floor.
    pub fn at_floor(&self) -> bool {
        self.current_mhz == self.min_mhz
    }
}

impl rhythm_snapshot::Snapshot for DvfsDomain {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u32(self.min_mhz);
        w.u32(self.max_mhz);
        w.u32(self.step_mhz);
        w.u32(self.current_mhz);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let d = DvfsDomain {
            min_mhz: r.u32()?,
            max_mhz: r.u32()?,
            step_mhz: r.u32()?,
            current_mhz: r.u32()?,
        };
        if d.min_mhz > d.max_mhz || d.current_mhz < d.min_mhz || d.current_mhz > d.max_mhz {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "DVFS operating point outside its domain range".into(),
            ));
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> DvfsDomain {
        DvfsDomain::from_spec(&MachineSpec::paper_testbed())
    }

    #[test]
    fn starts_at_max() {
        let d = domain();
        assert_eq!(d.current_mhz(), 2_000);
        assert_eq!(d.speed_fraction(), 1.0);
        assert!(!d.at_floor());
    }

    #[test]
    fn step_down_saturates_at_floor() {
        let mut d = domain();
        for _ in 0..100 {
            d.step_down();
        }
        assert_eq!(d.current_mhz(), 1_200);
        assert!(d.at_floor());
    }

    #[test]
    fn step_up_saturates_at_ceiling() {
        let mut d = domain();
        d.step_down();
        d.step_up();
        d.step_up();
        assert_eq!(d.current_mhz(), 2_000);
    }

    #[test]
    fn set_snaps_to_grid() {
        let mut d = domain();
        assert_eq!(d.set_mhz(1_750), 1_700, "snaps down to 100 MHz grid");
        assert_eq!(d.set_mhz(5_000), 2_000);
        assert_eq!(d.set_mhz(100), 1_200);
    }

    #[test]
    fn reset_restores_max() {
        let mut d = domain();
        d.set_mhz(1_200);
        d.reset();
        assert_eq!(d.current_mhz(), 2_000);
    }

    #[test]
    fn speed_fraction_scales() {
        let mut d = domain();
        d.set_mhz(1_500);
        assert!((d.speed_fraction() - 0.75).abs() < 1e-12);
    }
}
