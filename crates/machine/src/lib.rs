//! Physical machine model for the Rhythm reproduction.
//!
//! The paper's testbed is four quad-socket Intel Xeon E7-4820 v4 machines
//! (40 cores, 20 MB L3 per socket, 64 GB DRAM per socket, 10 Gb NIC). The
//! runtime controller never touches silicon directly — it actuates Linux
//! and hardware *interfaces*: `cpuset` cgroups for core pinning, Intel CAT
//! for LLC way partitioning, `qdisc` for network bandwidth, and DVFS/RAPL
//! for frequency and power (paper §4, "Isolation"). This crate models those
//! interfaces with the same units and granularities, so the controller code
//! is written exactly as it would be against real hardware.
//!
//! * [`spec`] — machine capacities ([`MachineSpec`], defaults to the
//!   paper's testbed machine).
//! * [`alloc`] — a resource grant ([`Allocation`]) for one job.
//! * [`cpuset`] — core-pinning sets.
//! * [`cat`] — LLC way-bitmap partitioning (Intel CAT).
//! * [`dvfs`] — per-domain frequency scaling.
//! * [`power`] — RAPL-style socket power model with a TDP cap.
//! * [`qdisc`] — network bandwidth shaping.
//! * [`machine`] — the assembled [`Machine`] with LC/BE resource
//!   accounting and capacity invariants.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod alloc;
pub mod cat;
pub mod cpuset;
pub mod dvfs;
pub mod machine;
pub mod power;
pub mod qdisc;
pub mod spec;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-machine/v1: \
     Allocation=(cores:u32,llc_ways:u32,mem_mb:u64,net_mbps:f64,freq_mhz:u32) \
     CpuSet=u128 CatPartition=(total:u32,lc:u32,be:u32) \
     DvfsDomain=(min:u32,max:u32,step:u32,current:u32) \
     Qdisc=(link:f64,be_limit:f64) \
     PowerModel=(idle:f64,dyn_per_core:f64,max_freq:u32,tdp:f64) \
     MachineSpec=11 fields \
     BeInstance=(id:u64,workload:str,alloc,cpuset,state:u8,priority:u8,saved:Option) \
     Machine=(spec,lc_alloc,lc_cpuset,free_cores,cat,lc_dvfs,be_dvfs,qdisc,power,\
     bes:[BeInstance],next_be_id:u64,change_epoch:u64,be_started:u64,be_killed:u64)";

pub use alloc::Allocation;
pub use cat::CatPartition;
pub use cpuset::CpuSet;
pub use dvfs::DvfsDomain;
pub use machine::{Machine, MachineError};
pub use power::PowerModel;
pub use qdisc::Qdisc;
pub use spec::MachineSpec;
