//! Physical machine model for the Rhythm reproduction.
//!
//! The paper's testbed is four quad-socket Intel Xeon E7-4820 v4 machines
//! (40 cores, 20 MB L3 per socket, 64 GB DRAM per socket, 10 Gb NIC). The
//! runtime controller never touches silicon directly — it actuates Linux
//! and hardware *interfaces*: `cpuset` cgroups for core pinning, Intel CAT
//! for LLC way partitioning, `qdisc` for network bandwidth, and DVFS/RAPL
//! for frequency and power (paper §4, "Isolation"). This crate models those
//! interfaces with the same units and granularities, so the controller code
//! is written exactly as it would be against real hardware.
//!
//! * [`spec`] — machine capacities ([`MachineSpec`], defaults to the
//!   paper's testbed machine).
//! * [`alloc`] — a resource grant ([`Allocation`]) for one job.
//! * [`cpuset`] — core-pinning sets.
//! * [`cat`] — LLC way-bitmap partitioning (Intel CAT).
//! * [`dvfs`] — per-domain frequency scaling.
//! * [`power`] — RAPL-style socket power model with a TDP cap.
//! * [`qdisc`] — network bandwidth shaping.
//! * [`machine`] — the assembled [`Machine`] with LC/BE resource
//!   accounting and capacity invariants.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod alloc;
pub mod cat;
pub mod cpuset;
pub mod dvfs;
pub mod machine;
pub mod power;
pub mod qdisc;
pub mod spec;

pub use alloc::Allocation;
pub use cat::CatPartition;
pub use cpuset::CpuSet;
pub use dvfs::DvfsDomain;
pub use machine::{Machine, MachineError};
pub use power::PowerModel;
pub use qdisc::Qdisc;
pub use spec::MachineSpec;
