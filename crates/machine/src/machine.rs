//! The assembled machine: LC + BE resource accounting with invariants.
//!
//! One [`Machine`] hosts exactly one LC Servpod (the paper deploys one
//! Servpod per physical machine, §3.1) plus any number of BE job
//! instances. The four subcontrollers manipulate BE instances through this
//! type; it enforces that grants never exceed capacity and that suspended
//! BE jobs keep their memory but release cores and cache (paper §3.5.2,
//! SuspendBE "pauses all of the running BE jobs, but they can still keep
//! their memory space").

use crate::alloc::Allocation;
use crate::cat::CatPartition;
use crate::cpuset::CpuSet;
use crate::dvfs::DvfsDomain;
use crate::power::PowerModel;
use crate::qdisc::Qdisc;
use crate::spec::MachineSpec;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one BE instance on one machine.
pub type BeInstanceId = u64;

/// Run state of a BE instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BeState {
    /// Scheduled on cores and making progress.
    Running,
    /// Paused: keeps memory, holds no cores/LLC/network.
    Suspended,
}

/// One BE job instance and its current grant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BeInstance {
    /// Stable id on this machine.
    pub id: BeInstanceId,
    /// Name of the BE workload (e.g. "wordcount").
    pub workload: String,
    /// Current resource grant. When suspended, `cores`/`llc_ways`/
    /// `net_mbps` are zero but `mem_mb` is retained.
    pub alloc: Allocation,
    /// Cores the instance is pinned to (empty while suspended).
    pub cpuset: CpuSet,
    /// Run state.
    pub state: BeState,
    /// Job priority class (0 = lowest). Preemption prefers low classes.
    pub priority: u8,
    /// Grant held before suspension, restored on resume.
    saved: Option<Allocation>,
}

/// Errors from machine resource operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// Not enough free cores/LLC/memory/network for the request.
    Insufficient(String),
    /// Unknown BE instance id.
    NoSuchInstance(BeInstanceId),
    /// Operation invalid in the instance's current state.
    BadState(BeInstanceId, BeState),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::Insufficient(what) => write!(f, "insufficient resources: {what}"),
            MachineError::NoSuchInstance(id) => write!(f, "no BE instance {id}"),
            MachineError::BadState(id, s) => write!(f, "BE instance {id} in state {s:?}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// One physical machine hosting an LC Servpod and BE instances.
#[derive(Clone, Debug)]
pub struct Machine {
    spec: MachineSpec,
    /// Resources reserved for the LC Servpod.
    lc_alloc: Allocation,
    /// Cores pinned to the LC Servpod.
    lc_cpuset: CpuSet,
    /// Cores not owned by LC or any BE instance.
    free_cores: CpuSet,
    /// LLC partition between LC and BE classes.
    cat: CatPartition,
    /// Frequency domain of the LC cores.
    pub lc_dvfs: DvfsDomain,
    /// Frequency domain of the BE cores.
    pub be_dvfs: DvfsDomain,
    /// Network shaper.
    pub qdisc: Qdisc,
    /// Power model.
    pub power: PowerModel,
    /// Live BE instances by id.
    bes: BTreeMap<BeInstanceId, BeInstance>,
    next_be_id: BeInstanceId,
    /// Bumped by every allocation-changing operation (admit / grow / cut
    /// / suspend / resume / kill); lets observers cache derived state
    /// (e.g. interference pressure) and invalidate only on change.
    change_epoch: u64,
    /// Cumulative counters for reporting.
    pub be_started: u64,
    pub be_killed: u64,
}

impl Machine {
    /// Creates a machine and reserves `lc_alloc` for its LC Servpod.
    ///
    /// The LC cores are pinned from core 0 upward; the LLC starts fully
    /// owned by the LC class.
    ///
    /// # Panics
    ///
    /// Panics if the LC reservation alone exceeds the machine or the spec
    /// is invalid.
    pub fn new(spec: MachineSpec, lc_alloc: Allocation) -> Self {
        spec.validate().expect("invalid machine spec");
        assert!(
            lc_alloc.cores <= spec.total_cores(),
            "LC reservation exceeds core count"
        );
        assert!(
            lc_alloc.mem_mb <= spec.total_mem_mb(),
            "LC reservation exceeds memory"
        );
        let mut all = CpuSet::range(0, spec.total_cores());
        let lc_cpuset = all
            .take_lowest(lc_alloc.cores)
            .expect("LC cores fit by the assertion above");
        Machine {
            lc_alloc,
            lc_cpuset,
            free_cores: all,
            cat: CatPartition::all_lc(spec.total_llc_ways()),
            lc_dvfs: DvfsDomain::from_spec(&spec),
            be_dvfs: DvfsDomain::from_spec(&spec),
            qdisc: Qdisc::new(spec.nic_mbps),
            power: PowerModel::from_spec(&spec),
            bes: BTreeMap::new(),
            next_be_id: 0,
            change_epoch: 0,
            be_started: 0,
            be_killed: 0,
            spec,
        }
    }

    /// The machine's static capacities.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Monotone counter of allocation changes (BE admissions, grants,
    /// suspends, resumes, kills). Two reads returning the same value
    /// guarantee the BE population, CAT partition and core ownership are
    /// unchanged between them; DVFS points and the qdisc ceiling are
    /// *not* covered (they are cheap to read directly).
    pub fn change_epoch(&self) -> u64 {
        self.change_epoch
    }

    /// The LC Servpod's reservation.
    pub fn lc_alloc(&self) -> Allocation {
        self.lc_alloc
    }

    /// Cores pinned to the LC Servpod.
    pub fn lc_cpuset(&self) -> CpuSet {
        self.lc_cpuset
    }

    /// The LLC partition.
    pub fn cat(&self) -> &CatPartition {
        &self.cat
    }

    /// Number of cores owned by neither LC nor any BE instance.
    pub fn free_core_count(&self) -> u32 {
        self.free_cores.count()
    }

    /// Free memory in MB.
    pub fn free_mem_mb(&self) -> u64 {
        let used: u64 = self.lc_alloc.mem_mb + self.bes.values().map(|b| b.alloc.mem_mb).sum::<u64>();
        self.spec.total_mem_mb().saturating_sub(used)
    }

    /// Sum of BE grants (suspended instances contribute only memory).
    pub fn be_total_alloc(&self) -> Allocation {
        self.bes
            .values()
            .fold(Allocation::none(), |acc, b| acc + b.alloc)
    }

    /// Live BE instances.
    pub fn be_instances(&self) -> impl Iterator<Item = &BeInstance> {
        self.bes.values()
    }

    /// Number of live (running or suspended) BE instances.
    pub fn be_count(&self) -> usize {
        self.bes.len()
    }

    /// Number of running BE instances.
    pub fn running_be_count(&self) -> usize {
        self.bes
            .values()
            .filter(|b| b.state == BeState::Running)
            .count()
    }

    /// Admits a new BE instance with the requested grant at priority 0.
    ///
    /// Fails without side effects if any dimension is unavailable.
    pub fn admit_be(&mut self, workload: &str, req: Allocation) -> Result<BeInstanceId, MachineError> {
        self.admit_be_prio(workload, req, 0)
    }

    /// Admits a new BE instance with the requested grant at the given
    /// priority class (0 = lowest; preemption prefers low classes).
    ///
    /// Fails without side effects if any dimension is unavailable.
    pub fn admit_be_prio(
        &mut self,
        workload: &str,
        req: Allocation,
        priority: u8,
    ) -> Result<BeInstanceId, MachineError> {
        if self.free_cores.count() < req.cores {
            return Err(MachineError::Insufficient(format!(
                "cores: need {}, free {}",
                req.cores,
                self.free_cores.count()
            )));
        }
        if self.free_mem_mb() < req.mem_mb {
            return Err(MachineError::Insufficient(format!(
                "memory: need {} MB, free {} MB",
                req.mem_mb,
                self.free_mem_mb()
            )));
        }
        // Grow the BE cache class by the requested ways.
        let mut cat = self.cat;
        if req.llc_ways > 0 && cat.grow_be(req.llc_ways).is_err() {
            return Err(MachineError::Insufficient(format!(
                "LLC ways: need {}, LC holds {}",
                req.llc_ways,
                self.cat.lc_ways()
            )));
        }
        let cpuset = self
            .free_cores
            .take_lowest(req.cores)
            .expect("checked above");
        self.cat = cat;
        let id = self.next_be_id;
        self.next_be_id += 1;
        self.bes.insert(
            id,
            BeInstance {
                id,
                workload: workload.to_string(),
                alloc: req,
                cpuset,
                state: BeState::Running,
                priority,
                saved: None,
            },
        );
        self.be_started += 1;
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(id)
    }

    /// Grows a running BE instance by `delta` cores/ways/memory.
    pub fn grow_be(&mut self, id: BeInstanceId, delta: Allocation) -> Result<(), MachineError> {
        let free_mem = self.free_mem_mb();
        let free_core_count = self.free_cores.count();
        let inst = self
            .bes
            .get(&id)
            .ok_or(MachineError::NoSuchInstance(id))?;
        if inst.state != BeState::Running {
            return Err(MachineError::BadState(id, inst.state));
        }
        if free_core_count < delta.cores {
            return Err(MachineError::Insufficient("cores".into()));
        }
        if free_mem < delta.mem_mb {
            return Err(MachineError::Insufficient("memory".into()));
        }
        let mut cat = self.cat;
        if delta.llc_ways > 0 && cat.grow_be(delta.llc_ways).is_err() {
            return Err(MachineError::Insufficient("LLC ways".into()));
        }
        let extra = self
            .free_cores
            .take_lowest(delta.cores)
            .expect("checked above");
        self.cat = cat;
        let inst = self.bes.get_mut(&id).expect("looked up above");
        inst.cpuset = inst.cpuset.union(&extra);
        inst.alloc += delta;
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(())
    }

    /// Cuts `delta` from a running BE instance (saturating per dimension).
    /// Returns what was actually reclaimed.
    pub fn cut_be(&mut self, id: BeInstanceId, delta: Allocation) -> Result<Allocation, MachineError> {
        let inst = self
            .bes
            .get_mut(&id)
            .ok_or(MachineError::NoSuchInstance(id))?;
        if inst.state != BeState::Running {
            return Err(MachineError::BadState(id, inst.state));
        }
        let cut_cores = delta.cores.min(inst.alloc.cores);
        let cut_ways = delta.llc_ways.min(inst.alloc.llc_ways);
        let cut_mem = delta.mem_mb.min(inst.alloc.mem_mb);
        let mut freed_cores = CpuSet::empty();
        let mut remaining = cut_cores;
        let ids: Vec<u32> = inst.cpuset.iter().collect();
        // Release highest-numbered cores first so LC-adjacent low cores
        // stay stable.
        for &cid in ids.iter().rev() {
            if remaining == 0 {
                break;
            }
            freed_cores.insert(cid);
            remaining -= 1;
        }
        inst.cpuset = inst.cpuset.difference(&freed_cores);
        inst.alloc.cores -= cut_cores;
        inst.alloc.llc_ways -= cut_ways;
        inst.alloc.mem_mb -= cut_mem;
        self.free_cores = self.free_cores.union(&freed_cores);
        self.cat.shrink_be(cut_ways);
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(Allocation {
            cores: cut_cores,
            llc_ways: cut_ways,
            mem_mb: cut_mem,
            net_mbps: 0.0,
            freq_mhz: 0,
        })
    }

    /// Suspends a running BE instance: cores, LLC and network are released;
    /// memory is kept.
    pub fn suspend_be(&mut self, id: BeInstanceId) -> Result<(), MachineError> {
        let inst = self
            .bes
            .get_mut(&id)
            .ok_or(MachineError::NoSuchInstance(id))?;
        if inst.state != BeState::Running {
            return Ok(()); // Already suspended: idempotent.
        }
        inst.saved = Some(inst.alloc);
        self.free_cores = self.free_cores.union(&inst.cpuset);
        self.cat.shrink_be(inst.alloc.llc_ways);
        inst.cpuset = CpuSet::empty();
        inst.alloc = Allocation {
            cores: 0,
            llc_ways: 0,
            mem_mb: inst.alloc.mem_mb,
            net_mbps: 0.0,
            freq_mhz: inst.alloc.freq_mhz,
        };
        inst.state = BeState::Suspended;
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(())
    }

    /// Suspends every running BE instance.
    pub fn suspend_all_be(&mut self) {
        let ids: Vec<BeInstanceId> = self.bes.keys().copied().collect();
        for id in ids {
            let _ = self.suspend_be(id);
        }
    }

    /// Resumes a suspended instance with as much of its saved grant as
    /// currently fits (cores/ways may have been given away meanwhile).
    /// Returns the grant it came back with.
    pub fn resume_be(&mut self, id: BeInstanceId) -> Result<Allocation, MachineError> {
        let free_core_count = self.free_cores.count();
        let inst = self
            .bes
            .get(&id)
            .ok_or(MachineError::NoSuchInstance(id))?;
        if inst.state != BeState::Suspended {
            return Err(MachineError::BadState(id, inst.state));
        }
        let saved = inst.saved.unwrap_or(inst.alloc);
        let cores = saved.cores.min(free_core_count);
        let mut cat = self.cat;
        let mut ways = 0;
        for _ in 0..saved.llc_ways {
            if cat.grow_be(1).is_ok() {
                ways += 1;
            } else {
                break;
            }
        }
        let cpuset = self
            .free_cores
            .take_lowest(cores)
            .expect("bounded by free count");
        self.cat = cat;
        let inst = self.bes.get_mut(&id).expect("looked up above");
        inst.cpuset = cpuset;
        inst.alloc = Allocation {
            cores,
            llc_ways: ways,
            mem_mb: inst.alloc.mem_mb,
            net_mbps: saved.net_mbps,
            freq_mhz: saved.freq_mhz,
        };
        inst.state = BeState::Running;
        inst.saved = None;
        let granted = inst.alloc;
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(granted)
    }

    /// Resumes every suspended BE instance (best effort).
    pub fn resume_all_be(&mut self) {
        let ids: Vec<BeInstanceId> = self.bes.keys().copied().collect();
        for id in ids {
            let _ = self.resume_be(id);
        }
    }

    /// Kills one BE instance, releasing all of its resources.
    pub fn kill_be(&mut self, id: BeInstanceId) -> Result<(), MachineError> {
        let inst = self
            .bes
            .remove(&id)
            .ok_or(MachineError::NoSuchInstance(id))?;
        self.free_cores = self.free_cores.union(&inst.cpuset);
        self.cat.shrink_be(inst.alloc.llc_ways);
        self.be_killed += 1;
        self.change_epoch += 1;
        debug_assert!(self.check_invariants().is_ok());
        Ok(())
    }

    /// Kills every BE instance (StopBE).
    pub fn kill_all_be(&mut self) {
        let ids: Vec<BeInstanceId> = self.bes.keys().copied().collect();
        for id in ids {
            let _ = self.kill_be(id);
        }
    }

    /// The lowest priority class among live BE instances, if any.
    pub fn min_be_priority(&self) -> Option<u8> {
        self.bes.values().map(|b| b.priority).min()
    }

    /// Kills only the lowest-priority class of BE instances (priority
    /// victim selection for StopBE). Returns the number killed.
    pub fn kill_min_priority_be(&mut self) -> usize {
        let Some(min) = self.min_be_priority() else {
            return 0;
        };
        let ids: Vec<BeInstanceId> = self
            .bes
            .values()
            .filter(|b| b.priority == min)
            .map(|b| b.id)
            .collect();
        for id in &ids {
            let _ = self.kill_be(*id);
        }
        ids.len()
    }

    /// Checks all resource-accounting invariants; returns a description of
    /// the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        let be_cores: u32 = self.bes.values().map(|b| b.alloc.cores).sum();
        if self.lc_alloc.cores + be_cores + self.free_cores.count() != self.spec.total_cores() {
            return Err(format!(
                "core accounting: lc={} be={} free={} total={}",
                self.lc_alloc.cores,
                be_cores,
                self.free_cores.count(),
                self.spec.total_cores()
            ));
        }
        if !self.cat.is_consistent() {
            return Err("CAT partition inconsistent".into());
        }
        let be_ways: u32 = self.bes.values().map(|b| b.alloc.llc_ways).sum();
        if be_ways != self.cat.be_ways() {
            return Err(format!(
                "LLC accounting: instances hold {} ways, CAT says {}",
                be_ways,
                self.cat.be_ways()
            ));
        }
        let mem: u64 = self.lc_alloc.mem_mb + self.bes.values().map(|b| b.alloc.mem_mb).sum::<u64>();
        if mem > self.spec.total_mem_mb() {
            return Err(format!(
                "memory over-commit: {} > {}",
                mem,
                self.spec.total_mem_mb()
            ));
        }
        for inst in self.bes.values() {
            if inst.cpuset.count() != inst.alloc.cores {
                return Err(format!(
                    "instance {} cpuset/grant mismatch: {} vs {}",
                    inst.id,
                    inst.cpuset.count(),
                    inst.alloc.cores
                ));
            }
            if !inst.cpuset.is_disjoint(&self.lc_cpuset) {
                return Err(format!("instance {} overlaps LC cores", inst.id));
            }
            if !inst.cpuset.is_disjoint(&self.free_cores) {
                return Err(format!("instance {} overlaps free cores", inst.id));
            }
            if inst.state == BeState::Suspended && inst.alloc.cores != 0 {
                return Err(format!("suspended instance {} holds cores", inst.id));
            }
        }
        Ok(())
    }
}

impl rhythm_snapshot::Snapshot for BeState {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(match self {
            BeState::Running => 0,
            BeState::Suspended => 1,
        });
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        match r.u8()? {
            0 => Ok(BeState::Running),
            1 => Ok(BeState::Suspended),
            t => Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                "unknown BeState tag {t}"
            ))),
        }
    }
}

impl rhythm_snapshot::Snapshot for BeInstance {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.id);
        w.str(&self.workload);
        self.alloc.encode(w);
        self.cpuset.encode(w);
        self.state.encode(w);
        w.u8(self.priority);
        self.saved.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(BeInstance {
            id: r.u64()?,
            workload: r.str()?,
            alloc: Allocation::decode(r)?,
            cpuset: CpuSet::decode(r)?,
            state: BeState::decode(r)?,
            priority: r.u8()?,
            saved: Option::<Allocation>::decode(r)?,
        })
    }
}

impl rhythm_snapshot::Snapshot for Machine {
    /// Context-free encoding of the full machine: spec, LC reservation,
    /// core/LLC/DVFS/qdisc actuator state, every BE instance, and the
    /// cumulative counters. Decoding re-checks the machine invariants, so
    /// a tampered or mismatched snapshot is refused rather than producing
    /// a machine that cannot account for its own cores.
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.spec.encode(w);
        self.lc_alloc.encode(w);
        self.lc_cpuset.encode(w);
        self.free_cores.encode(w);
        self.cat.encode(w);
        self.lc_dvfs.encode(w);
        self.be_dvfs.encode(w);
        self.qdisc.encode(w);
        self.power.encode(w);
        w.u64(self.bes.len() as u64);
        for inst in self.bes.values() {
            inst.encode(w);
        }
        w.u64(self.next_be_id);
        w.u64(self.change_epoch);
        w.u64(self.be_started);
        w.u64(self.be_killed);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let spec = MachineSpec::decode(r)?;
        let lc_alloc = Allocation::decode(r)?;
        let lc_cpuset = CpuSet::decode(r)?;
        let free_cores = CpuSet::decode(r)?;
        let cat = CatPartition::decode(r)?;
        let lc_dvfs = DvfsDomain::decode(r)?;
        let be_dvfs = DvfsDomain::decode(r)?;
        let qdisc = Qdisc::decode(r)?;
        let power = PowerModel::decode(r)?;
        let n = r.len(1)?;
        let mut bes = BTreeMap::new();
        let mut max_id = None;
        for _ in 0..n {
            let inst = BeInstance::decode(r)?;
            max_id = max_id.max(Some(inst.id));
            if bes.insert(inst.id, inst).is_some() {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(
                    "duplicate BE instance id".into(),
                ));
            }
        }
        let next_be_id = r.u64()?;
        if max_id.is_some_and(|id| id >= next_be_id) {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "BE id counter behind a live instance id".into(),
            ));
        }
        let m = Machine {
            spec,
            lc_alloc,
            lc_cpuset,
            free_cores,
            cat,
            lc_dvfs,
            be_dvfs,
            qdisc,
            power,
            bes,
            next_be_id,
            change_epoch: r.u64()?,
            be_started: r.u64()?,
            be_killed: r.u64()?,
        };
        m.check_invariants()
            .map_err(rhythm_snapshot::SnapshotError::Corrupt)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        let lc = Allocation {
            cores: 16,
            llc_ways: 0,
            mem_mb: 64 * 1024,
            net_mbps: 2_000.0,
            freq_mhz: 2_000,
        };
        Machine::new(MachineSpec::paper_testbed(), lc)
    }

    fn be_req() -> Allocation {
        // The paper's initial BE grant: 1 core, 10% LLC (2 ways of 20 per
        // socket scaled to the 80-way machine = 8), 2 GB memory.
        Allocation {
            cores: 1,
            llc_ways: 8,
            mem_mb: 2 * 1024,
            net_mbps: 0.0,
            freq_mhz: 2_000,
        }
    }

    #[test]
    fn new_machine_reserves_lc() {
        let m = machine();
        assert_eq!(m.lc_cpuset().count(), 16);
        assert_eq!(m.free_core_count(), 24);
        assert_eq!(m.cat().lc_ways(), 80);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn admit_be_takes_resources() {
        let mut m = machine();
        let id = m.admit_be("wordcount", be_req()).unwrap();
        assert_eq!(m.free_core_count(), 23);
        assert_eq!(m.cat().be_ways(), 8);
        assert_eq!(m.be_count(), 1);
        assert_eq!(m.running_be_count(), 1);
        assert_eq!(m.be_started, 1);
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.id, id);
        assert!(inst.cpuset.is_disjoint(&m.lc_cpuset()));
    }

    #[test]
    fn admit_fails_when_out_of_cores() {
        let mut m = machine();
        let mut req = be_req();
        req.cores = 25;
        req.llc_ways = 0;
        assert!(matches!(
            m.admit_be("x", req),
            Err(MachineError::Insufficient(_))
        ));
        assert_eq!(m.be_count(), 0);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn admit_fails_when_out_of_memory() {
        let mut m = machine();
        let mut req = be_req();
        req.mem_mb = 300 * 1024;
        assert!(m.admit_be("x", req).is_err());
    }

    #[test]
    fn grow_and_cut() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        m.grow_be(id, Allocation::cores_and_llc(1, 8)).unwrap();
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.alloc.cores, 2);
        assert_eq!(inst.alloc.llc_ways, 16);

        let got = m.cut_be(id, Allocation::cores_and_llc(1, 8)).unwrap();
        assert_eq!(got.cores, 1);
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.alloc.cores, 1);
        assert_eq!(m.cat().be_ways(), 8);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn cut_saturates() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        let got = m.cut_be(id, Allocation::cores_and_llc(99, 99)).unwrap();
        assert_eq!(got.cores, 1);
        assert_eq!(got.llc_ways, 8);
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.alloc.cores, 0);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn suspend_keeps_memory_releases_cores() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        let free_before = m.free_core_count();
        m.suspend_be(id).unwrap();
        assert_eq!(m.free_core_count(), free_before + 1);
        assert_eq!(m.cat().be_ways(), 0);
        let inst = m.be_instances().next().unwrap();
        assert_eq!(inst.state, BeState::Suspended);
        assert_eq!(inst.alloc.mem_mb, 2 * 1024, "memory retained");
        assert_eq!(inst.alloc.cores, 0);
        // Idempotent.
        m.suspend_be(id).unwrap();
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn resume_restores_saved_grant() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        m.suspend_be(id).unwrap();
        let back = m.resume_be(id).unwrap();
        assert_eq!(back.cores, 1);
        assert_eq!(back.llc_ways, 8);
        assert_eq!(m.running_be_count(), 1);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn resume_running_is_error() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        assert!(matches!(
            m.resume_be(id),
            Err(MachineError::BadState(_, BeState::Running))
        ));
    }

    #[test]
    fn kill_releases_everything() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        m.kill_be(id).unwrap();
        assert_eq!(m.be_count(), 0);
        assert_eq!(m.free_core_count(), 24);
        assert_eq!(m.cat().be_ways(), 0);
        assert_eq!(m.be_killed, 1);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn kill_all_be() {
        let mut m = machine();
        for _ in 0..5 {
            m.admit_be("wc", be_req()).unwrap();
        }
        m.kill_all_be();
        assert_eq!(m.be_count(), 0);
        assert_eq!(m.free_core_count(), 24);
        assert_eq!(m.be_killed, 5);
    }

    #[test]
    fn suspend_all_and_resume_all() {
        let mut m = machine();
        for _ in 0..3 {
            m.admit_be("wc", be_req()).unwrap();
        }
        m.suspend_all_be();
        assert_eq!(m.running_be_count(), 0);
        assert_eq!(m.be_count(), 3);
        m.resume_all_be();
        assert_eq!(m.running_be_count(), 3);
        assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn grow_suspended_is_error() {
        let mut m = machine();
        let id = m.admit_be("wc", be_req()).unwrap();
        m.suspend_be(id).unwrap();
        assert!(matches!(
            m.grow_be(id, Allocation::cores_and_llc(1, 0)),
            Err(MachineError::BadState(..))
        ));
    }

    #[test]
    fn unknown_instance_errors() {
        let mut m = machine();
        assert!(matches!(m.kill_be(42), Err(MachineError::NoSuchInstance(42))));
        assert!(matches!(
            m.cut_be(42, Allocation::none()),
            Err(MachineError::NoSuchInstance(42))
        ));
    }

    #[test]
    fn be_total_alloc_sums() {
        let mut m = machine();
        m.admit_be("a", be_req()).unwrap();
        m.admit_be("b", be_req()).unwrap();
        let total = m.be_total_alloc();
        assert_eq!(total.cores, 2);
        assert_eq!(total.llc_ways, 16);
        assert_eq!(total.mem_mb, 4 * 1024);
    }

    #[test]
    fn free_mem_accounts_lc_and_be() {
        let mut m = machine();
        let total = m.spec().total_mem_mb();
        assert_eq!(m.free_mem_mb(), total - 64 * 1024);
        m.admit_be("a", be_req()).unwrap();
        assert_eq!(m.free_mem_mb(), total - 64 * 1024 - 2 * 1024);
    }

    #[test]
    fn priority_kill_takes_only_lowest_class() {
        let mut m = machine();
        let a = m.admit_be_prio("low", be_req(), 0).unwrap();
        let b = m.admit_be_prio("high", be_req(), 2).unwrap();
        let c = m.admit_be_prio("low2", be_req(), 0).unwrap();
        assert_eq!(m.min_be_priority(), Some(0));
        let killed = m.kill_min_priority_be();
        assert_eq!(killed, 2);
        assert!(!m.bes.contains_key(&a));
        assert!(!m.bes.contains_key(&c));
        assert_eq!(m.bes.get(&b).unwrap().priority, 2);
        assert_eq!(m.min_be_priority(), Some(2));
        assert!(m.check_invariants().is_ok());
        // Second call takes the surviving class.
        assert_eq!(m.kill_min_priority_be(), 1);
        assert_eq!(m.kill_min_priority_be(), 0);
    }

    #[test]
    fn admit_be_defaults_to_priority_zero() {
        let mut m = machine();
        let id = m.admit_be("x", be_req()).unwrap();
        assert_eq!(m.bes.get(&id).unwrap().priority, 0);
    }

    #[test]
    fn snapshot_round_trip_preserves_machine() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut m = machine();
        let a = m.admit_be_prio("wordcount", be_req(), 1).unwrap();
        m.admit_be("stream", be_req()).unwrap();
        m.suspend_be(a).unwrap();
        m.lc_dvfs.step_down();
        m.qdisc.reallocate(1_500.0);
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Machine::decode(&mut Reader::new(&bytes)).unwrap();
        assert!(r.check_invariants().is_ok());
        assert_eq!(r.be_count(), m.be_count());
        assert_eq!(r.running_be_count(), m.running_be_count());
        assert_eq!(r.change_epoch(), m.change_epoch());
        assert_eq!(r.free_core_count(), m.free_core_count());
        assert_eq!(r.lc_dvfs.current_mhz(), m.lc_dvfs.current_mhz());
        assert_eq!(r.qdisc.be_limit_mbps(), m.qdisc.be_limit_mbps());
        // Suspended grant restores identically on both machines.
        let back_m = m.resume_be(a).unwrap();
        let back_r = r.resume_be(a).unwrap();
        assert_eq!(back_m, back_r);
        // Canonical bytes: encoding the restored machine is identical.
        let mut w2 = Writer::new();
        let mut w3 = Writer::new();
        m.encode(&mut w2);
        r.encode(&mut w3);
        assert_eq!(w2.into_bytes(), w3.into_bytes());
    }

    #[test]
    fn snapshot_rejects_broken_accounting() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut m = machine();
        m.admit_be("wc", be_req()).unwrap();
        let mut w = Writer::new();
        m.encode(&mut w);
        let mut bytes = w.into_bytes();
        // The free-core cpuset sits right after spec + lc_alloc + lc_cpuset.
        // Flip a low bit of it so core accounting no longer sums up.
        let off = 4 * 3 + 8 * 5 + 4 * 3 + (4 + 4 + 8 + 8 + 4) + 16;
        bytes[off] ^= 0x02;
        let decoded = Machine::decode(&mut Reader::new(&bytes));
        assert!(matches!(decoded.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn many_admissions_until_exhaustion() {
        let mut m = machine();
        let mut admitted = 0;
        loop {
            let mut req = be_req();
            req.llc_ways = 2;
            match m.admit_be("x", req) {
                Ok(_) => admitted += 1,
                Err(_) => break,
            }
        }
        // 24 free cores but only 79 grantable ways / 2 -> cores bind first.
        assert_eq!(admitted, 24);
        assert!(m.check_invariants().is_ok());
    }
}
