//! RAPL-style socket power model.
//!
//! The frequency subcontroller (paper §3.5.2) monitors socket power via
//! RAPL and throttles BE frequency when it exceeds 80% of TDP. We model
//! socket power as idle power plus a dynamic term that scales linearly
//! with active cores and cubically with frequency (the classic `P ∝ C·V²·f`
//! with voltage roughly proportional to frequency).

use crate::spec::MachineSpec;
use serde::{Deserialize, Serialize};

/// Power model for one machine.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle power of the whole machine in watts.
    pub idle_watts: f64,
    /// Dynamic power of one core running at maximum frequency, in watts.
    pub dynamic_watts_per_core: f64,
    /// Maximum frequency in MHz (reference point for scaling).
    pub max_freq_mhz: u32,
    /// Total TDP in watts.
    pub tdp_watts: f64,
}

impl PowerModel {
    /// Derives a power model from a machine spec: idle is 30% of TDP and
    /// the remaining 70% is divided evenly among cores at full frequency.
    pub fn from_spec(spec: &MachineSpec) -> Self {
        let tdp = spec.total_tdp_watts();
        PowerModel {
            idle_watts: 0.3 * tdp,
            dynamic_watts_per_core: 0.7 * tdp / spec.total_cores() as f64,
            max_freq_mhz: spec.max_freq_mhz,
            tdp_watts: tdp,
        }
    }

    /// Instantaneous machine power given the number of active cores in two
    /// frequency domains (LC and BE), each with a utilization in `[0, 1]`.
    pub fn power_watts(
        &self,
        lc_cores: u32,
        lc_util: f64,
        lc_freq_mhz: u32,
        be_cores: u32,
        be_util: f64,
        be_freq_mhz: u32,
    ) -> f64 {
        let dyn_term = |cores: u32, util: f64, freq: u32| {
            let f = (freq.min(self.max_freq_mhz) as f64 / self.max_freq_mhz as f64).powi(3);
            self.dynamic_watts_per_core * cores as f64 * util.clamp(0.0, 1.0) * f
        };
        self.idle_watts
            + dyn_term(lc_cores, lc_util, lc_freq_mhz)
            + dyn_term(be_cores, be_util, be_freq_mhz)
    }

    /// True if `power` exceeds the paper's 80%-of-TDP throttling threshold.
    pub fn over_budget(&self, power_watts: f64) -> bool {
        power_watts > 0.8 * self.tdp_watts
    }
}

impl rhythm_snapshot::Snapshot for PowerModel {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.idle_watts);
        w.f64(self.dynamic_watts_per_core);
        w.u32(self.max_freq_mhz);
        w.f64(self.tdp_watts);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(PowerModel {
            idle_watts: r.f64()?,
            dynamic_watts_per_core: r.f64()?,
            max_freq_mhz: r.u32()?,
            tdp_watts: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::from_spec(&MachineSpec::paper_testbed())
    }

    #[test]
    fn idle_power_at_zero_load() {
        let m = model();
        let p = m.power_watts(0, 0.0, 2000, 0, 0.0, 2000);
        assert!((p - 0.3 * 460.0).abs() < 1e-9);
        assert!(!m.over_budget(p));
    }

    #[test]
    fn full_load_hits_tdp() {
        let m = model();
        let p = m.power_watts(40, 1.0, 2000, 0, 0.0, 2000);
        assert!((p - 460.0).abs() < 1e-9);
        assert!(m.over_budget(p));
    }

    #[test]
    fn dvfs_reduces_power_cubically() {
        let m = model();
        let full = m.power_watts(0, 0.0, 2000, 10, 1.0, 2000) - m.idle_watts;
        let half = m.power_watts(0, 0.0, 2000, 10, 1.0, 1000) - m.idle_watts;
        assert!((half / full - 0.125).abs() < 1e-9, "P scales with f^3");
    }

    #[test]
    fn utilization_clamps() {
        let m = model();
        let p1 = m.power_watts(10, 5.0, 2000, 0, 0.0, 2000);
        let p2 = m.power_watts(10, 1.0, 2000, 0, 0.0, 2000);
        assert_eq!(p1, p2);
    }

    #[test]
    fn budget_threshold_is_80_percent() {
        let m = model();
        assert!(!m.over_budget(0.8 * 460.0));
        assert!(m.over_budget(0.8 * 460.0 + 0.1));
    }
}
