//! Network bandwidth shaping (the Linux `tc qdisc` interface).
//!
//! The network subcontroller (paper §3.5.2) continuously monitors the LC
//! service's bandwidth `B_LC` and allocates `B_link − 1.2 · B_LC` to BE
//! jobs, keeping a 20% headroom above the LC's observed usage.

use serde::{Deserialize, Serialize};

/// A two-class bandwidth shaper for one NIC.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Qdisc {
    link_mbps: f64,
    be_limit_mbps: f64,
}

impl Qdisc {
    /// Creates a shaper for a link of the given rate with BE initially
    /// unprovisioned.
    ///
    /// # Panics
    ///
    /// Panics if `link_mbps` is not positive.
    pub fn new(link_mbps: f64) -> Self {
        assert!(link_mbps > 0.0, "link rate must be positive");
        Qdisc {
            link_mbps,
            be_limit_mbps: 0.0,
        }
    }

    /// Link line rate in Mbit/s.
    pub fn link_mbps(&self) -> f64 {
        self.link_mbps
    }

    /// Current BE class ceiling in Mbit/s.
    pub fn be_limit_mbps(&self) -> f64 {
        self.be_limit_mbps
    }

    /// Applies the paper's rule: BE gets `link − 1.2 · lc_usage`, floored
    /// at zero. Returns the new BE ceiling.
    pub fn reallocate(&mut self, lc_usage_mbps: f64) -> f64 {
        let lc = lc_usage_mbps.max(0.0);
        self.be_limit_mbps = (self.link_mbps - 1.2 * lc).max(0.0);
        self.be_limit_mbps
    }

    /// Removes all BE bandwidth (StopBE / SuspendBE).
    pub fn zero_be(&mut self) {
        self.be_limit_mbps = 0.0;
    }

    /// The headroom the rule reserves above LC usage, in Mbit/s.
    pub fn lc_headroom_mbps(&self, lc_usage_mbps: f64) -> f64 {
        (self.link_mbps - self.be_limit_mbps - lc_usage_mbps).max(0.0)
    }
}

impl rhythm_snapshot::Snapshot for Qdisc {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.link_mbps);
        w.f64(self.be_limit_mbps);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(Qdisc {
            link_mbps: r.f64()?,
            be_limit_mbps: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reallocate_follows_paper_rule() {
        let mut q = Qdisc::new(10_000.0);
        assert_eq!(q.reallocate(1_000.0), 10_000.0 - 1_200.0);
        assert_eq!(q.be_limit_mbps(), 8_800.0);
    }

    #[test]
    fn reallocate_floors_at_zero() {
        let mut q = Qdisc::new(1_000.0);
        assert_eq!(q.reallocate(900.0), 0.0);
    }

    #[test]
    fn zero_be_clears_limit() {
        let mut q = Qdisc::new(10_000.0);
        q.reallocate(100.0);
        q.zero_be();
        assert_eq!(q.be_limit_mbps(), 0.0);
    }

    #[test]
    fn headroom_accounts_for_both_classes() {
        let mut q = Qdisc::new(10_000.0);
        q.reallocate(2_000.0);
        // BE = 10000 - 2400 = 7600; headroom = 10000 - 7600 - 2000 = 400.
        assert!((q.lc_headroom_mbps(2_000.0) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lc_usage_treated_as_zero() {
        let mut q = Qdisc::new(5_000.0);
        assert_eq!(q.reallocate(-50.0), 5_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_link_panics() {
        Qdisc::new(0.0);
    }
}
