//! Machine capacity specification.

use serde::{Deserialize, Serialize};

/// Static capacities of one physical machine.
///
/// The default matches the paper's testbed (§5.1): a quad-socket Intel
/// Xeon E7-4820 v4 @ 2.0 GHz with 40 cores total, 20 MB of L3 per socket,
/// 64 GB of DRAM per socket and a 10 Gb NIC. Memory bandwidth per socket
/// is taken as 60 GB/s (the E7-4820 v4's four DDR4-1866 channels), and the
/// per-socket TDP is 115 W.
///
/// # Examples
///
/// ```
/// use rhythm_machine::MachineSpec;
///
/// let spec = MachineSpec::paper_testbed();
/// assert_eq!(spec.total_cores(), 40);
/// assert_eq!(spec.total_llc_ways(), 80);
/// assert_eq!(spec.total_mem_mb(), 4 * 64 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Number of CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// LLC ways per socket (Intel CAT partitions at way granularity).
    pub llc_ways_per_socket: u32,
    /// LLC size per socket in MB.
    pub llc_mb_per_socket: f64,
    /// DRAM per socket in MB.
    pub mem_mb_per_socket: u64,
    /// Peak DRAM bandwidth per socket in MB/s.
    pub membw_mbps_per_socket: f64,
    /// NIC line rate in Mbit/s.
    pub nic_mbps: f64,
    /// Nominal (maximum) core frequency in MHz.
    pub max_freq_mhz: u32,
    /// Lowest DVFS operating point in MHz.
    pub min_freq_mhz: u32,
    /// DVFS step in MHz (the paper's frequency subcontroller steps by 100).
    pub freq_step_mhz: u32,
    /// Thermal design power per socket in watts.
    pub tdp_watts_per_socket: f64,
}

impl MachineSpec {
    /// The paper's testbed machine.
    pub fn paper_testbed() -> Self {
        MachineSpec {
            sockets: 4,
            cores_per_socket: 10,
            llc_ways_per_socket: 20,
            llc_mb_per_socket: 20.0,
            mem_mb_per_socket: 64 * 1024,
            membw_mbps_per_socket: 60.0 * 1024.0,
            nic_mbps: 10_000.0,
            max_freq_mhz: 2_000,
            min_freq_mhz: 1_200,
            freq_step_mhz: 100,
            tdp_watts_per_socket: 115.0,
        }
    }

    /// A dense dual-socket compute node: more, faster cores than the
    /// paper testbed but a narrower LLC. Used by heterogeneous cluster
    /// scenarios as the "big" machine class.
    pub fn dense_compute() -> Self {
        MachineSpec {
            sockets: 2,
            cores_per_socket: 24,
            llc_ways_per_socket: 16,
            llc_mb_per_socket: 32.0,
            mem_mb_per_socket: 96 * 1024,
            membw_mbps_per_socket: 100.0 * 1024.0,
            nic_mbps: 25_000.0,
            max_freq_mhz: 2_600,
            min_freq_mhz: 1_400,
            freq_step_mhz: 100,
            tdp_watts_per_socket: 165.0,
        }
    }

    /// A lean dual-socket node: fewer, slower cores and less bandwidth
    /// than the paper testbed. The "small" machine class of heterogeneous
    /// cluster scenarios (still large enough to host any evaluated LC
    /// component).
    pub fn lean_node() -> Self {
        MachineSpec {
            sockets: 2,
            cores_per_socket: 12,
            llc_ways_per_socket: 12,
            llc_mb_per_socket: 16.0,
            mem_mb_per_socket: 48 * 1024,
            membw_mbps_per_socket: 40.0 * 1024.0,
            nic_mbps: 10_000.0,
            max_freq_mhz: 1_800,
            min_freq_mhz: 1_000,
            freq_step_mhz: 100,
            tdp_watts_per_socket: 85.0,
        }
    }

    /// A small two-socket machine useful for fast tests.
    pub fn small() -> Self {
        MachineSpec {
            sockets: 2,
            cores_per_socket: 4,
            llc_ways_per_socket: 10,
            llc_mb_per_socket: 10.0,
            mem_mb_per_socket: 16 * 1024,
            membw_mbps_per_socket: 20.0 * 1024.0,
            nic_mbps: 1_000.0,
            max_freq_mhz: 2_000,
            min_freq_mhz: 1_000,
            freq_step_mhz: 100,
            tdp_watts_per_socket: 65.0,
        }
    }

    /// Total physical cores across sockets.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total LLC ways across sockets.
    pub fn total_llc_ways(&self) -> u32 {
        self.sockets * self.llc_ways_per_socket
    }

    /// Total LLC capacity in MB.
    pub fn total_llc_mb(&self) -> f64 {
        self.sockets as f64 * self.llc_mb_per_socket
    }

    /// Total DRAM in MB.
    pub fn total_mem_mb(&self) -> u64 {
        self.sockets as u64 * self.mem_mb_per_socket
    }

    /// Total peak DRAM bandwidth in MB/s.
    pub fn total_membw_mbps(&self) -> f64 {
        self.sockets as f64 * self.membw_mbps_per_socket
    }

    /// Total TDP in watts.
    pub fn total_tdp_watts(&self) -> f64 {
        self.sockets as f64 * self.tdp_watts_per_socket
    }

    /// LLC capacity of one way in MB.
    pub fn llc_mb_per_way(&self) -> f64 {
        self.llc_mb_per_socket / self.llc_ways_per_socket as f64
    }

    /// Number of DVFS operating points.
    pub fn freq_levels(&self) -> u32 {
        (self.max_freq_mhz - self.min_freq_mhz) / self.freq_step_mhz + 1
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.sockets == 0 || self.cores_per_socket == 0 {
            return Err("machine must have at least one socket and core".into());
        }
        if self.llc_ways_per_socket == 0 {
            return Err("LLC must have at least one way".into());
        }
        if self.min_freq_mhz > self.max_freq_mhz {
            return Err("min frequency exceeds max frequency".into());
        }
        if self.freq_step_mhz == 0 {
            return Err("frequency step must be positive".into());
        }
        if !(self.max_freq_mhz - self.min_freq_mhz).is_multiple_of(self.freq_step_mhz) {
            return Err("frequency range must be a multiple of the step".into());
        }
        if self.membw_mbps_per_socket <= 0.0 || self.nic_mbps <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        Ok(())
    }
}

impl rhythm_snapshot::Snapshot for MachineSpec {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u32(self.sockets);
        w.u32(self.cores_per_socket);
        w.u32(self.llc_ways_per_socket);
        w.f64(self.llc_mb_per_socket);
        w.u64(self.mem_mb_per_socket);
        w.f64(self.membw_mbps_per_socket);
        w.f64(self.nic_mbps);
        w.u32(self.max_freq_mhz);
        w.u32(self.min_freq_mhz);
        w.u32(self.freq_step_mhz);
        w.f64(self.tdp_watts_per_socket);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let spec = MachineSpec {
            sockets: r.u32()?,
            cores_per_socket: r.u32()?,
            llc_ways_per_socket: r.u32()?,
            llc_mb_per_socket: r.f64()?,
            mem_mb_per_socket: r.u64()?,
            membw_mbps_per_socket: r.f64()?,
            nic_mbps: r.f64()?,
            max_freq_mhz: r.u32()?,
            min_freq_mhz: r.u32()?,
            freq_step_mhz: r.u32()?,
            tdp_watts_per_socket: r.f64()?,
        };
        spec.validate()
            .map_err(rhythm_snapshot::SnapshotError::Corrupt)?;
        Ok(spec)
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_paper() {
        let s = MachineSpec::paper_testbed();
        assert_eq!(s.total_cores(), 40);
        assert_eq!(s.total_llc_mb(), 80.0);
        assert_eq!(s.total_mem_mb(), 256 * 1024);
        assert_eq!(s.max_freq_mhz, 2_000);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn derived_quantities() {
        let s = MachineSpec::paper_testbed();
        assert_eq!(s.llc_mb_per_way(), 1.0);
        assert_eq!(s.freq_levels(), 9);
        assert_eq!(s.total_tdp_watts(), 460.0);
    }

    #[test]
    fn small_is_valid() {
        assert!(MachineSpec::small().validate().is_ok());
    }

    #[test]
    fn hetero_classes_are_valid_and_distinct() {
        let dense = MachineSpec::dense_compute();
        let lean = MachineSpec::lean_node();
        assert!(dense.validate().is_ok());
        assert!(lean.validate().is_ok());
        assert!(dense.total_cores() > MachineSpec::paper_testbed().total_cores());
        assert!(lean.total_cores() < MachineSpec::paper_testbed().total_cores());
        // Both classes must still host the largest evaluated LC component
        // (20 cores / 48 GB) with room for BE work.
        assert!(lean.total_cores() >= 24);
        assert!(lean.total_mem_mb() >= 64 * 1024);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut s = MachineSpec::paper_testbed();
        s.sockets = 0;
        assert!(s.validate().is_err());

        let mut s = MachineSpec::paper_testbed();
        s.min_freq_mhz = 3_000;
        assert!(s.validate().is_err());

        let mut s = MachineSpec::paper_testbed();
        s.freq_step_mhz = 0;
        assert!(s.validate().is_err());

        let mut s = MachineSpec::paper_testbed();
        s.freq_step_mhz = 300;
        assert!(s.validate().is_err(), "800 MHz range not divisible by 300");

        let mut s = MachineSpec::paper_testbed();
        s.nic_mbps = 0.0;
        assert!(s.validate().is_err());
    }
}
