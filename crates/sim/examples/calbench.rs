//! Calendar micro-benchmark: wheel vs a reference BinaryHeap, alternating
//! rounds so host-speed drift cancels. Mimics the engine's event pattern:
//! ~30 in-flight events, mostly sub-ms phase horizons, occasional 1-2 s
//! control ticks.

use rhythm_sim::{Calendar, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

struct Entry {
    at: SimTime,
    seq: u64,
    event: u64,
}
impl PartialEq for Entry {
    fn eq(&self, o: &Self) -> bool {
        self.at == o.at && self.seq == o.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}
impl Ord for Entry {
    fn cmp(&self, o: &Self) -> Ordering {
        o.at.cmp(&self.at).then_with(|| o.seq.cmp(&self.seq))
    }
}

struct Heap {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    now: SimTime,
}
impl Heap {
    fn schedule(&mut self, at: SimTime, event: u64) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let e = self.heap.pop()?;
        self.now = e.at;
        Some((e.at, e.event))
    }
}

fn rng(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

const OPS: u64 = 2_000_000;

fn horizon(r: u64) -> u64 {
    match r % 100 {
        0..=4 => 2_000_000_000,                // control tick
        5..=9 => 1_000_000_000,                // metrics tick
        10..=24 => 5_000_000 + r % 20_000_000, // arrival-ish (5-25 ms)
        _ => 100_000 + r % 900_000,            // phase end (0.1-1 ms)
    }
}

fn run_wheel(pending: u64) -> (f64, u64) {
    let mut cal: Calendar<u64> = Calendar::with_capacity(64);
    let mut s = 0x12345678u64;
    for i in 0..pending {
        cal.schedule(SimTime::from_nanos(rng(&mut s) % 1_000_000), i);
    }
    let mut sink = 0u64;
    let t0 = Instant::now();
    for _ in 0..OPS {
        let (now, ev) = cal.pop().unwrap();
        sink ^= ev;
        let r = rng(&mut s);
        cal.schedule(SimTime::from_nanos(now.as_nanos() + horizon(r)), r);
    }
    (t0.elapsed().as_secs_f64() * 1e9 / OPS as f64, sink)
}

fn run_heap(pending: u64) -> (f64, u64) {
    let mut cal = Heap { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO };
    let mut s = 0x12345678u64;
    for i in 0..pending {
        cal.schedule(SimTime::from_nanos(rng(&mut s) % 1_000_000), i);
    }
    let mut sink = 0u64;
    let t0 = Instant::now();
    for _ in 0..OPS {
        let (now, ev) = cal.pop().unwrap();
        sink ^= ev;
        let r = rng(&mut s);
        cal.schedule(SimTime::from_nanos(now.as_nanos() + horizon(r)), r);
    }
    (t0.elapsed().as_secs_f64() * 1e9 / OPS as f64, sink)
}

fn main() {
    for pending in [30u64, 200, 800] {
        let mut w_best = f64::INFINITY;
        let mut h_best = f64::INFINITY;
        for _ in 0..5 {
            let (w, ws) = run_wheel(pending);
            let (h, hs) = run_heap(pending);
            assert_eq!(ws, hs, "pop orders diverged");
            w_best = w_best.min(w);
            h_best = h_best.min(h);
        }
        println!(
            "pending {pending:>4}: wheel {w_best:5.1} ns/op  heap {h_best:5.1} ns/op  ratio {:.2}",
            w_best / h_best
        );
    }
}
