//! A generation-keyed slab arena for hot-path object storage.
//!
//! The discrete-event engine keeps every in-flight request in one of
//! these instead of a `HashMap`: lookups become a bounds-checked index
//! plus a generation compare (no hashing), and freed slots are recycled
//! through a free list so steady-state operation allocates nothing.
//!
//! Keys are *stable* and *generational*: removing a slot bumps its
//! generation, so a stale [`Key`] held after removal can never alias a
//! newer occupant — `get` simply returns `None`. (Generations wrap after
//! 2³² reuses of a single slot; event horizons in the simulator are
//! shorter by many orders of magnitude.)

/// Handle to one arena slot. Packs `(slot index, generation)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    // lint:allow(S02) -- packed: encode writes pack(); decode rebuilds via unpack()
    slot: u32,
    // lint:allow(S02) -- packed: encode writes pack(); decode rebuilds via unpack()
    gen: u32,
}

impl Key {
    /// Packs the key into one `u64` (`slot` in the high half).
    pub fn pack(self) -> u64 {
        (self.slot as u64) << 32 | self.gen as u64
    }

    /// Inverse of [`Key::pack`].
    pub fn unpack(raw: u64) -> Key {
        Key {
            slot: (raw >> 32) as u32,
            // lint:allow(D05) -- intentional: the key's generation is the low 32 bits
            gen: raw as u32,
        }
    }

    /// The slot index (for diagnostics; not unique over time).
    pub fn slot(self) -> usize {
        self.slot as usize
    }
}

struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A slab with a free list and generational keys. See the module docs.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// An empty arena with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Arena<T> {
        Arena {
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True if no values are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever created (live + recyclable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> Key {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.value.is_none(), "free-listed slot still occupied");
                s.value = Some(value);
                Key { slot, gen: s.gen }
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("arena over 2^32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    value: Some(value),
                });
                Key { slot, gen: 0 }
            }
        }
    }

    /// The value under `key`, or `None` if it was removed (stale keys
    /// fail the generation check even when the slot was reused).
    pub fn get(&self, key: Key) -> Option<&T> {
        let s = self.slots.get(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.value.as_ref()
    }

    /// Mutable access to the value under `key`.
    pub fn get_mut(&mut self, key: Key) -> Option<&mut T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        s.value.as_mut()
    }

    /// True if `key` refers to a live value.
    pub fn contains(&self, key: Key) -> bool {
        self.get(key).is_some()
    }

    /// Iterates the live values in slot order with their keys.
    pub fn iter(&self) -> impl Iterator<Item = (Key, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    Key {
                        slot: i as u32,
                        gen: s.gen,
                    },
                    v,
                )
            })
        })
    }

    /// Removes and returns the value under `key`, bumping the slot's
    /// generation so the key (and any copy of it) goes stale.
    pub fn remove(&mut self, key: Key) -> Option<T> {
        let s = self.slots.get_mut(key.slot as usize)?;
        if s.gen != key.gen {
            return None;
        }
        let value = s.value.take()?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(key.slot);
        Some(value)
    }
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Arena::new()
    }
}

impl rhythm_snapshot::Snapshot for Key {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.pack());
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(Key::unpack(r.u64()?))
    }
}

impl<T: rhythm_snapshot::Snapshot> rhythm_snapshot::Snapshot for Arena<T> {
    /// Verbatim encoding of every slot (generation + occupancy) and the
    /// free list, so outstanding [`Key`]s — including stale ones — behave
    /// identically against the restored arena.
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.slots.len() as u64);
        for s in &self.slots {
            w.u32(s.gen);
            s.value.encode(w);
        }
        w.u64(self.free.len() as u64);
        for &slot in &self.free {
            w.u32(slot);
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let n = r.len(5)?; // 4 (gen) + ≥1 (Option tag)
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let gen = r.u32()?;
            let value = Option::<T>::decode(r)?;
            slots.push(Slot { gen, value });
        }
        let nf = r.len(4)?;
        let mut free = Vec::with_capacity(nf);
        for _ in 0..nf {
            let slot = r.u32()?;
            if slots.get(slot as usize).is_none_or(|s| s.value.is_some()) {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(
                    "arena free list references an occupied or missing slot".into(),
                ));
            }
            free.push(slot);
        }
        let empty = slots.iter().filter(|s| s.value.is_none()).count();
        let mut unique = free.clone();
        unique.sort_unstable();
        unique.dedup();
        if empty != free.len() || unique.len() != free.len() {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "arena free list does not cover every vacant slot exactly once".into(),
            ));
        }
        Ok(Arena { slots, free })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let k1 = a.insert("one");
        let k2 = a.insert("two");
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(k1), Some(&"one"));
        assert_eq!(a.get(k2), Some(&"two"));
        assert_eq!(a.remove(k1), Some("one"));
        assert_eq!(a.get(k1), None);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn stale_key_never_aliases_reused_slot() {
        let mut a = Arena::new();
        let k1 = a.insert(1);
        assert_eq!(a.remove(k1), Some(1));
        let k2 = a.insert(2);
        // The slot is reused but the generation moved on.
        assert_eq!(k1.slot(), k2.slot());
        assert_ne!(k1, k2);
        assert_eq!(a.get(k1), None);
        assert_eq!(a.remove(k1), None);
        assert_eq!(a.get(k2), Some(&2));
    }

    #[test]
    fn no_allocation_growth_in_steady_state() {
        let mut a = Arena::with_capacity(4);
        let keys: Vec<Key> = (0..4).map(|i| a.insert(i)).collect();
        for k in keys {
            a.remove(k);
        }
        for round in 0..100 {
            let k = a.insert(round);
            a.remove(k);
        }
        assert_eq!(a.capacity(), 4, "free-listed slots are recycled");
        assert!(a.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut a = Arena::new();
        let k = a.insert(vec![1, 2]);
        a.get_mut(k).unwrap().push(3);
        assert_eq!(a.get(k), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn pack_unpack_round_trips() {
        let mut a = Arena::new();
        let k0 = a.insert(0);
        a.remove(k0);
        let k = a.insert(1); // generation 1, slot 0
        assert_eq!(Key::unpack(k.pack()), k);
        assert!(a.contains(Key::unpack(k.pack())));
    }

    #[test]
    fn snapshot_round_trip_preserves_keys_and_free_list() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut a: Arena<u64> = Arena::new();
        let k0 = a.insert(10);
        let k1 = a.insert(11);
        let _k2 = a.insert(12);
        a.remove(k1); // Leaves a generation-bumped hole in the middle.
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        let mut b: Arena<u64> = Arena::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(b.len(), a.len());
        assert_eq!(b.get(k0), Some(&10));
        assert_eq!(b.get(k1), None, "stale key stays stale after restore");
        // The restored free list recycles the same slot the original would.
        let ka = a.insert(99);
        let kb = b.insert(99);
        assert_eq!(ka, kb);
    }

    #[test]
    fn snapshot_rejects_bad_free_list() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut w = Writer::new();
        w.u64(1); // one slot
        w.u32(0); // gen
        w.u8(1); // Some
        w.u64(7); // value
        w.u64(1); // free list of one
        w.u32(0); // ...pointing at the occupied slot
        let decoded = Arena::<u64>::decode(&mut Reader::new(&w.into_bytes()));
        assert!(matches!(decoded.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn out_of_range_key_is_none() {
        let a: Arena<u8> = Arena::new();
        assert_eq!(a.get(Key { slot: 7, gen: 0 }), None);
    }
}
