//! Deterministic event calendar.
//!
//! A calendar-bucket wheel keyed by [`SimTime`] with a monotone sequence
//! number as tiebreaker, so that events scheduled for the same instant pop
//! in insertion (FIFO) order. That stability is what makes whole-cluster
//! simulations bit-reproducible across runs and platforms.
//!
//! # Structure
//!
//! Pending events live in one of two places:
//!
//! * a **ring of buckets**, each covering `WIDTH_NS` of virtual time,
//!   spanning a window of `SLOTS × WIDTH_NS` (64 ms) starting at
//!   `window_start`. Every bucket is kept sorted (earliest event at the
//!   back), so scheduling is a binary insert into a near-always-tiny
//!   vector and popping is a `Vec::pop`. A one-word occupancy bitmap
//!   finds the next non-empty bucket with a single `trailing_zeros`.
//! * a **far heap** for events beyond the window (controller/metrics
//!   ticks and slow arrival processes). When the ring drains, the window
//!   re-anchors at the earliest far event and the far events inside the
//!   new window spill into the ring.
//!
//! The engine's event stream is *sparse*: at realistic loads a bucket
//! holds zero or one events, and the whole calendar rarely exceeds a few
//! dozen pending entries. The wheel is therefore sized for constant-factor
//! cost, not asymptotics — 64 slots keep the bucket headers in one and a
//! half cache lines and the occupancy map in a single word, and the
//! sorted-bucket invariant makes both hot paths branch-light (no lazy
//! sort step, no multi-word bitmap scan). The previous `BinaryHeap`'s
//! O(log n) sifts are gone from `schedule` and `pop` while the exact
//! `(time, seq)` pop order is preserved — the golden fixtures are
//! bit-identical.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Bucket width in nanoseconds (1 ms — the scale of one service phase).
const WIDTH_NS: u64 = 1_000_000;
/// Number of buckets in the ring: exactly one occupancy word.
const SLOTS: usize = 64;

/// An entry in the calendar: an event payload due at `at`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: the earliest (time, seq) is the *greatest* entry, so
        // the far `BinaryHeap` (a max-heap) pops earliest-first and an
        // ascending-sorted bucket pops earliest from the back.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// # Examples
///
/// ```
/// use rhythm_sim::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_millis(5), "b");
/// cal.schedule(SimTime::from_millis(1), "a");
/// cal.schedule(SimTime::from_millis(5), "c");
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(5), "b")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(5), "c")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    /// The bucket ring, covering `[window_start, window_start + SLOTS·WIDTH_NS)`.
    /// Invariant: every bucket is sorted ascending in `Entry` order, i.e.
    /// the earliest `(time, seq)` sits at the back.
    ring: Vec<Vec<Entry<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    // lint:allow(S02) -- derived: decode re-buckets every entry and rebuilds the bitmap
    occ: u64,
    /// Index of the bucket the wheel is currently draining.
    // lint:allow(S02) -- derived: re-anchored from the restored clock by prepare_min
    cur: usize,
    /// Absolute time (ns) of the start of bucket 0's coverage.
    // lint:allow(S02) -- derived: decode recomputes the window from `now`
    window_start: u64,
    /// Events at or beyond the window end.
    far: BinaryHeap<Entry<E>>,
    /// Events in the ring (the far heap tracks its own length).
    // lint:allow(S02) -- derived: recomputed while re-bucketing entries on decode
    ring_len: usize,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            ring: (0..SLOTS).map(|_| Vec::new()).collect(),
            occ: 0,
            cur: 0,
            window_start: 0,
            far: BinaryHeap::new(),
            ring_len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty calendar. The ring is fixed-size; `cap` only
    /// pre-sizes the far heap (kept for API compatibility).
    pub fn with_capacity(cap: usize) -> Self {
        let mut c = Self::new();
        c.far.reserve(cap.min(1024));
        c
    }

    /// The time of the most recently popped event (the "current" virtual
    /// time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The ring slot covering absolute time `ns`, if inside the window.
    #[inline]
    fn slot_of(&self, ns: u64) -> Option<usize> {
        let rel = (ns - self.window_start) / WIDTH_NS;
        (rel < SLOTS as u64).then_some(rel as usize)
    }

    /// Sorted insert preserving the ascending-`Entry` bucket invariant.
    #[inline]
    fn bucket_insert(bucket: &mut Vec<Entry<E>>, entry: Entry<E>) {
        // The common case is an empty bucket or an append (the new event
        // is the latest in its bucket, hence smallest in `Entry` order —
        // position 0 — or largest — the back). `partition_point` costs a
        // couple of compares on these tiny vectors.
        let pos = bucket.partition_point(|e| *e < entry);
        bucket.insert(pos, entry);
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the calendar
    /// clamps such events to `now` so time never moves backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { at, seq, event };
        // `at >= now >= window_start` always holds: the window only moves
        // forward and always covers `now`.
        debug_assert!(at.as_nanos() >= self.window_start);
        match self.slot_of(at.as_nanos()) {
            Some(slot) => {
                Self::bucket_insert(&mut self.ring[slot], entry);
                self.occ |= 1u64 << slot;
                self.ring_len += 1;
            }
            None => self.far.push(entry),
        }
    }

    /// Points `cur` at the bucket holding the earliest event (its back is
    /// the global minimum), re-anchoring the window from the far heap when
    /// the ring is empty. Returns false if no events remain.
    #[inline]
    fn prepare_min(&mut self) -> bool {
        if self.ring_len == 0 {
            let Some(first) = self.far.peek() else {
                return false;
            };
            // Re-anchor the window at the earliest far event and spill
            // every far event inside the new window into the ring.
            let start = (first.at.as_nanos() / WIDTH_NS) * WIDTH_NS;
            let end = start + (SLOTS as u64) * WIDTH_NS;
            self.window_start = start;
            self.cur = 0;
            while let Some(e) = self.far.peek() {
                if e.at.as_nanos() >= end {
                    break;
                }
                let e = self.far.pop().expect("peeked");
                let slot = ((e.at.as_nanos() - start) / WIDTH_NS) as usize;
                // The heap yields ascending (time, seq): each spilled
                // entry is later than any already in its bucket, so it
                // belongs at the front in ascending-`Entry` order.
                self.ring[slot].insert(0, e);
                self.occ |= 1u64 << slot;
                self.ring_len += 1;
            }
        }
        if self.ring[self.cur].is_empty() {
            // Time only moves forward, so every occupied slot is at or
            // after `cur`; the masked word cannot be zero here.
            let bits = self.occ & (!0u64 << self.cur);
            debug_assert!(bits != 0, "ring_len > 0 but no occupied slot from cur");
            self.cur = bits.trailing_zeros() as usize;
        }
        true
    }

    /// Pops the prepared minimum (callers must have run `prepare_min`).
    #[inline]
    fn pop_prepared(&mut self) -> (SimTime, E) {
        let entry = self.ring[self.cur].pop().expect("prepared non-empty");
        self.ring_len -= 1;
        if self.ring[self.cur].is_empty() {
            self.occ &= !(1u64 << self.cur);
        }
        debug_assert!(entry.at >= self.now, "calendar time moved backwards");
        self.now = entry.at;
        (entry.at, entry.event)
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if !self.prepare_min() {
            return None;
        }
        Some(self.pop_prepared())
    }

    /// Removes and returns the earliest event only if it is due at or
    /// before `limit` (the epoch-stepped engine's hot path: one wheel
    /// preparation serves both the bound check and the pop).
    pub fn pop_if_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        if !self.prepare_min() {
            return None;
        }
        if limit < SimTime::MAX
            && self.ring[self.cur].last().expect("prepared non-empty").at > limit
        {
            return None;
        }
        Some(self.pop_prepared())
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len > 0 {
            let slot = if self.ring[self.cur].is_empty() {
                let bits = self.occ & (!0u64 << self.cur);
                bits.trailing_zeros() as usize
            } else {
                self.cur
            };
            return self.ring[slot].last().map(|e| e.at);
        }
        self.far.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event (the current time is retained).
    pub fn clear(&mut self) {
        if self.ring_len > 0 {
            for b in &mut self.ring {
                b.clear();
            }
        }
        self.occ = 0;
        self.far.clear();
        self.ring_len = 0;
        // Re-anchor the (now empty) window so it covers `now`.
        self.window_start = (self.now.as_nanos() / WIDTH_NS) * WIDTH_NS;
        self.cur = 0;
    }
}

impl<E: rhythm_snapshot::Snapshot> rhythm_snapshot::Snapshot for Calendar<E> {
    /// Canonical encoding: `(now, next_seq)` plus every pending entry
    /// sorted by `(time, seq)` — independent of how the entries happen to
    /// be distributed between the ring and the far heap, so two calendars
    /// with the same pending set and clock encode to identical bytes.
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.now.as_nanos());
        w.u64(self.next_seq);
        let mut entries: Vec<&Entry<E>> = self.ring.iter().flatten().chain(self.far.iter()).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        w.u64(entries.len() as u64);
        for e in entries {
            w.u64(e.at.as_nanos());
            w.u64(e.seq);
            e.event.encode(w);
        }
    }

    /// Rebuilds a fresh wheel anchored at the restored clock. The pop
    /// order — strictly `(time, seq)` — is preserved exactly, so the
    /// restored calendar is observationally identical to the captured one.
    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let now = SimTime::from_nanos(r.u64()?);
        let next_seq = r.u64()?;
        let count = r.len(16)?; // 8 (at) + 8 (seq) + the event payload
        let mut cal = Calendar::new();
        cal.now = now;
        cal.next_seq = next_seq;
        cal.window_start = (now.as_nanos() / WIDTH_NS) * WIDTH_NS;
        for _ in 0..count {
            let at = SimTime::from_nanos(r.u64()?);
            let seq = r.u64()?;
            let event = E::decode(r)?;
            if at < now || seq >= next_seq {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(
                    "calendar entry violates (now, next_seq) bounds".into(),
                ));
            }
            let entry = Entry { at, seq, event };
            match cal.slot_of(at.as_nanos()) {
                Some(slot) => {
                    Self::bucket_insert(&mut cal.ring[slot], entry);
                    cal.occ |= 1u64 << slot;
                    cal.ring_len += 1;
                }
                None => cal.far.push(entry),
            }
        }
        Ok(cal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(30), 3);
        cal.schedule(SimTime::from_millis(10), 1);
        cal.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(10), "late");
        cal.pop();
        // Scheduling before `now` must not rewind time.
        cal.schedule(SimTime::from_secs(1), "early");
        let (t, e) = cal.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(7), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(cal.now(), SimTime::ZERO);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), 1u32);
        let (t1, _) = cal.pop().unwrap();
        cal.schedule(t1 + SimDuration::from_millis(1), 2u32);
        cal.schedule(t1 + SimDuration::from_micros(500), 3u32);
        assert_eq!(cal.pop().unwrap().1, 3);
        assert_eq!(cal.pop().unwrap().1, 2);
        assert!(cal.is_empty());
    }

    #[test]
    fn clear_keeps_time() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(9), ());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.now(), SimTime::from_secs(2));
    }

    #[test]
    fn far_events_pop_in_order() {
        // Events beyond the ring window land in the far heap and must
        // still interleave correctly with near events.
        let mut cal = Calendar::new();
        let span_s = (SLOTS as u64 * WIDTH_NS) / 1_000_000_000;
        cal.schedule(SimTime::from_secs(span_s + 30), "far-b");
        cal.schedule(SimTime::from_millis(5), "near");
        cal.schedule(SimTime::from_secs(span_s + 10), "far-a");
        assert_eq!(cal.len(), 3);
        assert_eq!(cal.pop().unwrap().1, "near");
        assert_eq!(cal.pop().unwrap().1, "far-a");
        assert_eq!(cal.pop().unwrap().1, "far-b");
        assert!(cal.is_empty());
    }

    #[test]
    fn far_events_at_same_time_are_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(60); // Beyond the ~4 s window.
        for i in 0..50 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn insert_into_active_bucket_keeps_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_micros(500);
        cal.schedule(t, 0);
        cal.schedule(SimTime::from_micros(900), 1);
        // Pop sorts the active bucket; now insert into it again at an
        // equal and a smaller time.
        assert_eq!(cal.pop().unwrap().1, 0);
        cal.schedule(SimTime::from_micros(900), 2);
        cal.schedule(SimTime::from_micros(700), 3);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![3, 1, 2]);
    }

    #[test]
    fn pop_if_at_or_before_respects_limit() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(10), "a");
        cal.schedule(SimTime::from_millis(20), "b");
        assert_eq!(
            cal.pop_if_at_or_before(SimTime::from_millis(15)).unwrap().1,
            "a"
        );
        assert!(cal.pop_if_at_or_before(SimTime::from_millis(15)).is_none());
        assert_eq!(cal.len(), 1);
        assert_eq!(
            cal.pop_if_at_or_before(SimTime::from_millis(20)).unwrap().1,
            "b"
        );
        assert!(cal.pop_if_at_or_before(SimTime::MAX).is_none());
    }

    #[test]
    fn snapshot_round_trip_preserves_pop_order() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut cal = Calendar::new();
        // Mix of near (ring), far (heap) and simultaneous (FIFO) events.
        cal.schedule(SimTime::from_millis(10), 0u64);
        cal.schedule(SimTime::from_secs(90), 1u64);
        cal.schedule(SimTime::from_millis(10), 2u64);
        cal.schedule(SimTime::from_millis(3), 3u64);
        cal.pop(); // Advance `now` so the restore re-anchors mid-stream.
        let mut w = Writer::new();
        cal.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored: Calendar<u64> = Calendar::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.now(), cal.now());
        assert_eq!(restored.len(), cal.len());
        // Re-encoding is byte-identical (canonical form).
        let mut w2 = Writer::new();
        restored.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        // Identical continuation, including new schedules sharing times.
        cal.schedule(SimTime::from_millis(10), 9u64);
        restored.schedule(SimTime::from_millis(10), 9u64);
        loop {
            let a = cal.pop();
            let b = restored.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn snapshot_rejects_inconsistent_entries() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        // seq >= next_seq must be refused rather than silently adopted.
        let mut w = Writer::new();
        w.u64(0); // now
        w.u64(1); // next_seq
        w.u64(1); // one entry
        w.u64(5); // at
        w.u64(7); // seq (out of range)
        w.u64(0); // event
        let decoded = Calendar::<u64>::decode(&mut Reader::new(&w.into_bytes()));
        assert!(matches!(decoded.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn long_run_interleaving_matches_reference_heap() {
        // Drive the wheel with a deterministic pseudo-random workload and
        // compare against a reference (time, seq) sort.
        let mut cal = Calendar::new();
        let mut expect: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..2000 {
            // Schedule a burst at mixed horizons (sub-bucket to far).
            for _ in 0..(next() % 4) {
                let horizon = match next() % 10 {
                    0 => 10_000_000_000,           // 10 s (far)
                    1..=3 => 2_000_000_000,        // 2 s (controller-ish)
                    _ => 5_000_000,                // 5 ms (phase-ish)
                };
                let at = now + next() % horizon;
                cal.schedule(SimTime::from_nanos(at), seq);
                expect.push((at.max(now), seq));
                seq += 1;
            }
            if round % 3 != 0 {
                if let Some((t, id)) = cal.pop() {
                    now = t.as_nanos();
                    popped.push((t.as_nanos(), id));
                }
            }
        }
        while let Some((t, id)) = cal.pop() {
            popped.push((t.as_nanos(), id));
        }
        // The reference order: stable sort by time (seq breaks ties by
        // construction of the push order).
        expect.sort_by_key(|&(t, s)| (t, s));
        // Clamping to `now` at schedule time makes exact time comparison
        // tricky for past events; compare the popped sequence ids against
        // a full simulation-free reorder only on monotonicity + count.
        assert_eq!(popped.len(), expect.len());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time went backwards: {w:?}");
        }
    }
}
