//! Deterministic event calendar.
//!
//! A thin priority queue keyed by [`SimTime`] with a monotone sequence
//! number as tiebreaker, so that events scheduled for the same instant pop
//! in insertion (FIFO) order. That stability is what makes whole-cluster
//! simulations bit-reproducible across runs and platforms.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the calendar: an event payload due at `at`.
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // `BinaryHeap` is a max-heap; invert so the earliest (time, seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// # Examples
///
/// ```
/// use rhythm_sim::{Calendar, SimTime};
///
/// let mut cal = Calendar::new();
/// cal.schedule(SimTime::from_millis(5), "b");
/// cal.schedule(SimTime::from_millis(1), "a");
/// cal.schedule(SimTime::from_millis(5), "c");
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(1), "a")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(5), "b")));
/// assert_eq!(cal.pop(), Some((SimTime::from_millis(5), "c")));
/// assert_eq!(cal.pop(), None);
/// ```
pub struct Calendar<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty calendar with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Calendar {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the "current" virtual
    /// time).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the calendar
    /// clamps such events to `now` so time never moves backwards.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing `now` to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "calendar time moved backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (the current time is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(30), 3);
        cal.schedule(SimTime::from_millis(10), 1);
        cal.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut cal = Calendar::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            cal.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(5), ());
        assert_eq!(cal.now(), SimTime::ZERO);
        cal.pop();
        assert_eq!(cal.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(10), "late");
        cal.pop();
        // Scheduling before `now` must not rewind time.
        cal.schedule(SimTime::from_secs(1), "early");
        let (t, e) = cal.pop().unwrap();
        assert_eq!(e, "early");
        assert_eq!(t, SimTime::from_secs(10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(7), ());
        assert_eq!(cal.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(cal.now(), SimTime::ZERO);
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_millis(1), 1u32);
        let (t1, _) = cal.pop().unwrap();
        cal.schedule(t1 + SimDuration::from_millis(1), 2u32);
        cal.schedule(t1 + SimDuration::from_micros(500), 3u32);
        assert_eq!(cal.pop().unwrap().1, 3);
        assert_eq!(cal.pop().unwrap().1, 2);
        assert!(cal.is_empty());
    }

    #[test]
    fn clear_keeps_time() {
        let mut cal = Calendar::new();
        cal.schedule(SimTime::from_secs(2), ());
        cal.pop();
        cal.schedule(SimTime::from_secs(9), ());
        cal.clear();
        assert!(cal.is_empty());
        assert_eq!(cal.now(), SimTime::from_secs(2));
    }
}
