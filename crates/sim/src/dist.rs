//! Sampling distributions for workload models.
//!
//! The component service-time models (paper §2, §5.1) need heavier-than-
//! exponential tails to reproduce the 99th-percentile behaviour the paper
//! reports, so besides the exponential we provide log-normal, gamma,
//! Pareto (bounded) and deterministic/uniform distributions, all sampled
//! from a [`SimRng`] stream.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// A parametric sampling distribution over non-negative reals.
///
/// All parameters are in the caller's unit (the workload models use
/// milliseconds).
///
/// # Examples
///
/// ```
/// use rhythm_sim::{Dist, SimRng};
///
/// let d = Dist::LogNormal { median: 2.0, sigma: 0.5 };
/// let mut rng = SimRng::from_seed(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// assert!((d.mean() - 2.0 * (0.5f64 * 0.5 / 2.0).exp()).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always returns `value`.
    Deterministic { value: f64 },
    /// Uniform on `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Exponential with the given mean.
    Exponential { mean: f64 },
    /// Log-normal parameterized by its median (`exp(mu)`) and shape
    /// `sigma`; heavier-tailed as `sigma` grows.
    LogNormal { median: f64, sigma: f64 },
    /// Gamma with the given `shape` (k) and `scale` (theta); mean is
    /// `k * theta`.
    Gamma { shape: f64, scale: f64 },
    /// Pareto with minimum `scale`, tail index `alpha`, truncated at
    /// `cap` (samples above the cap are clamped, keeping the tail finite).
    BoundedPareto { scale: f64, alpha: f64, cap: f64 },
}

impl Dist {
    /// A zero-variance point mass.
    pub const fn constant(value: f64) -> Dist {
        Dist::Deterministic { value }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => rng.uniform_range(lo, hi),
            Dist::Exponential { mean } => {
                // Inverse transform; `1 - u` avoids ln(0).
                -mean * (1.0 - rng.uniform()).ln()
            }
            Dist::LogNormal { median, sigma } => median * (sigma * rng.standard_normal()).exp(),
            Dist::Gamma { shape, scale } => sample_gamma(rng, shape) * scale,
            Dist::BoundedPareto { scale, alpha, cap } => {
                let u = 1.0 - rng.uniform();
                (scale / u.powf(1.0 / alpha)).min(cap)
            }
        }
    }

    /// The analytic mean of the distribution (the truncated Pareto mean
    /// ignores the cap and is therefore a slight over-estimate).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Exponential { mean } => mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Gamma { shape, scale } => shape * scale,
            Dist::BoundedPareto { scale, alpha, .. } => {
                if alpha > 1.0 {
                    alpha * scale / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Pre-resolves the distribution into a [`ResolvedDist`] whose sample
    /// loop does no parameter derivation (no `1/alpha`, no Marsaglia–Tsang
    /// constants, no enum-wide match in the caller). Sampling a resolved
    /// distribution consumes the same RNG draws and performs the same
    /// float operations as [`Dist::sample`], so the two are bit-identical
    /// on a shared stream — the engine's hot path relies on this.
    pub fn resolved(&self) -> ResolvedDist {
        match *self {
            Dist::Deterministic { value } => ResolvedDist::Constant { value },
            Dist::Uniform { lo, hi } => ResolvedDist::Uniform { lo, span: hi - lo },
            Dist::Exponential { mean } => ResolvedDist::Exponential { mean },
            Dist::LogNormal { median, sigma } => ResolvedDist::LogNormal { median, sigma },
            Dist::Gamma { shape, scale } => {
                if shape < 1.0 {
                    // Boost trick: Gamma(a) = Gamma(a + 1) · U^(1/a).
                    let d = (shape + 1.0) - 1.0 / 3.0;
                    ResolvedDist::GammaBoost {
                        d,
                        c: 1.0 / (9.0 * d).sqrt(),
                        inv_shape: 1.0 / shape,
                        scale,
                    }
                } else {
                    let d = shape - 1.0 / 3.0;
                    ResolvedDist::Gamma {
                        d,
                        c: 1.0 / (9.0 * d).sqrt(),
                        scale,
                    }
                }
            }
            Dist::BoundedPareto { scale, alpha, cap } => ResolvedDist::Pareto {
                scale,
                inv_alpha: 1.0 / alpha,
                cap,
            },
        }
    }

    /// Returns a copy of the distribution scaled so that every sample is
    /// multiplied by `factor` (used to apply interference inflation and
    /// DVFS slow-down to service times).
    pub fn scaled(&self, factor: f64) -> Dist {
        match *self {
            Dist::Deterministic { value } => Dist::Deterministic {
                value: value * factor,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::Exponential { mean } => Dist::Exponential {
                mean: mean * factor,
            },
            Dist::LogNormal { median, sigma } => Dist::LogNormal {
                median: median * factor,
                sigma,
            },
            Dist::Gamma { shape, scale } => Dist::Gamma {
                shape,
                scale: scale * factor,
            },
            Dist::BoundedPareto { scale, alpha, cap } => Dist::BoundedPareto {
                scale: scale * factor,
                alpha,
                cap: cap * factor,
            },
        }
    }
}

/// A [`Dist`] with all derived sampling constants precomputed.
///
/// Built via [`Dist::resolved`]; bit-identical to sampling the source
/// distribution on the same RNG stream.
#[derive(Clone, Copy, Debug)]
pub enum ResolvedDist {
    /// Point mass.
    Constant { value: f64 },
    /// `lo + span · U`.
    Uniform { lo: f64, span: f64 },
    /// Inverse-transform exponential.
    Exponential { mean: f64 },
    /// `median · exp(sigma · Z)`.
    LogNormal { median: f64, sigma: f64 },
    /// Marsaglia–Tsang with precomputed `d = shape − 1/3`,
    /// `c = 1/√(9d)` (shape ≥ 1).
    Gamma { d: f64, c: f64, scale: f64 },
    /// Shape < 1 via the boost trick: `d`/`c` are for `shape + 1`,
    /// the result is multiplied by `U^inv_shape`.
    GammaBoost {
        d: f64,
        c: f64,
        inv_shape: f64,
        scale: f64,
    },
    /// Bounded Pareto with `inv_alpha = 1/alpha`.
    Pareto { scale: f64, inv_alpha: f64, cap: f64 },
}

impl ResolvedDist {
    /// Draws one sample. Same stream consumption as [`Dist::sample`].
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            ResolvedDist::Constant { value } => value,
            ResolvedDist::Uniform { lo, span } => lo + span * rng.uniform(),
            ResolvedDist::Exponential { mean } => -mean * (1.0 - rng.uniform()).ln(),
            ResolvedDist::LogNormal { median, sigma } => {
                median * (sigma * rng.standard_normal()).exp()
            }
            ResolvedDist::Gamma { d, c, scale } => marsaglia_tsang(rng, d, c) * scale,
            ResolvedDist::GammaBoost {
                d,
                c,
                inv_shape,
                scale,
            } => {
                let g = marsaglia_tsang(rng, d, c);
                let u = 1.0 - rng.uniform();
                g * u.powf(inv_shape) * scale
            }
            ResolvedDist::Pareto {
                scale,
                inv_alpha,
                cap,
            } => {
                let u = 1.0 - rng.uniform();
                (scale / u.powf(inv_alpha)).min(cap)
            }
        }
    }
}

/// The Marsaglia–Tsang acceptance loop with precomputed constants.
fn marsaglia_tsang(rng: &mut SimRng, d: f64, c: f64) -> f64 {
    loop {
        let x = rng.standard_normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = 1.0 - rng.uniform();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Samples a Gamma(shape, 1) variate.
///
/// Uses Marsaglia–Tsang squeeze for `shape >= 1` and the boost trick
/// `Gamma(a) = Gamma(a + 1) * U^(1/a)` for `shape < 1`.
fn sample_gamma(rng: &mut SimRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let g = sample_gamma(rng, shape + 1.0);
        let u = 1.0 - rng.uniform();
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.standard_normal();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = 1.0 - rng.uniform();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(d: Dist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::constant(3.5);
        let mut rng = SimRng::from_seed(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Dist::Exponential { mean: 4.0 };
        let m = empirical_mean(d, 100_000, 2);
        assert!((m - 4.0).abs() / 4.0 < 0.02, "m={m}");
    }

    #[test]
    fn lognormal_mean_matches() {
        let d = Dist::LogNormal {
            median: 10.0,
            sigma: 0.6,
        };
        let m = empirical_mean(d, 200_000, 3);
        let expect = d.mean();
        assert!((m - expect).abs() / expect < 0.02, "m={m} expect={expect}");
    }

    #[test]
    fn gamma_mean_matches() {
        for &(shape, scale) in &[(0.5, 2.0), (2.0, 3.0), (9.0, 0.5)] {
            let d = Dist::Gamma { shape, scale };
            let m = empirical_mean(d, 200_000, 4);
            let expect = shape * scale;
            assert!(
                (m - expect).abs() / expect < 0.03,
                "shape={shape} m={m} expect={expect}"
            );
        }
    }

    #[test]
    fn pareto_respects_bounds() {
        let d = Dist::BoundedPareto {
            scale: 1.0,
            alpha: 1.5,
            cap: 50.0,
        };
        let mut rng = SimRng::from_seed(5);
        for _ in 0..50_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=50.0).contains(&x), "x={x}");
        }
    }

    #[test]
    fn uniform_bounds() {
        let d = Dist::Uniform { lo: 2.0, hi: 3.0 };
        let mut rng = SimRng::from_seed(6);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(d.mean(), 2.5);
    }

    #[test]
    fn scaled_scales_samples_and_mean() {
        let base = Dist::LogNormal {
            median: 5.0,
            sigma: 0.4,
        };
        let scaled = base.scaled(2.0);
        assert!((scaled.mean() - 2.0 * base.mean()).abs() < 1e-9);
        // Same RNG stream: the scaled sample is exactly twice the base
        // sample because log-normal scaling is multiplicative.
        let mut r1 = SimRng::from_seed(7);
        let mut r2 = SimRng::from_seed(7);
        assert!((scaled.sample(&mut r1) - 2.0 * base.sample(&mut r2)).abs() < 1e-9);
    }

    #[test]
    fn samples_are_non_negative() {
        let dists = [
            Dist::Exponential { mean: 1.0 },
            Dist::LogNormal {
                median: 1.0,
                sigma: 1.0,
            },
            Dist::Gamma {
                shape: 0.7,
                scale: 1.3,
            },
            Dist::BoundedPareto {
                scale: 0.5,
                alpha: 2.0,
                cap: 100.0,
            },
        ];
        let mut rng = SimRng::from_seed(8);
        for d in dists {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) >= 0.0);
            }
        }
    }

    #[test]
    fn resolved_is_bit_identical_to_source() {
        let dists = [
            Dist::constant(3.25),
            Dist::Uniform { lo: 1.5, hi: 9.75 },
            Dist::Exponential { mean: 4.2 },
            Dist::LogNormal {
                median: 10.0,
                sigma: 0.55,
            },
            Dist::Gamma {
                shape: 2.5,
                scale: 1.7,
            },
            Dist::Gamma {
                shape: 0.6,
                scale: 3.0,
            },
            Dist::BoundedPareto {
                scale: 1.0,
                alpha: 1.5,
                cap: 50.0,
            },
        ];
        for (i, d) in dists.iter().enumerate() {
            let r = d.resolved();
            let mut rng_a = SimRng::from_seed(100 + i as u64);
            let mut rng_b = SimRng::from_seed(100 + i as u64);
            for draw in 0..5_000 {
                let a = d.sample(&mut rng_a);
                let b = r.sample(&mut rng_b);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{d:?} draw {draw}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn lognormal_tail_heavier_with_sigma() {
        // Larger sigma should produce a larger 99th percentile relative to
        // the median.
        let sample_p99 = |sigma: f64| {
            let d = Dist::LogNormal { median: 1.0, sigma };
            let mut rng = SimRng::from_seed(9);
            let mut xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
            xs.sort_by(f64::total_cmp);
            xs[(xs.len() as f64 * 0.99) as usize]
        };
        assert!(sample_p99(1.0) > sample_p99(0.3));
    }
}
